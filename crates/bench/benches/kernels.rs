//! Micro-benchmarks of the numerical kernels underlying M2TD: SVD routes,
//! symmetric eigendecomposition, sparse/dense TTM, Gram computation and
//! stitching — plus the serial-vs-parallel sweep that anchors the perf
//! trajectory in `BENCH_kernels.json`.

use m2td_bench::criterion_group;
use m2td_bench::harness::{BatchSize, Criterion};
use m2td_bench::registry::bench_thread_counts;
use m2td_linalg::{gram_left_singular_vectors, householder_qr, svd, symmetric_eig, Matrix};
use m2td_sketch::{range_finder, SketchConfig, SketchPolicy};
use m2td_stitch::{stitch, StitchKind};
use m2td_tensor::{
    hosvd_sparse, hosvd_sparse_exact, hosvd_sparse_sketched, sparse_core, ttm_dense,
    ttm_sparse_transposed, CoreOrdering, DenseTensor, Shape, SparseTensor, TtmPlan, Workspace,
};
use std::hint::black_box;

fn dense_tensor(dims: &[usize]) -> DenseTensor {
    DenseTensor::from_fn(dims, |i| {
        let mut acc = 1.0;
        for (n, &x) in i.iter().enumerate() {
            acc *= ((x + n + 1) as f64 * 0.37).sin() + 1.2;
        }
        acc
    })
}

fn full_sparse(dims: &[usize]) -> SparseTensor {
    SparseTensor::from_dense(&dense_tensor(dims))
}

/// SVD routes: full one-sided Jacobi vs the Gram trick used by HOSVD
/// (the `ablation_svd` design-choice ablation).
fn bench_svd_routes(c: &mut Criterion) {
    let mut g = c.benchmark_group("svd_routes");
    g.sample_size(20);
    // A short-and-wide matricization, the shape the pipeline always sees.
    let a = Matrix::from_fn(12, 1728, |i, j| ((i * 7 + j) as f64 * 0.013).sin());
    g.bench_function("jacobi_full_svd", |b| {
        b.iter(|| svd(black_box(&a)).unwrap())
    });
    g.bench_function("gram_truncated_r4", |b| {
        b.iter(|| gram_left_singular_vectors(black_box(&a), 4).unwrap())
    });
    g.finish();
}

fn bench_eig_and_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("eig_qr");
    g.sample_size(30);
    let sym = {
        let b = Matrix::from_fn(24, 24, |i, j| ((i * 3 + j * 5) as f64 * 0.11).sin());
        b.gram_rows()
    };
    g.bench_function("symmetric_eig_24", |b| {
        b.iter(|| symmetric_eig(black_box(&sym)).unwrap())
    });
    let rect = Matrix::from_fn(64, 24, |i, j| ((i + 2 * j) as f64 * 0.07).cos());
    g.bench_function("householder_qr_64x24", |b| {
        b.iter(|| householder_qr(black_box(&rect)).unwrap())
    });
    g.finish();
}

/// Blocked vs row-streaming GEMM on the shapes the pipeline actually
/// produces: a ≥256-dim square product, the tall-skinny `I×R` Phase-1
/// factor product, and the `R×I·I×R` Gram. Before timing starts the
/// blocked results are asserted tolerance-equal to the streaming kernel
/// and bitwise identical across every benched thread count.
fn bench_gemm(c: &mut Criterion) {
    let counts = bench_thread_counts();

    let sq_a = Matrix::from_fn(256, 256, |i, j| ((i * 13 + j * 7) as f64 * 0.003).sin());
    let sq_b = Matrix::from_fn(256, 256, |i, j| ((i * 5 + j * 11) as f64 * 0.007).cos());
    let tall = Matrix::from_fn(4096, 32, |i, j| ((i * 3 + j) as f64 * 0.011).sin());
    let small = Matrix::from_fn(32, 32, |i, j| ((i + 2 * j) as f64 * 0.019).cos());
    let gram_a = Matrix::from_fn(64, 4096, |i, j| ((i * 17 + j) as f64 * 0.002).sin());

    let mut blocked = Matrix::zeros(0, 0);
    let mut rows = Matrix::zeros(0, 0);
    m2td_par::set_max_threads(1);
    sq_a.matmul_into(&sq_b, &mut blocked).unwrap();
    sq_a.matmul_rowstream_into(&sq_b, &mut rows).unwrap();
    let scale = rows.max_abs().max(1.0);
    for (x, y) in blocked.as_slice().iter().zip(rows.as_slice()) {
        assert!(
            (x - y).abs() <= 1e-12 * scale,
            "blocked vs streaming drifted past 1e-12"
        );
    }
    let serial = blocked.clone();
    for &t in &counts {
        m2td_par::set_max_threads(t);
        sq_a.matmul_into(&sq_b, &mut blocked).unwrap();
        assert_eq!(blocked, serial, "blocked gemm diverged at t={t}");
    }

    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    let mut out = Matrix::zeros(0, 0);
    for &threads in &counts {
        m2td_par::set_max_threads(threads);
        g.bench_function(format!("square256_blocked_t{threads}"), |b| {
            b.iter(|| sq_a.matmul_into(black_box(&sq_b), &mut out).unwrap())
        });
        g.bench_function(format!("square256_rows_t{threads}"), |b| {
            b.iter(|| {
                sq_a.matmul_rowstream_into(black_box(&sq_b), &mut out)
                    .unwrap()
            })
        });
        g.bench_function(format!("tall4096x32_blocked_t{threads}"), |b| {
            b.iter(|| tall.matmul_into(black_box(&small), &mut out).unwrap())
        });
        g.bench_function(format!("tall4096x32_rows_t{threads}"), |b| {
            b.iter(|| {
                tall.matmul_rowstream_into(black_box(&small), &mut out)
                    .unwrap()
            })
        });
        g.bench_function(format!("gram64x4096_blocked_t{threads}"), |b| {
            b.iter(|| black_box(&gram_a).gram_rows())
        });
        g.bench_function(format!("gram64x4096_rows_t{threads}"), |b| {
            b.iter(|| black_box(&gram_a).gram_rows_rowstream())
        });
    }
    g.finish();
    m2td_par::set_max_threads(0);
}

fn bench_ttm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ttm");
    g.sample_size(20);
    let dense = dense_tensor(&[12, 12, 12, 12]);
    let sparse = SparseTensor::from_dense(&dense);
    let u = Matrix::from_fn(12, 4, |i, j| ((i + j) as f64 * 0.3).sin());
    g.bench_function("dense_mode0_12c4", |b| {
        b.iter(|| ttm_dense(black_box(&dense), 0, &u.transpose()).unwrap())
    });
    g.bench_function("sparse_transposed_mode0", |b| {
        b.iter(|| ttm_sparse_transposed(black_box(&sparse), 0, &u).unwrap())
    });
    let factors: Vec<Matrix> = (0..4)
        .map(|n| Matrix::from_fn(12, 4, |i, j| ((i * (n + 2) + j) as f64 * 0.21).cos()))
        .collect();
    g.bench_function("sparse_core_chain", |b| {
        b.iter(|| sparse_core(black_box(&sparse), &factors, CoreOrdering::BestShrinkFirst).unwrap())
    });
    g.finish();
}

/// The planned core-recovery chain vs the fixed natural order, per bench
/// shape, on 1-in-3-thinned sparse inputs — the `ttm_chain` kernel family
/// recorded in `BENCH_kernels.json`. The two variants are checked to
/// agree numerically before timing starts.
fn bench_ttm_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("ttm_chain");
    g.sample_size(15);
    let shapes: [(&str, Vec<usize>, Vec<usize>); 2] = [
        ("cube12_r4", vec![12, 12, 12, 12], vec![4, 4, 4, 4]),
        ("skew32x16x8_r422", vec![32, 16, 8], vec![4, 2, 2]),
    ];
    for (tag, dims, ranks) in shapes {
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % 3 != 0)
            .map(|l| (shape.multi_index(l), (l as f64 * 0.19).sin() + 0.4))
            .collect();
        let sparse = SparseTensor::from_entries(&dims, &entries).unwrap();
        let factors: Vec<Matrix> = dims
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(n, (&d, &r))| {
                Matrix::from_fn(d, r, |i, j| ((i * (n + 2) + 3 * j) as f64 * 0.23).cos())
            })
            .collect();
        let planned = TtmPlan::with_ordering(&dims, &ranks, CoreOrdering::BestShrinkFirst).unwrap();
        let natural = TtmPlan::with_ordering(&dims, &ranks, CoreOrdering::Natural).unwrap();
        let a = planned
            .execute_sparse(&sparse, &factors, &mut Workspace::new())
            .unwrap();
        let b = natural
            .execute_sparse(&sparse, &factors, &mut Workspace::new())
            .unwrap();
        let drift = a.sub(&b).unwrap().frobenius_norm();
        assert!(drift < 1e-9, "{tag}: orderings disagree by {drift}");

        let mut ws = Workspace::new();
        g.bench_function(format!("planned_{tag}"), |b| {
            b.iter(|| {
                planned
                    .execute_sparse(black_box(&sparse), &factors, &mut ws)
                    .unwrap()
            })
        });
        g.bench_function(format!("natural_{tag}"), |b| {
            b.iter(|| {
                natural
                    .execute_sparse(black_box(&sparse), &factors, &mut ws)
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// Randomized (sketched) kernels vs their exact counterparts — the
/// `sketch` family in `BENCH_kernels.json`. Two headline shapes:
///
/// * a tall-skinny matrix (the shape where the Gaussian range-finder's
///   `O(mns)` beats the exact route), sketched vs `svd`-backed exact
///   factors at rank 4, and
/// * the `cube12_r4` sparse HOSVD with MACH entry sampling vs the exact
///   sparse HOSVD.
///
/// Each sketched record carries its measured `rel_err` (computed outside
/// the timed region) so the JSON trajectory tracks accuracy next to
/// speed.
fn bench_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.sample_size(15);

    // Tall-skinny range-finder: 1024 rows, 64 columns, rank 8 — big
    // enough that the exact Jacobi's `O(m n^2)` sweeps dwarf the
    // sketch's `O(m n s)` products.
    let a = Matrix::from_fn(1024, 64, |i, j| {
        ((i * 7 + j * 3) as f64 * 0.013).sin() + 0.01 * ((i * j) as f64 * 0.9).sin()
    });
    let rank = 8;
    let cfg = SketchConfig::with_size(16)
        .with_seed(0x5EED)
        .with_power_iters(1);
    g.bench_function("range_finder_exact_1024x64_r8", |b| {
        b.iter(|| svd(black_box(&a)).unwrap())
    });
    let exact_u = svd(&a).unwrap().u.leading_columns(rank).unwrap();
    g.attach_rel_err(projection_rel_err(&a, &exact_u));
    g.bench_function("range_finder_sketched_1024x64_r8", |b| {
        b.iter(|| range_finder(black_box(&a), rank, &cfg).unwrap())
    });
    let sketched = range_finder(&a, rank, &cfg).unwrap();
    g.attach_rel_err(sketched.rel_err);

    // MACH-sampled sparse HOSVD on the cube12 bench shape.
    let sparse = full_sparse(&[12, 12, 12, 12]);
    let ranks = [4usize, 4, 4, 4];
    let mach = SketchConfig::with_size(8)
        .with_seed(0x5EED)
        .with_policy(SketchPolicy::Mach { keep: 0.3 });
    g.bench_function("hosvd_exact_cube12_r4", |b| {
        b.iter(|| hosvd_sparse_exact(black_box(&sparse), &ranks).unwrap())
    });
    let exact = hosvd_sparse_exact(&sparse, &ranks).unwrap();
    g.attach_rel_err(tucker_rel_err(&exact, &sparse));
    g.bench_function("hosvd_mach_cube12_r4", |b| {
        b.iter(|| hosvd_sparse_sketched(black_box(&sparse), &ranks, &mach).unwrap())
    });
    let (_, rel_err) = hosvd_sparse_sketched(&sparse, &ranks, &mach).unwrap();
    g.attach_rel_err(rel_err);

    g.finish();
}

/// `‖A − UUᵀA‖_F / ‖A‖_F` for an orthonormal `U` — the same projection
/// residual the sketched range-finder reports, measured here for the
/// exact route so the two records are comparable.
fn projection_rel_err(a: &Matrix, u: &Matrix) -> f64 {
    let proj = u.matmul(&u.transpose().matmul(a).unwrap()).unwrap();
    let num = a.sub(&proj).unwrap().frobenius_norm();
    let den = a.frobenius_norm();
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Reconstruction error of a sparse-tensor Tucker decomposition via the
/// free identity `‖X − X̂‖² = ‖X‖² − ‖G‖²` (orthonormal factors, core
/// projected from the full tensor).
fn tucker_rel_err(t: &m2td_tensor::TuckerDecomp, x: &SparseTensor) -> f64 {
    let total = x.frobenius_norm().powi(2);
    let captured = t.core.frobenius_norm().powi(2);
    if total > 0.0 {
        ((total - captured).max(0.0) / total).sqrt()
    } else {
        0.0
    }
}

fn bench_gram_and_hosvd(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram_hosvd");
    g.sample_size(15);
    let sparse = full_sparse(&[10, 10, 10, 10]);
    g.bench_function("unfold_gram_mode0", |b| {
        b.iter(|| sparse.unfold_gram(0).unwrap())
    });
    g.bench_function("hosvd_sparse_rank4", |b| {
        b.iter(|| hosvd_sparse(black_box(&sparse), &[4, 4, 4, 4]).unwrap())
    });
    g.finish();
}

fn bench_stitch(c: &mut Criterion) {
    let mut g = c.benchmark_group("stitch");
    g.sample_size(15);
    let x1 = full_sparse(&[10, 100]);
    let x2 = full_sparse(&[10, 100]);
    g.bench_function("join_10x100", |b| {
        b.iter(|| stitch(black_box(&x1), &x2, 1, StitchKind::Join).unwrap())
    });
    // Thinned inputs exercise the zero-join bookkeeping.
    let thin = |x: &SparseTensor| {
        let entries: Vec<(Vec<usize>, f64)> = x
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, e)| e)
            .collect();
        SparseTensor::from_entries(x.dims(), &entries).unwrap()
    };
    let t1 = thin(&x1);
    let t2 = thin(&x2);
    g.bench_function("zero_join_thinned", |b| {
        b.iter(|| stitch(black_box(&t1), &t2, 1, StitchKind::ZeroJoin).unwrap())
    });
    g.finish();
}

fn bench_shape_math(c: &mut Criterion) {
    let mut g = c.benchmark_group("shape");
    let shape = Shape::new(&[14, 14, 14, 14, 14]);
    let total = shape.num_elements();
    g.bench_function("multi_index_round_trip", |b| {
        b.iter_batched(
            || (0..total).step_by(101).collect::<Vec<_>>(),
            |lins| {
                let mut acc = 0usize;
                for l in lins {
                    let idx = shape.multi_index(l);
                    acc += shape.linear_index(&idx);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Incremental vs batch Gram maintenance (the streaming-ensemble path).
fn bench_incremental_gram(c: &mut Criterion) {
    use m2td_tensor::IncrementalEnsemble;
    let mut g = c.benchmark_group("incremental");
    g.sample_size(15);
    let dims = [10usize, 10, 10];
    let dense = dense_tensor(&dims);
    let shape = Shape::new(&dims);
    let cells: Vec<(Vec<usize>, f64)> = dense
        .as_slice()
        .iter()
        .enumerate()
        .step_by(2)
        .map(|(l, &v)| (shape.multi_index(l), v))
        .collect();
    g.bench_function("incremental_fill_500", |b| {
        b.iter(|| {
            let mut inc = IncrementalEnsemble::new(&dims);
            for (idx, v) in &cells {
                inc.add(idx, *v).unwrap();
            }
            inc
        })
    });
    g.bench_function("batch_grams_after_fill", |b| {
        let sparse = {
            let mut inc = IncrementalEnsemble::new(&dims);
            for (idx, v) in &cells {
                inc.add(idx, *v).unwrap();
            }
            inc.to_sparse()
        };
        b.iter(|| {
            (0..3)
                .map(|m| sparse.unfold_gram(m).unwrap())
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

/// Serial-vs-parallel sweep of the two headline kernels — `gram_rows` on
/// a 512×512 matricization and `ttm_sparse_transposed` on a >10⁵-nnz
/// tensor — at every thread count from [`bench_thread_counts`]. Each
/// record carries its `threads` tag, and parallel results are asserted
/// bitwise-equal to the serial baseline before timing starts.
fn bench_parallel_speedup(c: &mut Criterion) {
    let counts = bench_thread_counts();

    let a = Matrix::from_fn(512, 512, |i, j| ((i * 13 + j * 7) as f64 * 0.003).sin());
    let sparse = full_sparse(&[24, 24, 20, 10]); // 115_200 stored entries
    let u = Matrix::from_fn(24, 4, |i, j| ((i * 4 + j) as f64 * 0.17).cos());

    m2td_par::set_max_threads(1);
    let gram_serial = a.gram_rows();
    let ttm_serial = ttm_sparse_transposed(&sparse, 0, &u).unwrap();

    let mut g = c.benchmark_group("parallel_speedup");
    g.sample_size(10);
    for &threads in &counts {
        m2td_par::set_max_threads(threads);
        assert_eq!(
            a.gram_rows(),
            gram_serial,
            "gram_rows diverged at t={threads}"
        );
        assert_eq!(
            ttm_sparse_transposed(&sparse, 0, &u).unwrap(),
            ttm_serial,
            "ttm_sparse_transposed diverged at t={threads}"
        );
        g.bench_function(format!("gram_rows_512_t{threads}"), |b| {
            b.iter(|| black_box(&a).gram_rows())
        });
        g.bench_function(format!("ttm_sparse_transposed_115k_t{threads}"), |b| {
            b.iter(|| ttm_sparse_transposed(black_box(&sparse), 0, &u).unwrap())
        });
    }
    g.finish();
    m2td_par::set_max_threads(0);
}

/// Envelope-transport overhead: the same D-M2TD job over the direct
/// in-process path vs the checksummed channel transport, at 1, 2 and 8
/// logical workers. The channel numbers price serialization, checksum
/// verification and the extra mpsc hop; results are asserted bitwise
/// equal before timing starts so the family never prices a wrong answer.
fn bench_dist_overhead(c: &mut Criterion) {
    use m2td_core::M2tdOptions;
    use m2td_dist::{d_m2td, MapReduce, TransportKind};

    let cell = |p: usize, a: usize, b: usize| {
        ((p as f64) * 0.5).sin() * ((a as f64) * 0.4 + 1.0) * ((b as f64) * 0.3 + 1.0) + 0.2
    };
    let pair = |dims: [usize; 2]| {
        let x1 = DenseTensor::from_fn(&dims, |i| cell(i[0], i[1], dims[1] / 2));
        let x2 = DenseTensor::from_fn(&dims, |i| cell(i[0], dims[1] / 2, i[1]));
        (SparseTensor::from_dense(&x1), SparseTensor::from_dense(&x2))
    };
    let (x1, x2) = pair([8, 6]);
    let ranks = [3, 3, 3];
    let opts = M2tdOptions::default();

    let mut g = c.benchmark_group("dist_overhead");
    g.sample_size(10);
    for workers in [1usize, 2, 8] {
        let direct = MapReduce::new(workers).with_transport(TransportKind::Direct);
        let channel = direct.with_transport(TransportKind::Channel);
        let baseline = d_m2td(&x1, &x2, 1, &ranks, opts, &direct).unwrap();
        let over_channel = d_m2td(&x1, &x2, 1, &ranks, opts, &channel).unwrap();
        assert_eq!(
            baseline.tucker.core.as_slice(),
            over_channel.tucker.core.as_slice(),
            "channel transport diverged at w={workers}"
        );
        for (tag, engine) in [("direct", direct), ("channel", channel)] {
            g.bench_function(format!("{tag}_w{workers}"), |b| {
                b.iter(|| d_m2td(black_box(&x1), &x2, 1, &ranks, opts, &engine).unwrap())
            });
        }
    }
    g.finish();
}

/// Serving-path QPS — the `serve` family in `BENCH_kernels.json`.
///
/// A resident [`m2td_serve::ServeEngine`] is filled from a deterministic
/// synthetic ensemble, then queried from 1, 2 and 8 std threads: the
/// single-cell path (pre-decoded `CellEvaluator` + bounded cache) and the
/// batched-TTM slice path, each tagged with its thread count, plus the
/// absorb and refresh latencies. Before timing starts, every thread
/// count's answers are asserted bitwise-equal to the single-thread
/// baseline — the serving contract the `tests/serve.rs` property tests
/// pin.
fn bench_serve(c: &mut Criterion) {
    use m2td_serve::{ServeConfig, ServeEngine};
    use std::sync::Arc;

    let dims = [16usize, 16, 12];
    let ranks = [4usize, 4, 4];
    let shape = Shape::new(&dims);
    let cells: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
        .filter(|l| l % 2 == 0)
        .map(|l| (shape.multi_index(l), (l as f64 * 0.37).sin() + 1.0))
        .collect();
    let build = |staleness: usize| {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(staleness));
        engine.register("bench", &dims, &ranks).unwrap();
        for (idx, v) in &cells {
            engine.absorb("bench", idx, *v).unwrap();
        }
        engine
    };

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    m2td_par::set_max_threads(1);
    g.bench_function(format!("absorb_{}_cells", cells.len()), |b| {
        b.iter_batched(
            || {
                let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
                engine.register("bench", &dims, &ranks).unwrap();
                engine
            },
            |engine| {
                for (idx, v) in &cells {
                    engine.absorb("bench", idx, *v).unwrap();
                }
                engine
            },
            BatchSize::SmallInput,
        )
    });

    let engine = Arc::new(build(0));
    engine.refresh("bench").unwrap();
    g.bench_function("refresh_16x16x12_r4", |b| {
        b.iter(|| engine.refresh("bench").unwrap())
    });

    // A deterministic query mix covering the whole reconstruction space.
    let queries: Vec<Vec<usize>> = (0..shape.num_elements())
        .step_by(7)
        .map(|l| shape.multi_index(l))
        .collect();
    let baseline: Vec<u64> = queries
        .iter()
        .map(|q| engine.query_cell("bench", q).unwrap().to_bits())
        .collect();

    for threads in [1usize, 2, 8] {
        m2td_par::set_max_threads(threads);
        // Queries must be bitwise identical at every thread count.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let eng = Arc::clone(&engine);
                    let qs = &queries;
                    s.spawn(move || {
                        qs.iter()
                            .map(|q| eng.query_cell("bench", q).unwrap().to_bits())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(
                    h.join().unwrap(),
                    baseline,
                    "queries diverged at t={threads}"
                );
            }
        });
        g.bench_function(format!("query_cell_x{}_t{threads}", queries.len()), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let eng = Arc::clone(&engine);
                            let qs = &queries;
                            s.spawn(move || {
                                let mut acc = 0.0;
                                for q in qs {
                                    acc += eng.query_cell("bench", q).unwrap();
                                }
                                acc
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum::<f64>()
                })
            })
        });
        // Slice path: each thread brings its own workspace so the batched
        // TTM chains run truly concurrently.
        let model = engine.model("bench").unwrap();
        g.bench_function(format!("query_slice_mode0_t{threads}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let m = Arc::clone(&model);
                            s.spawn(move || {
                                let mut ws = Workspace::new();
                                let mut acc = 0.0;
                                for i in 0..dims[0] {
                                    let slice = m.slice(0, (i + t) % dims[0], &mut ws).unwrap();
                                    acc += slice.as_slice()[0];
                                }
                                acc
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum::<f64>()
                })
            })
        });
    }
    g.finish();
    m2td_par::set_max_threads(0);
}

criterion_group!(
    kernels,
    bench_svd_routes,
    bench_eig_and_qr,
    bench_gemm,
    bench_ttm,
    bench_ttm_chain,
    bench_sketch,
    bench_gram_and_hosvd,
    bench_stitch,
    bench_shape_math,
    bench_incremental_gram,
    bench_dist_overhead,
    bench_parallel_speedup,
    bench_serve
);

fn main() {
    // Record span aggregates alongside the kernel timings: the benched
    // kernels (SVD, eig, TTM, Gram) emit spans, and `write_records`
    // appends the aggregates as `obs.span` records.
    m2td_obs::install();
    let mut c = Criterion::default();
    kernels(&mut c);
    // Check the baseline in from the repo root so the perf trajectory is
    // tracked PR over PR.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    match c.write_records(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
