//! `m2td-cli` — run one partition-stitch ensemble experiment from the
//! command line.
//!
//! ```text
//! m2td-cli list-systems
//! m2td-cli run --system double_pendulum --resolution 10 --rank 4
//! m2td-cli run --system lorenz --method avg --pivot t --e-frac 0.5
//! m2td-cli compare --system sir --resolution 8 --rank 3
//! m2td-cli run --system double_pendulum --groups 4      # multi-way
//! m2td-cli run --system sir --save decomposition.json   # persist Tucker
//! m2td-cli run --system sir --corrupt-rate 0.01 --guard-policy fail
//! m2td-cli dist --dir /tmp/job --transport channel --doom-tasks 1
//! m2td-cli dlq list --dir /tmp/job
//! m2td-cli serve --dims 16,16,12 --ranks 4,4,4 --threads 8
//! m2td-cli serve --corrupt-rate 0.05 --guard-policy fail --metrics-out m.json
//! m2td-cli bench-diff --baseline BENCH_kernels.json --current /tmp/BENCH_new.json
//! ```

use m2td_bench::registry::{system_by_name, SystemKind};
use m2td_bench::tables::workbench_config;
use m2td_core::{M2tdOptions, PivotCombine, RunReport, SimFaultPolicy, Workbench};
use m2td_sampling::{
    GridSampling, LatinHypercubeSampling, RandomSampling, SamplingScheme, SliceSampling,
    StratifiedSampling,
};
use m2td_stitch::StitchKind;
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }
}

fn usage() -> &'static str {
    "m2td-cli — partition-stitch ensemble experiments (M2TD, ICDE 2018)

USAGE:
  m2td-cli list-systems
  m2td-cli run     [flags]   run one strategy and print its report
  m2td-cli compare [flags]   run every strategy at budget parity
  m2td-cli dist    [flags]   run resumable sharded D-M2TD on a synthetic
                             deterministic input pair
  m2td-cli dlq <list|requeue|purge> --dir <path>
                             inspect or act on the dead-letter queue
  m2td-cli serve   [flags]   exercise the resident serving engine on a
                             deterministic synthetic ensemble: absorb,
                             refresh, then answer cell and slice queries
                             from N threads
  m2td-cli bench-diff [flags]
                             compare two kernel-benchmark record files
                             (BENCH_kernels.json) per (group, name,
                             threads) and fail on wall-time regressions
                             in the gated families

FLAGS (run/compare):
  --system <name>        double_pendulum | triple_pendulum | lorenz | sir | rossler
  --resolution <n>       values per parameter axis        [default 10]
  --rank <n>             target Tucker rank per mode      [default 4]
  --seed <n>             RNG seed                         [default 42]
  --noise <sigma>        measurement-noise std-dev        [default 0]
  --pivot <mode>         pivot: t or a parameter name     [default t]
  --p-frac <f>           pivot density in (0,1]           [default 1]
  --e-frac <f>           sub-ensemble density in (0,1]    [default 1]
  --cell-frac <f>        budget fraction in (0,1]         [default 1]
  --groups <n>           multi-way partition group count  [default 2]
  --threads <n>          compute threads (0 = auto; overrides
                         M2TD_THREADS)                    [default 0]
  --fault-rate <f>       per-attempt simulation failure
                         probability in [0,1); failed runs
                         become missing cells             [default 0]
  --fault-seed <n>       seed of the fault schedule       [default 0]
  --max-retries <n>      attempts per simulation run      [default 3]
  --metrics-out <path>   install the telemetry subscriber and write a
                         JSON metrics snapshot (spans, counters, gauges)
                         when the command finishes — even when it fails
  --guard-policy <p>     install the m2td-guard layer with policy
                         fail | clamp-rank | regularize[:lambda]
  --error-budget <f>     install the guard acceptance check: maximum
                         relative reconstruction error before a run is
                         reported UNHEALTHY (exit code 3)
  --corrupt-rate <f>     chaos stream: fraction of simulated cells
                         poisoned with NaN, in [0,1)      [default 0]
  --sketch-size <n>      install the m2td-sketch layer: randomized
                         range-finder / sketched-Gram width [default 8]
  --sketch-seed <n>      seed of the sketch RNG stream    [default 0x5EED]
  --power-iters <n>      range-finder power iterations    [default 1]
  --sketch-policy <p>    sketch policy:
                         gaussian | mach[:keep] | mach-biased[:keep]
                                                          [default gaussian]

FLAGS (run only):
  --method <m>           select | avg | concat | zero-join |
                         random | grid | slice | latin-hypercube | stratified
                                                          [default select]
  --save <path>          write the Tucker decomposition as JSON

FLAGS (dist):
  --dir <path>           job directory: checkpoints, manifest.json and
                         dlq.json live here (required)
  --workers <n>          logical workers                  [default 2]
  --transport <t>        direct | channel (overrides M2TD_TRANSPORT)
  --p-dim <n>            pivot-mode extent of the input   [default 8]
  --f-dim <n>            free-mode extent of the input    [default 6]
  --rank <n>             target Tucker rank per mode      [default 3]
  --kill-rate <f>        per-attempt task kill probability [default 0]
  --straggle-rate <f>    per-attempt straggler probability [default 0]
  --straggle-secs <f>    virtual straggler delay          [default 20]
  --xport-corrupt-rate <f>  per-envelope wire-damage probability
                                                          [default 0]
  --doom-tasks <csv>     reduce task ids (< 64) whose every attempt is
                         killed — they exhaust retries and park in the
                         dead-letter queue
  --doom-job <n>         job the fault plan targets when dooming
                         (1..3; restricts ALL injected faults) [default 3]
  --fault-seed <n>       seed of the fault schedule       [default 0]
  --max-retries <n>      attempts per task                [default 4]
  --min-coverage <f>     phase-3 coverage floor for degraded completion
                                                          [default 0.5]
  --metrics-out <path>   as for run/compare

FLAGS (serve):
  --dims <csv>           mode extents of the ensemble     [default 12,12,10]
  --ranks <csv>          target Tucker rank per mode      [default 3,3,3]
  --fill <f>             fraction of cells absorbed (0,1] [default 0.5]
  --staleness <n>        absorbed cells per automatic model refresh
                         (0 = one manual refresh at the end) [default 64]
  --cache-capacity <n>   cached cell predictions per model
                         (0 disables the cache)           [default 4096]
  --queries <n>          cell queries issued per thread   [default 1000]
  --slices <n>           slice queries issued             [default 8]
  --threads <n>          concurrent query threads; answers are asserted
                         bitwise-identical across threads [default 1]
  --corrupt-rate <f>     chaos stream: fraction of absorbed cells
                         poisoned with NaN, in [0,1)      [default 0]
  --fault-seed <n>       seed of the corruption schedule  [default 0]
  --guard-policy <p>     as for run/compare; with a guard installed the
                         poisoned cells are rejected at absorb time and
                         never reach the served model
  --state-dir <path>     durable mode: write-ahead log + checksummed
                         snapshots live here; a restart recovers the
                         exact pre-crash state and resumes the fill
  --wal-sync-every <n>   fsync the WAL every n appends (0 = every
                         append)                          [default 8]
  --snapshot-every <n>   seal a snapshot every n WAL records
                         (0 = only the exit snapshot)     [default 64]
  --crash-at <op>:<n>    inject a crash (exit 6) at the n-th occurrence
                         of op: absorb | refresh | wal-append |
                         snapshot-write; needs --state-dir
  --metrics-out <path>   as for run/compare

FLAGS (bench-diff):
  --baseline <path>      committed record file  [default BENCH_kernels.json]
  --current <path>       freshly generated record file (required)
  --max-regress <f>      mean-wall-time regression tolerance as a
                         fraction of the baseline; a gated record slower
                         than baseline * (1 + f) fails   [default 0.25]
  --families <csv>       benchmark groups gated by --max-regress; other
                         groups are reported but never fail — except
                         that a gated baseline record missing from
                         --current also fails   [default gemm,ttm_chain]

EXIT CODES:
  0  success
  2  usage or runtime error
  3  run completed but the guard acceptance check failed, a serve
     run produced a non-finite prediction / could not publish a model,
     or bench-diff found a gated regression or a gated baseline
     record missing from the current run
  4  dist completed degraded: tasks are parked in the dead-letter
     queue (requeue with `m2td-cli dlq requeue`, then rerun)
  5  serve recovered a corrupted state dir into read-only degraded
     mode: the intact prefix serves, writes are refused
  6  serve died at an injected --crash-at kill point; rerun with the
     same --state-dir (without --crash-at) to recover
"
}

/// Validates a probability-like flag: finite and in `[0, 1)`.
fn check_rate(name: &str, v: f64) -> Result<(), String> {
    if !(v.is_finite() && (0.0..1.0).contains(&v)) {
        return Err(format!("--{name} {v} must lie in [0, 1)"));
    }
    Ok(())
}

/// Validates a density-like flag: finite and in `(0, 1]`.
fn check_frac(name: &str, v: f64) -> Result<(), String> {
    if !(v.is_finite() && v > 0.0 && v <= 1.0) {
        return Err(format!("--{name} {v} must lie in (0, 1]"));
    }
    Ok(())
}

/// Returns the process exit code — see the EXIT CODES table in
/// [`usage`]. (Exit 6, an injected crash, never returns: the serve
/// error funnel dies in place to emulate a real kill.)
fn run() -> Result<u8, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(|s| s.as_str()) else {
        return Err(usage().to_string());
    };
    match command {
        "list-systems" => {
            for kind in [
                SystemKind::DoublePendulum,
                SystemKind::TriplePendulum,
                SystemKind::Lorenz,
                SystemKind::Sir,
                SystemKind::Rossler,
            ] {
                let sys = kind.instantiate();
                println!(
                    "{:<16} parameters: {}",
                    sys.name(),
                    sys.param_names().join(", ")
                );
            }
            Ok(0)
        }
        "run" | "compare" => {
            let args = Args::parse(&raw[1..])?;
            // Install telemetry before any work runs so simulation,
            // decomposition and fault spans are all captured.
            let metrics_out = args.get("metrics-out").map(str::to_string);
            if metrics_out.is_some() {
                m2td_obs::install();
            }
            // The snapshot is written even when the experiment errors out:
            // a chaos run that aborts on a guard detection must still
            // surface its `guard.*` counters.
            let outcome = run_experiment(command, &args);
            if let Some(path) = &metrics_out {
                write_metrics(path)?;
            }
            outcome.map(|healthy| if healthy { 0 } else { 3 })
        }
        "dist" => {
            let args = Args::parse(&raw[1..])?;
            let metrics_out = args.get("metrics-out").map(str::to_string);
            if metrics_out.is_some() {
                m2td_obs::install();
            }
            // Snapshot written even on failure, as for run/compare: a
            // degraded or aborted job must still surface dlq.* gauges.
            let outcome = run_dist(&args);
            if let Some(path) = &metrics_out {
                write_metrics(path)?;
            }
            outcome
        }
        "serve" => {
            let args = Args::parse(&raw[1..])?;
            let metrics_out = args.get("metrics-out").map(str::to_string);
            if metrics_out.is_some() {
                m2td_obs::install();
            }
            // Snapshot written even on failure: a chaos serve run that
            // exits unhealthy must still surface its serve.* counters.
            let outcome = run_serve(&args);
            if let Some(path) = &metrics_out {
                write_metrics(path)?;
            }
            outcome
        }
        "bench-diff" => run_bench_diff(&Args::parse(&raw[1..])?),
        "dlq" => {
            let Some(action) = raw.get(1).map(|s| s.as_str()) else {
                return Err(format!("dlq needs an action\n\n{}", usage()));
            };
            run_dlq(action, &Args::parse(&raw[2..])?)
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(0)
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn run_experiment(command: &str, args: &Args) -> Result<bool, String> {
    let kind = match args.get("system") {
        None => SystemKind::DoublePendulum,
        Some(name) => system_by_name(name).ok_or_else(|| format!("unknown system '{name}'"))?,
    };
    let resolution: usize = args.parse_or("resolution", 10)?;
    let rank: usize = args.parse_or("rank", 4)?;
    if resolution < 2 {
        return Err(format!("--resolution {resolution} must be at least 2"));
    }
    if rank == 0 {
        return Err("--rank 0 is out of range: ranks must be at least 1".to_string());
    }
    let mut cfg = workbench_config(kind, resolution, rank);
    cfg.seed = args.parse_or("seed", 42u64)?;
    cfg.noise_sigma = args.parse_or("noise", 0.0f64)?;
    if !(cfg.noise_sigma.is_finite() && cfg.noise_sigma >= 0.0) {
        return Err(format!(
            "--noise {} must be a non-negative finite number",
            cfg.noise_sigma
        ));
    }
    let p_frac: f64 = args.parse_or("p-frac", 1.0)?;
    let e_frac: f64 = args.parse_or("e-frac", 1.0)?;
    let cell_frac: f64 = args.parse_or("cell-frac", 1.0)?;
    check_frac("p-frac", p_frac)?;
    check_frac("e-frac", e_frac)?;
    check_frac("cell-frac", cell_frac)?;
    let groups: usize = args.parse_or("groups", 2)?;
    if groups < 2 {
        return Err(format!("--groups {groups} must be at least 2"));
    }
    let threads: usize = args.parse_or("threads", 0)?;
    if threads > 0 {
        m2td_par::set_max_threads(threads);
    }
    let fault_rate: f64 = args.parse_or("fault-rate", 0.0)?;
    let fault_seed: u64 = args.parse_or("fault-seed", 0)?;
    let max_retries: u32 = args.parse_or("max-retries", 3)?;
    check_rate("fault-rate", fault_rate)?;
    if max_retries == 0 {
        return Err("--max-retries 0 is out of range: at least one attempt is needed".to_string());
    }
    let corrupt_rate: f64 = args.parse_or("corrupt-rate", 0.0)?;
    check_rate("corrupt-rate", corrupt_rate)?;

    // Guard layer: installed iff a guard flag is present, so plain runs
    // keep the uninstalled fast path (one relaxed atomic load per check).
    let guard_policy = match args.get("guard-policy") {
        None => None,
        Some(s) => Some(
            s.parse::<m2td_guard::GuardPolicy>()
                .map_err(|e| format!("--guard-policy: {e}"))?,
        ),
    };
    let error_budget = match args.get("error-budget") {
        None => None,
        Some(v) => {
            let b: f64 = v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --error-budget"))?;
            if !(b.is_finite() && b > 0.0) {
                return Err(format!(
                    "--error-budget {b} must be a positive finite number"
                ));
            }
            Some(b)
        }
    };
    if guard_policy.is_some() || error_budget.is_some() {
        let mut gc = m2td_guard::GuardConfig::with_policy(
            guard_policy.unwrap_or(m2td_guard::GuardPolicy::Fail),
        );
        if let Some(b) = error_budget {
            gc = gc.with_error_budget(b);
        }
        m2td_guard::install(gc);
    }

    // Sketch layer: like the guard, installed iff a sketch flag is
    // present, so plain runs stay on the bitwise-identical exact path.
    let sketch_flags = ["sketch-size", "sketch-seed", "power-iters", "sketch-policy"];
    if sketch_flags.iter().any(|f| args.get(f).is_some()) {
        let defaults = m2td_sketch::SketchConfig::default();
        let size: usize = args.parse_or("sketch-size", defaults.size)?;
        if size == 0 {
            return Err("--sketch-size 0 is out of range: at least one column is needed".into());
        }
        let seed: u64 = args.parse_or("sketch-seed", defaults.seed)?;
        let power_iters: usize = args.parse_or("power-iters", defaults.power_iters)?;
        let policy = match args.get("sketch-policy") {
            None => defaults.policy,
            Some(s) => s
                .parse::<m2td_sketch::SketchPolicy>()
                .map_err(|e| format!("--sketch-policy: {e}"))?,
        };
        m2td_sketch::install(
            m2td_sketch::SketchConfig::with_size(size)
                .with_seed(seed)
                .with_power_iters(power_iters)
                .with_policy(policy),
        );
    }

    // One fault policy covers both chaos streams: simulation failures
    // (--fault-rate) and NaN-cell corruption (--corrupt-rate).
    let faults = (fault_rate > 0.0 || corrupt_rate > 0.0).then(|| {
        SimFaultPolicy::new(fault_seed, fault_rate)
            .with_max_attempts(max_retries)
            .with_nan_cell_rate(corrupt_rate)
    });

    let system = kind.instantiate();
    eprintln!(
        "building ground truth: {resolution}^5 cells for {}...",
        system.name()
    );
    let bench = Workbench::new(system.as_ref(), cfg).map_err(|e| format!("workbench: {e}"))?;
    let mode_names = bench.mode_names();
    let pivot = match args.get("pivot") {
        None => bench.n_modes() - 1,
        Some(name) => mode_names
            .iter()
            .position(|m| m == name)
            .ok_or_else(|| format!("unknown pivot '{name}' (modes: {mode_names:?})"))?,
    };

    if command == "compare" {
        let budget = bench
            .m2td_budget(pivot, p_frac, e_frac)
            .map_err(|e| e.to_string())?;
        println!("budget: {budget} cells (paper parity)\n");
        let mut healthy = true;
        for combine in PivotCombine::all() {
            let opts = M2tdOptions {
                combine,
                ..M2tdOptions::default()
            };
            let r = match &faults {
                Some(policy) => bench
                    .run_m2td_degraded(pivot, opts, p_frac, e_frac, cell_frac, policy)
                    .map_err(|e| e.to_string())?,
                None => bench
                    .run_m2td_cells(pivot, opts, p_frac, e_frac, cell_frac)
                    .map_err(|e| e.to_string())?,
            };
            print_report(&r);
            healthy &= r.is_healthy();
        }
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
            &LatinHypercubeSampling,
            &StratifiedSampling,
        ] {
            let r = bench
                .run_conventional(scheme, budget)
                .map_err(|e| e.to_string())?;
            print_report(&r);
            healthy &= r.is_healthy();
        }
        return Ok(healthy);
    }

    // run: one method.
    let method = args.get("method").unwrap_or("select");
    let report = match method {
        "select" | "avg" | "concat" | "zero-join" => {
            let opts = M2tdOptions {
                combine: match method {
                    "avg" => PivotCombine::Average,
                    "concat" => PivotCombine::Concat,
                    _ => PivotCombine::Select,
                },
                stitch: if method == "zero-join" {
                    StitchKind::ZeroJoin
                } else {
                    StitchKind::Join
                },
                ..M2tdOptions::default()
            };
            if groups != 2 {
                if faults.is_some() {
                    return Err(
                        "--fault-rate/--corrupt-rate are only supported for two-way runs \
                         (--groups 2)"
                            .to_string(),
                    );
                }
                bench
                    .run_m2td_multi(pivot, groups, opts, p_frac, e_frac)
                    .map_err(|e| e.to_string())?
            } else {
                match &faults {
                    Some(policy) => bench
                        .run_m2td_degraded(pivot, opts, p_frac, e_frac, cell_frac, policy)
                        .map_err(|e| e.to_string())?,
                    None => bench
                        .run_m2td_cells(pivot, opts, p_frac, e_frac, cell_frac)
                        .map_err(|e| e.to_string())?,
                }
            }
        }
        "random" | "grid" | "slice" | "latin-hypercube" | "stratified" => {
            let scheme: &dyn SamplingScheme = match method {
                "random" => &RandomSampling,
                "grid" => &GridSampling,
                "slice" => &SliceSampling,
                "latin-hypercube" => &LatinHypercubeSampling,
                _ => &StratifiedSampling,
            };
            let budget = bench
                .m2td_budget(pivot, p_frac, e_frac)
                .map_err(|e| e.to_string())?;
            bench
                .run_conventional(scheme, budget)
                .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown method '{other}'\n\n{}", usage())),
    };
    print_report(&report);

    if let Some(path) = args.get("save") {
        let (x1, x2, partition) = bench
            .subsystems(pivot, p_frac, e_frac, cell_frac)
            .map_err(|e| e.to_string())?;
        let ranks: Vec<usize> = partition
            .join_modes()
            .iter()
            .map(|&m| rank.min(bench.full_dims()[m]))
            .collect();
        let d = m2td_core::m2td_decompose(&x1, &x2, partition.k(), &ranks, M2tdOptions::default())
            .map_err(|e| e.to_string())?;
        m2td_tensor::save_json(&d.tucker, std::path::Path::new(path)).map_err(|e| e.to_string())?;
        println!("Tucker decomposition written to {path}");
    }
    Ok(report.is_healthy())
}

/// The deterministic synthetic input pair of `dist`: two dense 2-mode
/// sub-tensors over analytic values, so every invocation with the same
/// dimensions sees bitwise-identical inputs (no RNG, no files).
fn dist_inputs(
    p_dim: usize,
    f_dim: usize,
) -> Result<(m2td_tensor::SparseTensor, m2td_tensor::SparseTensor), String> {
    let cell = |p: usize, a: usize, b: usize| {
        ((p as f64) * 0.5).sin() * ((a as f64) * 0.4 + 1.0) * ((b as f64) * 0.3 + 1.0) + 0.2
    };
    let build = |g: &dyn Fn(usize, usize) -> f64| {
        let entries: Vec<(Vec<usize>, f64)> = (0..p_dim)
            .flat_map(|p| (0..f_dim).map(move |f| (vec![p, f], g(p, f))))
            .collect();
        m2td_tensor::SparseTensor::from_entries(&[p_dim, f_dim], &entries)
            .map_err(|e| e.to_string())
    };
    let x1 = build(&|p, f| cell(p, f, f_dim / 2))?;
    let x2 = build(&|p, f| cell(p, f_dim / 2, f))?;
    Ok((x1, x2))
}

/// FNV-1a over a byte string; the hash `dist` prints for its core so
/// shell scripts can compare runs without parsing tensors.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `dist`: one resumable sharded D-M2TD run over a job directory.
fn run_dist(args: &Args) -> Result<u8, String> {
    use m2td_dist::{
        d_m2td_resumable, CheckpointStore, DlqStore, FaultConfig, JobRecovery, ManifestStore,
        MapReduce, Phase3Strategy, TransportKind,
    };
    use m2td_fault::{FaultPlan, RetryPolicy};
    use m2td_json::ToJson;

    let dir = args.get("dir").ok_or("dist needs --dir <path>")?;
    let workers: usize = args.parse_or("workers", 2)?;
    let transport = match args.get("transport") {
        None => TransportKind::from_env(),
        Some(s) => s
            .parse::<TransportKind>()
            .map_err(|e| format!("--transport: {e}"))?,
    };
    let p_dim: usize = args.parse_or("p-dim", 8)?;
    let f_dim: usize = args.parse_or("f-dim", 6)?;
    let rank: usize = args.parse_or("rank", 3)?;
    if p_dim < 2 || f_dim < 2 {
        return Err("--p-dim and --f-dim must be at least 2".to_string());
    }
    if rank == 0 {
        return Err("--rank 0 is out of range: ranks must be at least 1".to_string());
    }
    let kill_rate: f64 = args.parse_or("kill-rate", 0.0)?;
    let straggle_rate: f64 = args.parse_or("straggle-rate", 0.0)?;
    let straggle_secs: f64 = args.parse_or("straggle-secs", 20.0)?;
    let xport_rate: f64 = args.parse_or("xport-corrupt-rate", 0.0)?;
    let fault_seed: u64 = args.parse_or("fault-seed", 0)?;
    let max_retries: u32 = args.parse_or("max-retries", 4)?;
    let min_coverage: f64 = args.parse_or("min-coverage", 0.5)?;
    check_rate("kill-rate", kill_rate)?;
    check_rate("straggle-rate", straggle_rate)?;
    check_rate("xport-corrupt-rate", xport_rate)?;
    if max_retries == 0 {
        return Err("--max-retries 0 is out of range: at least one attempt is needed".to_string());
    }
    if !(0.0..=1.0).contains(&min_coverage) {
        return Err(format!("--min-coverage {min_coverage} must lie in [0, 1]"));
    }
    let doom_job: u64 = args.parse_or("doom-job", 3u64)?;
    if !(1..=3).contains(&doom_job) {
        return Err(format!("--doom-job {doom_job} must be a phase job (1..3)"));
    }
    let mut doom_mask = 0u64;
    if let Some(csv) = args.get("doom-tasks") {
        for part in csv.split(',') {
            let task: u64 = part
                .trim()
                .parse()
                .map_err(|_| format!("--doom-tasks: invalid task id '{part}'"))?;
            if task >= 64 {
                return Err(format!("--doom-tasks: task id {task} must be below 64"));
            }
            doom_mask |= 1 << task;
        }
    }

    let mut plan = FaultPlan::new(fault_seed, kill_rate, straggle_rate, straggle_secs)
        .with_xport_corrupt_rate(xport_rate);
    if doom_mask != 0 {
        // Dooming is scoped to one job so phases that require full
        // coverage are not condemned by task ids they share with it.
        plan = plan.with_doom_mask(doom_mask).in_job(doom_job);
    }
    let faults = FaultConfig {
        plan,
        policy: RetryPolicy::with_max_attempts(max_retries),
    };

    let (x1, x2) = dist_inputs(p_dim, f_dim)?;
    let ranks = [rank.min(p_dim), rank.min(f_dim), rank.min(f_dim)];
    let engine = MapReduce::new(workers).with_transport(transport);
    let checkpoint = CheckpointStore::new(dir).map_err(|e| e.to_string())?;
    let manifest = ManifestStore::open(dir).map_err(|e| e.to_string())?;
    let dlq = DlqStore::open(dir);
    let recovery = JobRecovery::new(&manifest, &dlq).with_min_coverage(min_coverage);

    eprintln!(
        "dist: {p_dim}x{f_dim} inputs, ranks {ranks:?}, {workers} workers, {transport:?} transport"
    );
    let report = d_m2td_resumable(
        &x1,
        &x2,
        1,
        &ranks,
        M2tdOptions::default(),
        &engine,
        Phase3Strategy::ChunkPartition,
        &faults,
        Some(&checkpoint),
        &recovery,
    )
    .map_err(|e| e.to_string())?;

    let d = &report.dist;
    let mut hashed = d.tucker.core.to_json().to_compact();
    for f in &d.tucker.factors {
        hashed.push_str(&f.to_json().to_compact());
    }
    println!(
        "phases: {} + {} + {} reduce groups, {} attempts total",
        d.phase1.shuffle.reduce_groups,
        d.phase2.shuffle.reduce_groups,
        d.phase3.shuffle.reduce_groups,
        d.total_tasks().attempts(),
    );
    println!(
        "resume: {} tasks replayed from manifest, {} dead-letter entries drained",
        report.resumed_tasks, report.drained,
    );
    println!("core fnv64: {:016x}", fnv1a64(hashed.as_bytes()));
    if report.degraded {
        println!(
            "DEGRADED: phase-3 tasks {:?} are parked in the dead-letter queue; \
             requeue with `m2td-cli dlq requeue --dir {dir}` and rerun",
            report.dead_tasks,
        );
        return Ok(4);
    }
    Ok(0)
}

/// Parses a comma-separated list of positive extents (`--dims`, `--ranks`).
fn parse_extents(args: &Args, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
    let Some(csv) = args.get(key) else {
        return Ok(default.to_vec());
    };
    csv.split(',')
        .map(|part| {
            let n: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("--{key}: invalid extent '{}'", part.trim()))?;
            if n == 0 {
                return Err(format!("--{key}: extents must be at least 1"));
            }
            Ok(n)
        })
        .collect()
}

/// `serve`: a resident serving-engine session over a deterministic
/// synthetic ensemble. Cells are absorbed one at a time (optionally
/// poisoned by the chaos stream), the model refreshes on the staleness
/// schedule, then cell and slice queries run from `--threads` threads
/// and are asserted bitwise-identical across threads.
fn run_serve(args: &Args) -> Result<u8, String> {
    use m2td_serve::{DurabilityConfig, ServeConfig, ServeEngine, ServeError};
    use m2td_tensor::{Shape, TensorError};
    use std::time::Instant;

    /// Error funnel for engine calls: an injected crash emulates a
    /// process kill — print where it hit and die immediately (exit 6),
    /// skipping all cleanup. The on-disk WAL/snapshot state is what the
    /// next `--state-dir` run recovers from.
    fn serve_err(e: m2td_serve::ServeError) -> String {
        if let m2td_serve::ServeError::CrashInjected { op, sequence } = &e {
            println!("serve: CRASH — injected kill point {op}#{sequence}; restart to recover");
            std::process::exit(6);
        }
        e.to_string()
    }

    let dims = parse_extents(args, "dims", &[12, 12, 10])?;
    let ranks = parse_extents(args, "ranks", &[3, 3, 3])?;
    if dims.len() < 2 {
        return Err("--dims needs at least two extents".to_string());
    }
    let fill: f64 = args.parse_or("fill", 0.5)?;
    check_frac("fill", fill)?;
    let staleness: usize = args.parse_or("staleness", 64)?;
    let cache_capacity: usize = args.parse_or("cache-capacity", 4096)?;
    let queries: usize = args.parse_or("queries", 1000)?;
    let slices: usize = args.parse_or("slices", 8)?;
    let threads: usize = args.parse_or("threads", 1)?;
    if !(1..=64).contains(&threads) {
        return Err(format!("--threads {threads} must lie in 1..=64"));
    }
    let corrupt_rate: f64 = args.parse_or("corrupt-rate", 0.0)?;
    check_rate("corrupt-rate", corrupt_rate)?;
    let fault_seed: u64 = args.parse_or("fault-seed", 0)?;
    let state_dir = args.get("state-dir").map(str::to_string);
    let wal_sync_every: usize = args.parse_or("wal-sync-every", 8)?;
    let snapshot_every: usize = args.parse_or("snapshot-every", 64)?;
    let crash_at = match args.get("crash-at") {
        None => None,
        Some(s) => {
            let (op, seq) = s
                .split_once(':')
                .ok_or("--crash-at wants <op>:<sequence>")?;
            let op: m2td_fault::CrashOp =
                op.trim().parse().map_err(|e| format!("--crash-at: {e}"))?;
            let seq: u64 = seq
                .trim()
                .parse()
                .map_err(|_| format!("--crash-at: invalid sequence '{seq}'"))?;
            Some((op, seq))
        }
    };
    if crash_at.is_some() && state_dir.is_none() {
        return Err("--crash-at needs --state-dir (nothing survives a crash otherwise)".into());
    }
    if let Some(s) = args.get("guard-policy") {
        let policy = s
            .parse::<m2td_guard::GuardPolicy>()
            .map_err(|e| format!("--guard-policy: {e}"))?;
        m2td_guard::install(m2td_guard::GuardConfig::with_policy(policy));
    }

    let config = ServeConfig::default()
        .with_staleness(staleness)
        .with_cache_capacity(cache_capacity);
    let engine = match &state_dir {
        None => ServeEngine::new(config),
        Some(dir) => {
            let mut dur = DurabilityConfig::new(dir)
                .with_wal_sync_every(wal_sync_every)
                .with_snapshot_every(snapshot_every);
            if let Some((op, seq)) = crash_at {
                dur = dur.with_crash_point(op, seq);
            }
            let (engine, rep) = ServeEngine::recover(config, dur).map_err(serve_err)?;
            println!(
                "serve: state dir {dir}: recovered from snapshot {}, replayed {} WAL record(s)",
                rep.snapshot_seq
                    .map_or("<none>".to_string(), |s| format!("seq {s}")),
                rep.replayed,
            );
            if rep.degraded {
                println!(
                    "serve: UNHEALTHY — unrecoverable store corruption in {dir}; the \
                     recovered prefix serves read-only, writes are refused"
                );
                return Ok(5);
            }
            engine
        }
    };
    match engine.register("cli", &dims, &ranks) {
        Ok(()) => {}
        // Resuming a state dir: the ensemble is already registered.
        Err(ServeError::AlreadyRegistered { .. }) if state_dir.is_some() => {}
        Err(e) => return Err(serve_err(e)),
    }

    // Deterministic fill: every `stride`-th cell of the analytic field;
    // the chaos stream poisons a hash-selected subset with NaN. On a
    // resumed state dir, cells the previous run durably absorbed come
    // back as duplicates and are skipped — the fill converges to the
    // same final state an uninterrupted run reaches.
    let shape = Shape::new(&dims);
    let total = shape.num_elements();
    let stride = ((1.0 / fill).round() as usize).max(1);
    let (mut absorbed, mut rejected, mut poisoned, mut resumed) = (0usize, 0usize, 0usize, 0usize);
    for l in (0..total).step_by(stride) {
        let mut value = ((l as f64) * 0.37).sin() + 1.0;
        if corrupt_rate > 0.0 {
            let h = fnv1a64(&(l as u64 ^ fault_seed.rotate_left(17)).to_le_bytes());
            if ((h >> 11) as f64 / (1u64 << 53) as f64) < corrupt_rate {
                value = f64::NAN;
                poisoned += 1;
            }
        }
        match engine.absorb("cli", &shape.multi_index(l), value) {
            Ok(_) => absorbed += 1,
            Err(ServeError::Tensor(TensorError::Guard(_))) => rejected += 1,
            Err(ServeError::Tensor(TensorError::DuplicateEntry { .. })) if state_dir.is_some() => {
                resumed += 1;
            }
            Err(e) => return Err(serve_err(e)),
        }
    }
    println!(
        "serve: dims {dims:?} ranks {ranks:?}, absorbed {absorbed} cells \
         ({poisoned} poisoned, {rejected} rejected by the guard, {resumed} already durable)"
    );

    // Pick up the tail of the staleness window; a guard-rejected refresh
    // with no previously published model means nothing can be served.
    let mut stats = engine.stats("cli").map_err(|e| e.to_string())?;
    if stats.pending > 0 || stats.model_version == 0 {
        match engine.refresh("cli") {
            Ok(r) => println!(
                "serve: refreshed to model v{}, served ranks {:?} from {} basis cells",
                r.version,
                r.ranks(),
                r.basis_cells,
            ),
            Err(e) => {
                let e = serve_err(e);
                stats = engine.stats("cli").map_err(|e| e.to_string())?;
                if stats.model_version == 0 {
                    println!(
                        "serve: UNHEALTHY — refresh rejected with no model to fall back to: {e}"
                    );
                    return Ok(3);
                }
                println!(
                    "serve: refresh rejected ({e}); model v{} keeps serving",
                    stats.model_version
                );
            }
        }
    }
    stats = engine.stats("cli").map_err(|e| e.to_string())?;

    // Cell queries from N threads; every thread must observe bitwise
    // the same predictions (published-snapshot serving contract).
    let query_set: Vec<Vec<usize>> = (0..queries)
        .map(|k| shape.multi_index((k.wrapping_mul(7919)) % total))
        .collect();
    let started = Instant::now();
    let per_thread: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let eng = &engine;
                let qs = &query_set;
                s.spawn(move || {
                    qs.iter()
                        .map(|q| eng.query_cell("cli", q).map(f64::to_bits))
                        .collect::<Result<Vec<u64>, _>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })
    .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed().as_secs_f64();
    for t in &per_thread[1..] {
        if *t != per_thread[0] {
            return Err("serve: queries diverged across threads".to_string());
        }
    }
    let qps = (threads * queries) as f64 / elapsed.max(1e-12);
    println!(
        "serve: {} cell queries from {threads} thread(s) in {:.2} ms ({:.0} q/s), thread-invariant",
        threads * queries,
        elapsed * 1e3,
        qps,
    );

    let mut all_finite = per_thread[0].iter().all(|&b| f64::from_bits(b).is_finite());
    let mut slice_peak = 0.0f64;
    for k in 0..slices {
        let mode = k % dims.len();
        let index = (k / dims.len()) % dims[mode];
        let slice = engine
            .query_slice("cli", mode, index)
            .map_err(|e| e.to_string())?;
        for &v in slice.as_slice() {
            all_finite &= v.is_finite();
            slice_peak = slice_peak.max(v.abs());
        }
    }
    println!("serve: {slices} slice queries, peak |value| {slice_peak:.3e}");
    println!(
        "serve: model v{}, {} cells resident, {} pending",
        stats.model_version, stats.nnz, stats.pending,
    );

    // Bit-exact fingerprint of the served model: the crash-matrix CI job
    // compares this line between a crashed-and-recovered run and an
    // uninterrupted one.
    let model = engine.model("cli").map_err(|e| e.to_string())?;
    let mut core_bytes = Vec::with_capacity(model.decomp().core.as_slice().len() * 8);
    for &v in model.decomp().core.as_slice() {
        core_bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for f in &model.decomp().factors {
        for &v in f.as_slice() {
            core_bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    println!("serve: core fnv64:{:016x}", fnv1a64(&core_bytes));

    if state_dir.is_some() {
        if let Some(seq) = engine.snapshot().map_err(serve_err)? {
            println!("serve: sealed exit snapshot at seq {seq}");
        }
    }
    if !all_finite {
        println!("serve: UNHEALTHY — non-finite predictions were served");
        return Ok(3);
    }
    Ok(0)
}

/// Loads a kernel-benchmark record file written by the `kernels` bench
/// (`cargo bench -p m2td-bench --bench kernels`).
fn load_kernel_records(path: &str) -> Result<Vec<m2td_bench::report::KernelRecord>, String> {
    use m2td_json::{FromJson, Json};
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read records at {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    FromJson::from_json(&json).map_err(|e| format!("{path} is not a kernel record array: {e}"))
}

/// `bench-diff`: the CI perf-regression gate. Joins two kernel-record
/// files per `(group, name, threads)`, prints every record's wall-time
/// delta, and exits 3 when a record in a gated family regressed beyond
/// `--max-regress` — or when a gated baseline record is missing from
/// the current run (a silently dropped benchmark would otherwise retire
/// its own gate). New records with no baseline and ungated retirements
/// are reported but never fail the gate.
fn run_bench_diff(args: &Args) -> Result<u8, String> {
    let baseline_path = args.get("baseline").unwrap_or("BENCH_kernels.json");
    let current_path = args
        .get("current")
        .ok_or("bench-diff needs --current <path>")?;
    let max_regress: f64 = args.parse_or("max-regress", 0.25)?;
    if !(max_regress.is_finite() && max_regress > 0.0) {
        return Err(format!(
            "--max-regress {max_regress} must be a positive finite fraction"
        ));
    }
    let families: Vec<String> = args
        .get("families")
        .unwrap_or("gemm,ttm_chain")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();

    let baseline = load_kernel_records(baseline_path)?;
    let current = load_kernel_records(current_path)?;
    let base_map: HashMap<(&str, &str, usize), f64> = baseline
        .iter()
        .map(|r| ((r.group.as_str(), r.name.as_str(), r.threads), r.mean_ns))
        .collect();
    let cur_keys: std::collections::HashSet<(&str, &str, usize)> = current
        .iter()
        .map(|r| (r.group.as_str(), r.name.as_str(), r.threads))
        .collect();

    println!(
        "bench-diff: {} baseline vs {} current records, gating {:?} at +{:.0}%",
        baseline.len(),
        current.len(),
        families,
        max_regress * 100.0,
    );
    let mut regressions = 0usize;
    for r in &current {
        let gated = families.contains(&r.group);
        let line = format!(
            "{:<14} {:<28} t={:<2} {:>10.3} ms",
            r.group,
            r.name,
            r.threads,
            r.mean_ns / 1e6,
        );
        match base_map.get(&(r.group.as_str(), r.name.as_str(), r.threads)) {
            None => println!("{line}  (new, no baseline)"),
            Some(&base_ns) if base_ns <= 0.0 => println!("{line}  (baseline empty)"),
            Some(&base_ns) => {
                let delta = r.mean_ns / base_ns - 1.0;
                let verdict = if gated && delta > max_regress {
                    regressions += 1;
                    "  REGRESSION"
                } else if gated {
                    "  ok"
                } else {
                    "  (ungated)"
                };
                println!(
                    "{line}  vs {:>10.3} ms  {:>+7.1}%{verdict}",
                    base_ns / 1e6,
                    delta * 100.0
                );
            }
        }
    }
    let mut missing = 0usize;
    for r in &baseline {
        if !cur_keys.contains(&(r.group.as_str(), r.name.as_str(), r.threads)) {
            if families.contains(&r.group) {
                missing += 1;
                println!(
                    "{:<14} {:<28} t={:<2} MISSING from current (gated)",
                    r.group, r.name, r.threads
                );
            } else {
                println!(
                    "{:<14} {:<28} t={:<2} missing from current (retired?)",
                    r.group, r.name, r.threads
                );
            }
        }
    }
    if regressions > 0 || missing > 0 {
        println!(
            "bench-diff: FAIL — {regressions} gated record(s) regressed beyond +{:.0}%, \
             {missing} gated baseline record(s) missing from current; if the slowdown \
             or retirement is intended, refresh the committed baseline \
             (see .github/workflows/ci.yml bench-gate)",
            max_regress * 100.0,
        );
        return Ok(3);
    }
    println!(
        "bench-diff: ok — no gated regression beyond +{:.0}%",
        max_regress * 100.0
    );
    Ok(0)
}

/// `dlq`: list, requeue or purge the dead-letter queue of a job directory.
fn run_dlq(action: &str, args: &Args) -> Result<u8, String> {
    let dir = args.get("dir").ok_or("dlq needs --dir <path>")?;
    let store = m2td_dist::DlqStore::open(dir);
    match action {
        "list" => {
            let entries = store.entries();
            println!("{} dead-letter entries in {dir}", entries.len());
            for e in entries {
                println!(
                    "job {} phase {} {} task {:<4} attempts {}  {}  {}",
                    e.job,
                    e.phase,
                    e.kind,
                    e.task,
                    e.attempts,
                    if e.requeued { "requeued" } else { "parked" },
                    e.error,
                );
            }
            Ok(0)
        }
        "requeue" => {
            let n = store.requeue_all()?;
            println!("{n} entries marked for requeue; the next resumable run re-executes them");
            Ok(0)
        }
        "purge" => {
            let n = store.purge()?;
            println!("{n} entries purged");
            Ok(0)
        }
        other => Err(format!("unknown dlq action '{other}'\n\n{}", usage())),
    }
}

/// Writes the current telemetry snapshot as pretty-printed JSON.
fn write_metrics(path: &str) -> Result<(), String> {
    use m2td_json::ToJson;
    let snap = m2td_obs::snapshot();
    std::fs::write(path, snap.to_json().to_pretty())
        .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    println!("metrics written to {path}");
    Ok(())
}

fn print_report(r: &RunReport) {
    println!(
        "{:<18} accuracy {:>10.4e}   decompose {:>7.1} ms   {:>8} cells ({} sims), density {:.2e}",
        r.method,
        r.accuracy,
        r.decompose_secs * 1e3,
        r.cells,
        r.distinct_sims,
        r.density,
    );
    if let Some(d) = &r.degraded {
        println!(
            "{:<18} degraded mode: {} failed sims, {} retries, coverage {:.1}% of {} planned cells",
            "",
            d.failed_sims,
            d.sim_retries,
            d.coverage * 100.0,
            d.planned_cells,
        );
    }
    if let Some(g) = &r.guard {
        println!(
            "{:<18} guard: {} — relative error {:.3e} vs budget {:.3e}",
            "",
            if g.healthy { "healthy" } else { "UNHEALTHY" },
            g.relative_error,
            g.budget,
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
