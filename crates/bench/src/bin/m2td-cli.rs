//! `m2td-cli` — run one partition-stitch ensemble experiment from the
//! command line.
//!
//! ```text
//! m2td-cli list-systems
//! m2td-cli run --system double_pendulum --resolution 10 --rank 4
//! m2td-cli run --system lorenz --method avg --pivot t --e-frac 0.5
//! m2td-cli compare --system sir --resolution 8 --rank 3
//! m2td-cli run --system double_pendulum --groups 4      # multi-way
//! m2td-cli run --system sir --save decomposition.json   # persist Tucker
//! m2td-cli run --system sir --corrupt-rate 0.01 --guard-policy fail
//! ```

use m2td_bench::registry::{system_by_name, SystemKind};
use m2td_bench::tables::workbench_config;
use m2td_core::{M2tdOptions, PivotCombine, RunReport, SimFaultPolicy, Workbench};
use m2td_sampling::{
    GridSampling, LatinHypercubeSampling, RandomSampling, SamplingScheme, SliceSampling,
    StratifiedSampling,
};
use m2td_stitch::StitchKind;
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }
}

fn usage() -> &'static str {
    "m2td-cli — partition-stitch ensemble experiments (M2TD, ICDE 2018)

USAGE:
  m2td-cli list-systems
  m2td-cli run     [flags]   run one strategy and print its report
  m2td-cli compare [flags]   run every strategy at budget parity

FLAGS (run/compare):
  --system <name>        double_pendulum | triple_pendulum | lorenz | sir | rossler
  --resolution <n>       values per parameter axis        [default 10]
  --rank <n>             target Tucker rank per mode      [default 4]
  --seed <n>             RNG seed                         [default 42]
  --noise <sigma>        measurement-noise std-dev        [default 0]
  --pivot <mode>         pivot: t or a parameter name     [default t]
  --p-frac <f>           pivot density in (0,1]           [default 1]
  --e-frac <f>           sub-ensemble density in (0,1]    [default 1]
  --cell-frac <f>        budget fraction in (0,1]         [default 1]
  --groups <n>           multi-way partition group count  [default 2]
  --threads <n>          compute threads (0 = auto; overrides
                         M2TD_THREADS)                    [default 0]
  --fault-rate <f>       per-attempt simulation failure
                         probability in [0,1); failed runs
                         become missing cells             [default 0]
  --fault-seed <n>       seed of the fault schedule       [default 0]
  --max-retries <n>      attempts per simulation run      [default 3]
  --metrics-out <path>   install the telemetry subscriber and write a
                         JSON metrics snapshot (spans, counters, gauges)
                         when the command finishes — even when it fails
  --guard-policy <p>     install the m2td-guard layer with policy
                         fail | clamp-rank | regularize[:lambda]
  --error-budget <f>     install the guard acceptance check: maximum
                         relative reconstruction error before a run is
                         reported UNHEALTHY (exit code 3)
  --corrupt-rate <f>     chaos stream: fraction of simulated cells
                         poisoned with NaN, in [0,1)      [default 0]
  --sketch-size <n>      install the m2td-sketch layer: randomized
                         range-finder / sketched-Gram width [default 8]
  --sketch-seed <n>      seed of the sketch RNG stream    [default 0x5EED]
  --power-iters <n>      range-finder power iterations    [default 1]
  --sketch-policy <p>    sketch policy:
                         gaussian | mach[:keep] | mach-biased[:keep]
                                                          [default gaussian]

FLAGS (run only):
  --method <m>           select | avg | concat | zero-join |
                         random | grid | slice | latin-hypercube | stratified
                                                          [default select]
  --save <path>          write the Tucker decomposition as JSON

EXIT CODES:
  0  success             2  usage or runtime error
  3  run completed but the guard acceptance check failed
"
}

/// Validates a probability-like flag: finite and in `[0, 1)`.
fn check_rate(name: &str, v: f64) -> Result<(), String> {
    if !(v.is_finite() && (0.0..1.0).contains(&v)) {
        return Err(format!("--{name} {v} must lie in [0, 1)"));
    }
    Ok(())
}

/// Validates a density-like flag: finite and in `(0, 1]`.
fn check_frac(name: &str, v: f64) -> Result<(), String> {
    if !(v.is_finite() && v > 0.0 && v <= 1.0) {
        return Err(format!("--{name} {v} must lie in (0, 1]"));
    }
    Ok(())
}

/// Returns `Ok(healthy)`: `false` when any printed run failed its guard
/// acceptance check (the process then exits with code 3).
fn run() -> Result<bool, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(|s| s.as_str()) else {
        return Err(usage().to_string());
    };
    match command {
        "list-systems" => {
            for kind in [
                SystemKind::DoublePendulum,
                SystemKind::TriplePendulum,
                SystemKind::Lorenz,
                SystemKind::Sir,
                SystemKind::Rossler,
            ] {
                let sys = kind.instantiate();
                println!(
                    "{:<16} parameters: {}",
                    sys.name(),
                    sys.param_names().join(", ")
                );
            }
            Ok(true)
        }
        "run" | "compare" => {
            let args = Args::parse(&raw[1..])?;
            // Install telemetry before any work runs so simulation,
            // decomposition and fault spans are all captured.
            let metrics_out = args.get("metrics-out").map(str::to_string);
            if metrics_out.is_some() {
                m2td_obs::install();
            }
            // The snapshot is written even when the experiment errors out:
            // a chaos run that aborts on a guard detection must still
            // surface its `guard.*` counters.
            let outcome = run_experiment(command, &args);
            if let Some(path) = &metrics_out {
                write_metrics(path)?;
            }
            outcome
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(true)
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn run_experiment(command: &str, args: &Args) -> Result<bool, String> {
    let kind = match args.get("system") {
        None => SystemKind::DoublePendulum,
        Some(name) => system_by_name(name).ok_or_else(|| format!("unknown system '{name}'"))?,
    };
    let resolution: usize = args.parse_or("resolution", 10)?;
    let rank: usize = args.parse_or("rank", 4)?;
    if resolution < 2 {
        return Err(format!("--resolution {resolution} must be at least 2"));
    }
    if rank == 0 {
        return Err("--rank 0 is out of range: ranks must be at least 1".to_string());
    }
    let mut cfg = workbench_config(kind, resolution, rank);
    cfg.seed = args.parse_or("seed", 42u64)?;
    cfg.noise_sigma = args.parse_or("noise", 0.0f64)?;
    if !(cfg.noise_sigma.is_finite() && cfg.noise_sigma >= 0.0) {
        return Err(format!(
            "--noise {} must be a non-negative finite number",
            cfg.noise_sigma
        ));
    }
    let p_frac: f64 = args.parse_or("p-frac", 1.0)?;
    let e_frac: f64 = args.parse_or("e-frac", 1.0)?;
    let cell_frac: f64 = args.parse_or("cell-frac", 1.0)?;
    check_frac("p-frac", p_frac)?;
    check_frac("e-frac", e_frac)?;
    check_frac("cell-frac", cell_frac)?;
    let groups: usize = args.parse_or("groups", 2)?;
    if groups < 2 {
        return Err(format!("--groups {groups} must be at least 2"));
    }
    let threads: usize = args.parse_or("threads", 0)?;
    if threads > 0 {
        m2td_par::set_max_threads(threads);
    }
    let fault_rate: f64 = args.parse_or("fault-rate", 0.0)?;
    let fault_seed: u64 = args.parse_or("fault-seed", 0)?;
    let max_retries: u32 = args.parse_or("max-retries", 3)?;
    check_rate("fault-rate", fault_rate)?;
    if max_retries == 0 {
        return Err("--max-retries 0 is out of range: at least one attempt is needed".to_string());
    }
    let corrupt_rate: f64 = args.parse_or("corrupt-rate", 0.0)?;
    check_rate("corrupt-rate", corrupt_rate)?;

    // Guard layer: installed iff a guard flag is present, so plain runs
    // keep the uninstalled fast path (one relaxed atomic load per check).
    let guard_policy = match args.get("guard-policy") {
        None => None,
        Some(s) => Some(
            s.parse::<m2td_guard::GuardPolicy>()
                .map_err(|e| format!("--guard-policy: {e}"))?,
        ),
    };
    let error_budget = match args.get("error-budget") {
        None => None,
        Some(v) => {
            let b: f64 = v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --error-budget"))?;
            if !(b.is_finite() && b > 0.0) {
                return Err(format!(
                    "--error-budget {b} must be a positive finite number"
                ));
            }
            Some(b)
        }
    };
    if guard_policy.is_some() || error_budget.is_some() {
        let mut gc = m2td_guard::GuardConfig::with_policy(
            guard_policy.unwrap_or(m2td_guard::GuardPolicy::Fail),
        );
        if let Some(b) = error_budget {
            gc = gc.with_error_budget(b);
        }
        m2td_guard::install(gc);
    }

    // Sketch layer: like the guard, installed iff a sketch flag is
    // present, so plain runs stay on the bitwise-identical exact path.
    let sketch_flags = ["sketch-size", "sketch-seed", "power-iters", "sketch-policy"];
    if sketch_flags.iter().any(|f| args.get(f).is_some()) {
        let defaults = m2td_sketch::SketchConfig::default();
        let size: usize = args.parse_or("sketch-size", defaults.size)?;
        if size == 0 {
            return Err("--sketch-size 0 is out of range: at least one column is needed".into());
        }
        let seed: u64 = args.parse_or("sketch-seed", defaults.seed)?;
        let power_iters: usize = args.parse_or("power-iters", defaults.power_iters)?;
        let policy = match args.get("sketch-policy") {
            None => defaults.policy,
            Some(s) => s
                .parse::<m2td_sketch::SketchPolicy>()
                .map_err(|e| format!("--sketch-policy: {e}"))?,
        };
        m2td_sketch::install(
            m2td_sketch::SketchConfig::with_size(size)
                .with_seed(seed)
                .with_power_iters(power_iters)
                .with_policy(policy),
        );
    }

    // One fault policy covers both chaos streams: simulation failures
    // (--fault-rate) and NaN-cell corruption (--corrupt-rate).
    let faults = (fault_rate > 0.0 || corrupt_rate > 0.0).then(|| {
        SimFaultPolicy::new(fault_seed, fault_rate)
            .with_max_attempts(max_retries)
            .with_nan_cell_rate(corrupt_rate)
    });

    let system = kind.instantiate();
    eprintln!(
        "building ground truth: {resolution}^5 cells for {}...",
        system.name()
    );
    let bench = Workbench::new(system.as_ref(), cfg).map_err(|e| format!("workbench: {e}"))?;
    let mode_names = bench.mode_names();
    let pivot = match args.get("pivot") {
        None => bench.n_modes() - 1,
        Some(name) => mode_names
            .iter()
            .position(|m| m == name)
            .ok_or_else(|| format!("unknown pivot '{name}' (modes: {mode_names:?})"))?,
    };

    if command == "compare" {
        let budget = bench
            .m2td_budget(pivot, p_frac, e_frac)
            .map_err(|e| e.to_string())?;
        println!("budget: {budget} cells (paper parity)\n");
        let mut healthy = true;
        for combine in PivotCombine::all() {
            let opts = M2tdOptions {
                combine,
                ..M2tdOptions::default()
            };
            let r = match &faults {
                Some(policy) => bench
                    .run_m2td_degraded(pivot, opts, p_frac, e_frac, cell_frac, policy)
                    .map_err(|e| e.to_string())?,
                None => bench
                    .run_m2td_cells(pivot, opts, p_frac, e_frac, cell_frac)
                    .map_err(|e| e.to_string())?,
            };
            print_report(&r);
            healthy &= r.is_healthy();
        }
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
            &LatinHypercubeSampling,
            &StratifiedSampling,
        ] {
            let r = bench
                .run_conventional(scheme, budget)
                .map_err(|e| e.to_string())?;
            print_report(&r);
            healthy &= r.is_healthy();
        }
        return Ok(healthy);
    }

    // run: one method.
    let method = args.get("method").unwrap_or("select");
    let report = match method {
        "select" | "avg" | "concat" | "zero-join" => {
            let opts = M2tdOptions {
                combine: match method {
                    "avg" => PivotCombine::Average,
                    "concat" => PivotCombine::Concat,
                    _ => PivotCombine::Select,
                },
                stitch: if method == "zero-join" {
                    StitchKind::ZeroJoin
                } else {
                    StitchKind::Join
                },
                ..M2tdOptions::default()
            };
            if groups != 2 {
                if faults.is_some() {
                    return Err(
                        "--fault-rate/--corrupt-rate are only supported for two-way runs \
                         (--groups 2)"
                            .to_string(),
                    );
                }
                bench
                    .run_m2td_multi(pivot, groups, opts, p_frac, e_frac)
                    .map_err(|e| e.to_string())?
            } else {
                match &faults {
                    Some(policy) => bench
                        .run_m2td_degraded(pivot, opts, p_frac, e_frac, cell_frac, policy)
                        .map_err(|e| e.to_string())?,
                    None => bench
                        .run_m2td_cells(pivot, opts, p_frac, e_frac, cell_frac)
                        .map_err(|e| e.to_string())?,
                }
            }
        }
        "random" | "grid" | "slice" | "latin-hypercube" | "stratified" => {
            let scheme: &dyn SamplingScheme = match method {
                "random" => &RandomSampling,
                "grid" => &GridSampling,
                "slice" => &SliceSampling,
                "latin-hypercube" => &LatinHypercubeSampling,
                _ => &StratifiedSampling,
            };
            let budget = bench
                .m2td_budget(pivot, p_frac, e_frac)
                .map_err(|e| e.to_string())?;
            bench
                .run_conventional(scheme, budget)
                .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown method '{other}'\n\n{}", usage())),
    };
    print_report(&report);

    if let Some(path) = args.get("save") {
        let (x1, x2, partition) = bench
            .subsystems(pivot, p_frac, e_frac, cell_frac)
            .map_err(|e| e.to_string())?;
        let ranks: Vec<usize> = partition
            .join_modes()
            .iter()
            .map(|&m| rank.min(bench.full_dims()[m]))
            .collect();
        let d = m2td_core::m2td_decompose(&x1, &x2, partition.k(), &ranks, M2tdOptions::default())
            .map_err(|e| e.to_string())?;
        m2td_tensor::save_json(&d.tucker, std::path::Path::new(path)).map_err(|e| e.to_string())?;
        println!("Tucker decomposition written to {path}");
    }
    Ok(report.is_healthy())
}

/// Writes the current telemetry snapshot as pretty-printed JSON.
fn write_metrics(path: &str) -> Result<(), String> {
    use m2td_json::ToJson;
    let snap = m2td_obs::snapshot();
    std::fs::write(path, snap.to_json().to_pretty())
        .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    println!("metrics written to {path}");
    Ok(())
}

fn print_report(r: &RunReport) {
    println!(
        "{:<18} accuracy {:>10.4e}   decompose {:>7.1} ms   {:>8} cells ({} sims), density {:.2e}",
        r.method,
        r.accuracy,
        r.decompose_secs * 1e3,
        r.cells,
        r.distinct_sims,
        r.density,
    );
    if let Some(d) = &r.degraded {
        println!(
            "{:<18} degraded mode: {} failed sims, {} retries, coverage {:.1}% of {} planned cells",
            "",
            d.failed_sims,
            d.sim_retries,
            d.coverage * 100.0,
            d.planned_cells,
        );
    }
    if let Some(g) = &r.guard {
        println!(
            "{:<18} guard: {} — relative error {:.3e} vs budget {:.3e}",
            "",
            if g.healthy { "healthy" } else { "UNHEALTHY" },
            g.relative_error,
            g.budget,
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(3),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
