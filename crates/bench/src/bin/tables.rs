//! Regenerates every table of the paper's evaluation section (and the
//! ablation studies) at reproduction scale.
//!
//! ```text
//! cargo run --release -p m2td-bench --bin tables -- all
//! cargo run --release -p m2td-bench --bin tables -- table2 table5
//! cargo run --release -p m2td-bench --bin tables -- --quick all
//! ```
//!
//! Results are printed and written as JSON under `results/`.

use m2td_bench::report::TableResult;
use m2td_bench::tables::*;
use std::path::PathBuf;
use std::time::Instant;

struct Scale {
    table2_res: Vec<usize>,
    table2_ranks: Vec<usize>,
    res: usize,
    rank: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            table2_res: vec![10, 12, 14],
            table2_ranks: vec![2, 4, 8],
            res: 12,
            rank: 4,
        }
    }

    fn quick() -> Self {
        Self {
            table2_res: vec![6, 8],
            table2_ranks: vec![2, 4],
            res: 8,
            rank: 2,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let selected = if selected.is_empty() || selected.contains(&"all") {
        vec![
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "ablations",
        ]
    } else {
        selected
    };
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let out_dir = PathBuf::from("results");

    let mut emitted: Vec<TableResult> = Vec::new();
    for name in &selected {
        let t0 = Instant::now();
        let result: Result<Vec<TableResult>, Box<dyn std::error::Error>> = match *name {
            "table2" => run_table2(&scale.table2_res, &scale.table2_ranks).map(|(a, b)| vec![a, b]),
            "table3" => run_table3(scale.res, scale.rank, &[1, 2, 4, 9, 18]).map(|t| vec![t]),
            "table4" => run_table4(scale.res, scale.rank).map(|(a, b)| vec![a, b]),
            "table5" => run_table5(scale.res, scale.rank).map(|t| vec![t]),
            "table6" => run_table6(scale.res, scale.rank).map(|t| vec![t]),
            "table7" => run_table7(scale.res, scale.rank).map(|t| vec![t]),
            "table8" => run_table8(scale.res, scale.rank).map(|(a, b)| vec![a, b]),
            "ablations" => (|| {
                Ok(vec![
                    run_ablation_hooi(scale.res, scale.rank)?,
                    run_ablation_projection(scale.res, scale.rank)?,
                    run_ablation_ttm_order(scale.res, scale.rank)?,
                    run_ablation_pivot_k(scale.res, scale.rank)?,
                    run_ablation_partitions(scale.res, scale.rank)?,
                    run_extra_baselines(scale.res, scale.rank)?,
                    run_ablation_noise(scale.res, scale.rank)?,
                ])
            })(),
            other => {
                eprintln!("unknown table '{other}' — expected table2..table8, ablations, all");
                std::process::exit(2);
            }
        };
        match result {
            Ok(tables) => {
                for t in tables {
                    println!("{}", t.render());
                    if let Err(e) = t.write_json(&out_dir) {
                        eprintln!("warning: could not write {}: {e}", t.id);
                    }
                    emitted.push(t);
                }
                println!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error running {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "{} table(s) written to {}/",
        emitted.len(),
        out_dir.display()
    );
}
