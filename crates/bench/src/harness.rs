//! Minimal Criterion-compatible benchmark harness.
//!
//! The offline build environment has no crates.io access, so the
//! `criterion` dev-dependency is replaced by this small in-tree harness
//! exposing the same call surface the benches use (`benchmark_group`,
//! `sample_size`, `bench_function`, `iter`, `iter_batched`, plus the
//! `criterion_group!`/`criterion_main!` macros at the crate root).
//!
//! Every completed benchmark is recorded as a [`KernelRecord`] tagged
//! with the `m2td_par::max_threads()` in effect while it ran, so
//! serial-vs-parallel numbers land in the same report.

use crate::report::KernelRecord;
use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Warm-up iterations before sampling starts.
const WARMUP_ITERS: usize = 2;

/// Top-level harness state: collects one [`KernelRecord`] per benchmark.
#[derive(Default)]
pub struct Criterion {
    records: Vec<KernelRecord>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            records: &mut self.records,
        }
    }

    /// All records collected so far.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Writes the collected records as a JSON array at `path`.
    ///
    /// If an `m2td-obs` subscriber is installed, the span aggregates
    /// recorded while the benchmarks ran are appended as extra records
    /// (group `"obs.span"`, one per span label, `mean_ns` = mean span wall
    /// time, `samples` = span count) so kernel timings and in-pipeline
    /// telemetry land in the same file under the same schema.
    pub fn write_records(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut records = self.records.clone();
        if let Some(snap) = m2td_obs::snapshot_if_installed() {
            for s in &snap.spans {
                records.push(KernelRecord {
                    group: "obs.span".to_string(),
                    name: s.label.clone(),
                    threads: m2td_par::max_threads(),
                    mean_ns: if s.count > 0 {
                        s.total_secs * 1e9 / s.count as f64
                    } else {
                        0.0
                    },
                    samples: s.count as usize,
                    rel_err: None,
                });
            }
        }
        crate::report::write_kernel_records(&records, path)
    }

    /// Prints a one-line summary per record.
    pub fn final_summary(&self) {
        for r in &self.records {
            println!(
                "{}/{}: {} ({} samples, threads={})",
                r.group,
                r.name,
                format_ns(r.mean_ns),
                r.samples,
                r.threads
            );
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    records: &'a mut Vec<KernelRecord>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and records its mean iteration time.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.total_ns / b.iters as f64
        } else {
            0.0
        };
        let record = KernelRecord {
            group: self.name.clone(),
            name: id,
            threads: m2td_par::max_threads(),
            mean_ns,
            samples: b.iters,
            rel_err: None,
        };
        println!(
            "{}/{}: {} ({} samples, threads={})",
            record.group,
            record.name,
            format_ns(record.mean_ns),
            record.samples,
            record.threads
        );
        self.records.push(record);
    }

    /// Attaches a measured relative error (computed OUTSIDE any timed
    /// region) to the most recently recorded benchmark in this group.
    /// Used by randomized-kernel benches so `BENCH_kernels.json` carries
    /// accuracy next to speed.
    pub fn attach_rel_err(&mut self, rel_err: f64) {
        if let Some(last) = self.records.last_mut() {
            last.rel_err = Some(rel_err);
        }
    }

    /// Ends the group (for API parity; records are already stored).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    samples: usize,
    total_ns: f64,
    iters: usize,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            self.total_ns += t.elapsed().as_nanos() as f64;
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.total_ns += t.elapsed().as_nanos() as f64;
            self.iters += 1;
        }
    }
}

/// Batch sizing hint (accepted for Criterion API parity; the harness
/// always runs one routine call per sample).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; one per sample.
    SmallInput,
    /// Inputs are large; one per sample.
    LargeInput,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Defines a function running a list of benchmark functions, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Defines `main` running the given groups, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_threads_and_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.records()[0].samples, 3);
        assert_eq!(c.records()[0].threads, m2td_par::max_threads());
        assert!(c.records()[1].mean_ns >= 0.0);
    }
}
