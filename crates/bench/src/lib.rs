//! Experiment harness shared by the `tables` binary and the Criterion
//! benches: table configurations, system registry, result records and
//! text-table formatting.
//!
//! Every table of the paper's evaluation section has a `run_table*`
//! function here that returns machine-readable [`TableResult`] records;
//! the `tables` binary prints them and writes them to `results/*.json`.
//! Scale parameters are chosen for a single-core reproduction machine (see
//! DESIGN.md §4.2); the paper-vs-measured comparison lives in
//! EXPERIMENTS.md.

pub mod harness;
pub mod registry;
pub mod report;
pub mod tables;

pub use registry::{system_by_name, SystemKind};
pub use report::TableResult;
pub use tables::*;
