//! Registry of the dynamical systems used in the evaluation.

use m2td_sim::systems::{DoublePendulum, Lorenz, Rossler, Sir, TriplePendulum};
use m2td_sim::EnsembleSystem;

/// The systems of Section VII-A (plus the SIR example model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Double equal-length pendulum.
    DoublePendulum,
    /// Triple pendulum with variable friction.
    TriplePendulum,
    /// Lorenz-63.
    Lorenz,
    /// SIR epidemic model.
    Sir,
    /// Rössler attractor (extension beyond the paper's systems).
    Rossler,
}

impl SystemKind {
    /// Every evaluation system, in the paper's order.
    pub fn paper_systems() -> [SystemKind; 3] {
        [
            SystemKind::DoublePendulum,
            SystemKind::TriplePendulum,
            SystemKind::Lorenz,
        ]
    }

    /// An owning boxed instance of this system.
    pub fn instantiate(&self) -> Box<dyn EnsembleSystem> {
        match self {
            SystemKind::DoublePendulum => Box::new(DoublePendulum::default()),
            SystemKind::TriplePendulum => Box::new(TriplePendulum::default()),
            SystemKind::Lorenz => Box::new(Lorenz::default()),
            SystemKind::Sir => Box::new(Sir),
            SystemKind::Rossler => Box::new(Rossler::default()),
        }
    }

    /// A recommended total simulated time per system (chaotic systems need
    /// short horizons to keep cell values informative).
    pub fn t_end(&self) -> f64 {
        match self {
            SystemKind::DoublePendulum => 2.0,
            SystemKind::TriplePendulum => 2.0,
            SystemKind::Lorenz => 1.0,
            SystemKind::Sir => 60.0,
            SystemKind::Rossler => 6.0,
        }
    }
}

/// Thread counts the kernel benches sweep when comparing serial vs
/// parallel, resolved from `M2TD_BENCH_THREADS` (comma-separated list,
/// e.g. `1,2,4`). Defaults to `[1, 4]` — the serial baseline plus the
/// 4-thread configuration the perf trajectory tracks.
pub fn bench_thread_counts() -> Vec<usize> {
    if let Ok(raw) = std::env::var("M2TD_BENCH_THREADS") {
        let parsed: Vec<usize> = raw
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    vec![1, 4]
}

/// Looks a system up by its `EnsembleSystem::name` string.
pub fn system_by_name(name: &str) -> Option<SystemKind> {
    match name {
        "double_pendulum" => Some(SystemKind::DoublePendulum),
        "triple_pendulum" => Some(SystemKind::TriplePendulum),
        "lorenz" => Some(SystemKind::Lorenz),
        "sir" => Some(SystemKind::Sir),
        "rossler" => Some(SystemKind::Rossler),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        for kind in [
            SystemKind::DoublePendulum,
            SystemKind::TriplePendulum,
            SystemKind::Lorenz,
            SystemKind::Sir,
            SystemKind::Rossler,
        ] {
            let sys = kind.instantiate();
            assert_eq!(system_by_name(sys.name()), Some(kind));
            assert!(kind.t_end() > 0.0);
        }
        assert!(system_by_name("nope").is_none());
    }

    #[test]
    fn paper_systems_are_three() {
        assert_eq!(SystemKind::paper_systems().len(), 3);
    }

    #[test]
    fn default_bench_thread_counts_include_serial_baseline() {
        let counts = bench_thread_counts();
        assert!(counts.contains(&1));
        assert!(counts.iter().all(|&n| n >= 1));
    }
}
