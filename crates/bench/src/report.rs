//! Result records and text-table rendering.

use m2td_json::{FromJson, Json, JsonError, ToJson};
use std::io::Write;
use std::path::Path;

/// One row of a reproduced table: a set of labeled configuration values
/// plus a set of labeled measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration values, e.g. `("resolution", "12")`.
    pub config: Vec<(String, String)>,
    /// Measurements, e.g. `("M2TD-SELECT acc", 0.52)`.
    pub values: Vec<(String, f64)>,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".to_string(), self.config.to_json()),
            ("values".to_string(), self.values.to_json()),
        ])
    }
}

impl FromJson for Row {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Row {
            config: FromJson::from_json(json.require("config")?)?,
            values: FromJson::from_json(json.require("values")?)?,
        })
    }
}

/// A reproduced table: id (e.g. `"table2"`), caption and rows.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Table identifier matching the paper (`table2` … `table8`) or an
    /// ablation name.
    pub id: String,
    /// Human-readable caption.
    pub caption: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl TableResult {
    /// Creates an empty table.
    pub fn new(id: &str, caption: &str) -> Self {
        Self {
            id: id.to_string(),
            caption: caption.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, config: Vec<(&str, String)>, values: Vec<(&str, f64)>) {
        self.rows.push(Row {
            config: config
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            values: values
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    /// Renders the table as aligned text (accuracy-style small values in
    /// scientific notation).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.caption));
        if self.rows.is_empty() {
            out.push_str("(no rows)\n");
            return out;
        }
        // Header from the first row.
        let mut header: Vec<String> = self.rows[0].config.iter().map(|(k, _)| k.clone()).collect();
        header.extend(self.rows[0].values.iter().map(|(k, _)| k.clone()));
        let mut cells: Vec<Vec<String>> = vec![header];
        for row in &self.rows {
            let mut line: Vec<String> = row.config.iter().map(|(_, v)| v.clone()).collect();
            line.extend(row.values.iter().map(|(_, v)| format_value(*v)));
            cells.push(line);
        }
        let cols = cells.iter().map(|r| r.len()).max().unwrap_or(0);
        let widths: Vec<usize> = (0..cols)
            .map(|c| {
                cells
                    .iter()
                    .filter_map(|r| r.get(c))
                    .map(|s| s.len())
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        for row in &cells {
            for (c, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", cell, width = widths[c]));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().to_pretty().as_bytes())
    }
}

impl ToJson for TableResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_string(), self.id.to_json()),
            ("caption".to_string(), self.caption.to_json()),
            ("rows".to_string(), self.rows.to_json()),
        ])
    }
}

impl FromJson for TableResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TableResult {
            id: FromJson::from_json(json.require("id")?)?,
            caption: FromJson::from_json(json.require("caption")?)?,
            rows: FromJson::from_json(json.require("rows")?)?,
        })
    }
}

/// One timed kernel benchmark sample set, tagged with the thread count it
/// ran under so serial-vs-parallel trajectories can be tracked over PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Benchmark group (e.g. `"parallel_speedup"`).
    pub group: String,
    /// Benchmark name within the group (e.g. `"gram_rows_512"`).
    pub name: String,
    /// `m2td_par::max_threads()` in effect while the samples ran.
    pub threads: usize,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples behind the mean.
    pub samples: usize,
    /// Measured relative error of the benched route against ground truth
    /// (randomized-kernel benches only; exact kernels leave it `None`).
    /// Computed outside the timed region and serialized only when present.
    pub rel_err: Option<f64>,
}

impl ToJson for KernelRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("group".to_string(), self.group.to_json()),
            ("name".to_string(), self.name.to_json()),
            ("threads".to_string(), self.threads.to_json()),
            ("mean_ns".to_string(), self.mean_ns.to_json()),
            ("samples".to_string(), self.samples.to_json()),
        ];
        if let Some(e) = self.rel_err {
            fields.push(("rel_err".to_string(), e.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for KernelRecord {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(KernelRecord {
            group: FromJson::from_json(json.require("group")?)?,
            name: FromJson::from_json(json.require("name")?)?,
            threads: FromJson::from_json(json.require("threads")?)?,
            mean_ns: FromJson::from_json(json.require("mean_ns")?)?,
            samples: FromJson::from_json(json.require("samples")?)?,
            rel_err: match json.get("rel_err") {
                None => None,
                Some(v) => Some(v.as_f64()?),
            },
        })
    }
}

/// Writes kernel benchmark records as a pretty JSON array at `path`.
pub fn write_kernel_records(records: &[KernelRecord], path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = Json::Arr(records.iter().map(ToJson::to_json).collect());
    std::fs::write(path, json.to_pretty())
}

/// Formats measurements: small magnitudes in scientific notation (like the
/// paper's accuracy columns), larger ones with four decimals.
pub fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 1e-2 {
        format!("{v:.1e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableResult::new("table0", "demo");
        t.push_row(
            vec![("res", "60".into())],
            vec![("acc", 0.5432), ("rand", 1.2e-8)],
        );
        t.push_row(
            vec![("res", "70".into())],
            vec![("acc", 0.1), ("rand", 0.0)],
        );
        let s = t.render();
        assert!(s.contains("table0"));
        assert!(s.contains("0.5432"));
        assert!(s.contains("1.2e-8"));
        assert!(s.contains('0'));
    }

    #[test]
    fn json_round_trip() {
        let mut t = TableResult::new("tableX", "round trip");
        t.push_row(vec![("a", "1".into())], vec![("v", 2.0)]);
        let json = t.to_json().to_compact();
        let back = TableResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.id, "tableX");
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].values[0].1, 2.0);
    }

    #[test]
    fn kernel_records_round_trip_with_threads() {
        let records = vec![
            KernelRecord {
                group: "parallel_speedup".into(),
                name: "gram_rows_512".into(),
                threads: 1,
                mean_ns: 1.5e7,
                samples: 10,
                rel_err: None,
            },
            KernelRecord {
                group: "parallel_speedup".into(),
                name: "gram_rows_512".into(),
                threads: 4,
                mean_ns: 4.2e6,
                samples: 10,
                rel_err: Some(3.5e-3),
            },
        ];
        let path = std::env::temp_dir().join("m2td_kernel_records_test.json");
        write_kernel_records(&records, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<KernelRecord> = FromJson::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, records);
        assert_eq!(back[1].threads, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_value_ranges() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(0.5), "0.5000");
        assert!(format_value(3.2e-5).contains('e'));
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("m2td_report_test");
        let t = TableResult::new("table_test", "file test");
        t.write_json(&dir).unwrap();
        assert!(dir.join("table_test.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
