//! One `run_*` function per table of the paper's evaluation section, plus
//! the ablation studies DESIGN.md calls out.

use crate::registry::SystemKind;
use crate::report::TableResult;
use m2td_core::{CoreProjection, M2tdOptions, PivotCombine, RunReport, Workbench, WorkbenchConfig};
use m2td_dist::{d_m2td, ClusterModel, MapReduce};
use m2td_sampling::{
    GridSampling, LatinHypercubeSampling, RandomSampling, SamplingScheme, SliceSampling,
    StratifiedSampling,
};
use m2td_stitch::StitchKind;
use m2td_tensor::{hooi_sparse, hosvd_sparse, sparse_core, CoreOrdering, HooiOptions};
use std::error::Error;
use std::time::Instant;

/// Result alias for harness code.
pub type BenchResult<T> = Result<T, Box<dyn Error>>;

/// The time mode is always the last of the five tensor modes.
pub const TIME_MODE: usize = 4;

/// Standard workbench configuration for a system at a given resolution and
/// rank. `time_steps == resolution` mirrors the paper's cubic spaces.
pub fn workbench_config(kind: SystemKind, resolution: usize, rank: usize) -> WorkbenchConfig {
    WorkbenchConfig {
        resolution,
        time_steps: resolution,
        t_end: kind.t_end(),
        substeps: 16,
        rank,
        seed: 42,
        noise_sigma: 0.0,
    }
}

fn m2td_opts(combine: PivotCombine) -> M2tdOptions {
    M2tdOptions {
        combine,
        ..M2tdOptions::default()
    }
}

/// Runs all six strategies (3 M2TD variants + 3 conventional schemes) at
/// budget parity and returns their reports in table order.
fn run_all_strategies(w: &Workbench<'_>) -> BenchResult<Vec<RunReport>> {
    let mut out = Vec::with_capacity(6);
    for combine in PivotCombine::all() {
        out.push(w.run_m2td(TIME_MODE, m2td_opts(combine), 1.0, 1.0)?);
    }
    let budget = w.m2td_budget(TIME_MODE, 1.0, 1.0)?;
    for scheme in [
        &RandomSampling as &dyn SamplingScheme,
        &GridSampling,
        &SliceSampling,
    ] {
        out.push(w.run_conventional(scheme, budget)?);
    }
    Ok(out)
}

/// **Table II** — accuracy and decomposition time for the double pendulum
/// across resolutions and ranks, all six strategies.
pub fn run_table2(
    resolutions: &[usize],
    ranks: &[usize],
) -> BenchResult<(TableResult, TableResult)> {
    let mut acc = TableResult::new("table2a", "Accuracy for double pendulum (paper Table II-a)");
    let mut time = TableResult::new(
        "table2b",
        "Decomposition time (s) for double pendulum (paper Table II-b)",
    );
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    for &res in resolutions {
        let mut w = Workbench::new(system.as_ref(), workbench_config(kind, res, ranks[0]))?;
        for &rank in ranks {
            w = w.with_rank(rank);
            let reports = run_all_strategies(&w)?;
            let cfg = [("res", res.to_string()), ("rank", rank.to_string())];
            acc.push_row(
                cfg.iter().map(|(k, v)| (*k, v.clone())).collect(),
                reports
                    .iter()
                    .map(|r| (r.method.as_str(), r.accuracy))
                    .collect(),
            );
            time.push_row(
                cfg.iter().map(|(k, v)| (*k, v.clone())).collect(),
                reports
                    .iter()
                    .map(|r| (r.method.as_str(), r.decompose_secs))
                    .collect(),
            );
        }
    }
    Ok((acc, time))
}

/// **Table III** — D-M2TD phase time distribution for varying server
/// counts (double pendulum). Serial phase work is measured in-process and
/// projected onto the modeled cluster (DESIGN.md §4.1).
pub fn run_table3(resolution: usize, rank: usize, servers: &[usize]) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let (x1, x2, partition) = w.subsystems(TIME_MODE, 1.0, 1.0, 1.0)?;
    let join_ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| rank.min(w.full_dims()[m]))
        .collect();

    let engine = MapReduce::new(2);
    let dist = d_m2td(
        &x1,
        &x2,
        partition.k(),
        &join_ranks,
        M2tdOptions::default(),
        &engine,
    )?;

    let mut t = TableResult::new(
        "table3",
        "D-M2TD phase time split vs. number of servers (paper Table III)",
    );
    for &srv in servers {
        let model = ClusterModel::new(srv);
        let c1 = dist.phase1.on_cluster(&model);
        let c2 = dist.phase2.on_cluster(&model);
        let c3 = dist.phase3.on_cluster(&model);
        t.push_row(
            vec![("servers", srv.to_string())],
            vec![
                ("phase1 (s)", c1.total()),
                ("phase2 (s)", c2.total()),
                ("phase3 (s)", c3.total()),
                ("total (s)", c1.total() + c2.total() + c3.total()),
            ],
        );
    }
    Ok(t)
}

/// **Table IV** — accuracy and time across the three paper systems.
pub fn run_table4(resolution: usize, rank: usize) -> BenchResult<(TableResult, TableResult)> {
    let mut acc = TableResult::new(
        "table4a",
        "Accuracy across dynamic systems (paper Table IV)",
    );
    let mut time = TableResult::new(
        "table4b",
        "Decomposition time (s) across dynamic systems (paper Table IV)",
    );
    for kind in SystemKind::paper_systems() {
        let system = kind.instantiate();
        let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
        let reports = run_all_strategies(&w)?;
        acc.push_row(
            vec![("system", system.name().to_string())],
            reports
                .iter()
                .map(|r| (r.method.as_str(), r.accuracy))
                .collect(),
        );
        time.push_row(
            vec![("system", system.name().to_string())],
            reports
                .iter()
                .map(|r| (r.method.as_str(), r.decompose_secs))
                .collect(),
        );
    }
    Ok((acc, time))
}

/// **Table V** — reduced simulation budgets; join vs. zero-join.
pub fn run_table5(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let mut t = TableResult::new(
        "table5",
        "Reduced budgets: zero-join vs join accuracy (paper Table V)",
    );
    for &cell_frac in &[1.0, 0.5, 0.1] {
        let join = w.run_m2td_cells(TIME_MODE, M2tdOptions::default(), 1.0, 1.0, cell_frac)?;
        let zero = w.run_m2td_cells(
            TIME_MODE,
            M2tdOptions {
                stitch: StitchKind::ZeroJoin,
                ..M2tdOptions::default()
            },
            1.0,
            1.0,
            cell_frac,
        )?;
        let budget = join.cells.max(1);
        let random = w.run_conventional(&RandomSampling, budget)?;
        let grid = w.run_conventional(&GridSampling, budget)?;
        t.push_row(
            vec![("budget frac", format!("{cell_frac}"))],
            vec![
                ("SELECT join", join.accuracy),
                ("SELECT zero-join", zero.accuracy),
                ("Random", random.accuracy),
                ("Grid", grid.accuracy),
            ],
        );
    }
    Ok(t)
}

/// **Table VI** — varying pivot density `P`.
pub fn run_table6(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    run_density_sweep(
        "table6",
        "Varying pivot density P (paper Table VI)",
        resolution,
        rank,
        true,
    )
}

/// **Table VII** — varying sub-ensemble density `E`.
pub fn run_table7(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    run_density_sweep(
        "table7",
        "Varying sub-ensemble density E (paper Table VII)",
        resolution,
        rank,
        false,
    )
}

fn run_density_sweep(
    id: &str,
    caption: &str,
    resolution: usize,
    rank: usize,
    vary_p: bool,
) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let mut t = TableResult::new(id, caption);
    for &frac in &[1.0, 0.5, 0.25] {
        let (p, e) = if vary_p { (frac, 1.0) } else { (1.0, frac) };
        let mut values = Vec::new();
        let mut cells = 0usize;
        for combine in PivotCombine::all() {
            let r = w.run_m2td(TIME_MODE, m2td_opts(combine), p, e)?;
            cells = r.cells;
            values.push((r.method.clone(), r.accuracy));
        }
        let random = w.run_conventional(&RandomSampling, cells)?;
        values.push(("Random".to_string(), random.accuracy));
        t.push_row(
            vec![
                (
                    if vary_p { "P" } else { "E" },
                    format!("{:.0}%", frac * 100.0),
                ),
                ("cells", cells.to_string()),
            ],
            values.iter().map(|(k, v)| (k.as_str(), *v)).collect(),
        );
    }
    Ok(t)
}

/// **Table VIII** — varying the pivot parameter.
pub fn run_table8(resolution: usize, rank: usize) -> BenchResult<(TableResult, TableResult)> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let mode_names = w.mode_names();
    let mut acc = TableResult::new("table8a", "Accuracy per pivot parameter (paper Table VIII)");
    let mut time = TableResult::new(
        "table8b",
        "Decomposition time (s) per pivot parameter (paper Table VIII)",
    );
    // Paper order: t first, then the physical parameters.
    let pivots = [TIME_MODE, 0, 1, 2, 3];
    for &pivot in &pivots {
        let mut a_vals = Vec::new();
        let mut t_vals = Vec::new();
        for combine in PivotCombine::all() {
            let r = w.run_m2td(pivot, m2td_opts(combine), 1.0, 1.0)?;
            a_vals.push((r.method.clone(), r.accuracy));
            t_vals.push((r.method.clone(), r.decompose_secs));
        }
        let cfg = vec![("pivot", mode_names[pivot].clone())];
        acc.push_row(
            cfg.clone(),
            a_vals.iter().map(|(k, v)| (k.as_str(), *v)).collect(),
        );
        time.push_row(cfg, t_vals.iter().map(|(k, v)| (k.as_str(), *v)).collect());
    }
    Ok((acc, time))
}

/// **Ablation** — HOSVD vs HOOI on the stitched join tensor.
pub fn run_ablation_hooi(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let (x1, x2, partition) = w.subsystems(TIME_MODE, 1.0, 1.0, 1.0)?;
    let (join, _) = m2td_stitch::stitch(&x1, &x2, partition.k(), StitchKind::Join)?;
    let ranks: Vec<usize> = join.dims().iter().map(|&d| rank.min(d)).collect();

    let t0 = Instant::now();
    let hosvd = hosvd_sparse(&join, &ranks)?;
    let hosvd_secs = t0.elapsed().as_secs_f64();
    let hosvd_acc = w.accuracy_join_order(&hosvd, &partition)?;

    let t1 = Instant::now();
    let (hooi, sweeps) = hooi_sparse(&join, &ranks, HooiOptions::default())?;
    let hooi_secs = t1.elapsed().as_secs_f64();
    let hooi_acc = w.accuracy_join_order(&hooi, &partition)?;

    let mut t = TableResult::new(
        "ablation_hooi",
        "HOSVD vs HOOI on the join tensor (design-choice ablation)",
    );
    t.push_row(
        vec![("method", "HOSVD".into())],
        vec![
            ("accuracy", hosvd_acc),
            ("time (s)", hosvd_secs),
            ("sweeps", 1.0),
        ],
    );
    t.push_row(
        vec![("method", "HOOI".into())],
        vec![
            ("accuracy", hooi_acc),
            ("time (s)", hooi_secs),
            ("sweeps", sweeps as f64),
        ],
    );
    Ok(t)
}

/// **Ablation** — transpose vs least-squares core projection for each
/// pivot-combination strategy.
pub fn run_ablation_projection(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let mut t = TableResult::new(
        "ablation_projection",
        "Core recovery: paper's transpose vs least-squares projection",
    );
    for combine in PivotCombine::all() {
        let mut vals = Vec::new();
        for (label, projection) in [
            ("transpose", CoreProjection::Transpose),
            ("least-squares", CoreProjection::LeastSquares),
        ] {
            let opts = M2tdOptions {
                combine,
                projection,
                ..M2tdOptions::default()
            };
            let r = w.run_m2td(TIME_MODE, opts, 1.0, 1.0)?;
            vals.push((label, r.accuracy));
        }
        t.push_row(vec![("combine", combine.name().into())], vals);
    }
    Ok(t)
}

/// **Ablation** — TTM chain ordering in core recovery.
pub fn run_ablation_ttm_order(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let (x1, x2, partition) = w.subsystems(TIME_MODE, 1.0, 1.0, 1.0)?;
    let (join, _) = m2td_stitch::stitch(&x1, &x2, partition.k(), StitchKind::Join)?;
    let ranks: Vec<usize> = join.dims().iter().map(|&d| rank.min(d)).collect();
    let tucker = hosvd_sparse(&join, &ranks)?;

    let mut t = TableResult::new(
        "ablation_ttm_order",
        "Core-recovery TTM mode ordering (natural vs best-shrink-first)",
    );
    for (label, ordering) in [
        ("natural", CoreOrdering::Natural),
        ("best-shrink-first", CoreOrdering::BestShrinkFirst),
    ] {
        let t0 = Instant::now();
        let core = sparse_core(&join, &tucker.factors, ordering)?;
        let secs = t0.elapsed().as_secs_f64();
        t.push_row(
            vec![("ordering", label.into())],
            vec![("time (s)", secs), ("core norm", core.frobenius_norm())],
        );
    }
    Ok(t)
}

/// **Ablation** — number of pivot modes `k` (k = 1 vs k = 3; with five
/// tensor modes `N − k` must be even, so k = 2 is structurally impossible).
pub fn run_ablation_pivot_k(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    use m2td_core::m2td_decompose;
    use m2td_sampling::{PfPartition, SubSystem};
    use m2td_sim::EnsembleBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let cfg = workbench_config(kind, resolution, rank);
    let w = Workbench::new(system.as_ref(), cfg)?;
    let mut t = TableResult::new(
        "ablation_pivot_k",
        "Multi-pivot partitions: k = 1 vs k = 3 (extension beyond the paper)",
    );

    // k = 1 via the standard pipeline.
    let r1 = w.run_m2td(TIME_MODE, M2tdOptions::default(), 1.0, 1.0)?;
    t.push_row(
        vec![("k", "1".into())],
        vec![("accuracy", r1.accuracy), ("cells", r1.cells as f64)],
    );

    // k = 3: pivots {t, phi1, m1}, free1 {phi2}, free2 {m2}.
    let partition = PfPartition::new(vec![4, 0, 1], vec![2], vec![3], 5)?;
    let space = system.default_space(cfg.resolution);
    let grid = m2td_sim::TimeGrid::new(cfg.t_end, cfg.time_steps, cfg.substeps);
    let builder = EnsembleBuilder::new(system.as_ref(), &space, &grid);
    let full_dims = builder.tensor_dims();
    let mut defaults = space.default_indices();
    defaults.push(cfg.time_steps / 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plan1 =
        partition.plan_subsystem(&full_dims, &defaults, SubSystem::First, 1.0, 1.0, &mut rng)?;
    let plan2 =
        partition.plan_subsystem(&full_dims, &defaults, SubSystem::Second, 1.0, 1.0, &mut rng)?;
    let cells = plan1.len() + plan2.len();
    let (f1, _) = builder.build_sparse(&plan1)?;
    let (f2, _) = builder.build_sparse(&plan2)?;
    let x1 = partition.extract_sub_tensor(&f1, &defaults, SubSystem::First)?;
    let x2 = partition.extract_sub_tensor(&f2, &defaults, SubSystem::Second)?;
    let join_ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| rank.min(full_dims[m]))
        .collect();
    let d = m2td_decompose(&x1, &x2, partition.k(), &join_ranks, M2tdOptions::default())?;
    let acc = w.accuracy_join_order(&d.tucker, &partition)?;
    t.push_row(
        vec![("k", "3".into())],
        vec![("accuracy", acc), ("cells", cells as f64)],
    );
    Ok(t)
}

/// **Ablation** — two-way vs finest multi-way partitioning (extension:
/// the paper only evaluates two sub-systems).
pub fn run_ablation_partitions(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let mut t = TableResult::new(
        "ablation_partitions",
        "Partition granularity: 2 groups of 2 modes vs 4 groups of 1 (pivot = t)",
    );
    for groups in [2usize, 4] {
        let r = w.run_m2td_multi(TIME_MODE, groups, M2tdOptions::default(), 1.0, 1.0)?;
        t.push_row(
            vec![("groups", groups.to_string())],
            vec![
                ("accuracy", r.accuracy),
                ("cells", r.cells as f64),
                ("join density", r.density),
                ("time (s)", r.decompose_secs),
            ],
        );
    }
    Ok(t)
}

/// **Ablation** — extra space-filling baselines (Latin hypercube,
/// stratified) vs the paper's schemes and M2TD, at budget parity.
pub fn run_extra_baselines(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let system = kind.instantiate();
    let w = Workbench::new(system.as_ref(), workbench_config(kind, resolution, rank))?;
    let budget = w.m2td_budget(TIME_MODE, 1.0, 1.0)?;
    let mut t = TableResult::new(
        "extra_baselines",
        "Space-filling designs do not close the gap to partition-stitch sampling",
    );
    let m2td = w.run_m2td(TIME_MODE, M2tdOptions::default(), 1.0, 1.0)?;
    let mut values = vec![("M2TD-SELECT".to_string(), m2td.accuracy)];
    for scheme in [
        &RandomSampling as &dyn SamplingScheme,
        &GridSampling,
        &SliceSampling,
        &LatinHypercubeSampling,
        &StratifiedSampling,
    ] {
        let r = w.run_conventional(scheme, budget)?;
        values.push((r.method.clone(), r.accuracy));
    }
    t.push_row(
        vec![("budget", budget.to_string())],
        values.iter().map(|(k, v)| (k.as_str(), *v)).collect(),
    );
    Ok(t)
}

/// **Ablation** — measurement-noise robustness: accuracy of M2TD-SELECT
/// and the random baseline under increasing observation noise.
pub fn run_ablation_noise(resolution: usize, rank: usize) -> BenchResult<TableResult> {
    let kind = SystemKind::DoublePendulum;
    let mut t = TableResult::new(
        "ablation_noise",
        "Accuracy under additive Gaussian measurement noise on sampled cells",
    );
    for &sigma in &[0.0, 0.05, 0.2, 0.5] {
        let system = kind.instantiate();
        let mut cfg = workbench_config(kind, resolution, rank);
        cfg.noise_sigma = sigma;
        let w = Workbench::new(system.as_ref(), cfg)?;
        let m2td = w.run_m2td(TIME_MODE, M2tdOptions::default(), 1.0, 1.0)?;
        let budget = w.m2td_budget(TIME_MODE, 1.0, 1.0)?;
        let random = w.run_conventional(&RandomSampling, budget)?;
        t.push_row(
            vec![("sigma", format!("{sigma}"))],
            vec![("M2TD-SELECT", m2td.accuracy), ("Random", random.accuracy)],
        );
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tiny-scale smoke tests: every table runner completes and produces
    // rows with the expected structure. The full-scale runs live in the
    // `tables` binary.

    #[test]
    fn table2_smoke() {
        let (acc, time) = run_table2(&[5], &[2]).unwrap();
        assert_eq!(acc.rows.len(), 1);
        assert_eq!(time.rows.len(), 1);
        assert_eq!(acc.rows[0].values.len(), 6);
        // M2TD columns must beat the conventional ones.
        let m2td_min = acc.rows[0].values[..3]
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        let conv_max = acc.rows[0].values[3..]
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            m2td_min > conv_max,
            "M2TD ({m2td_min}) must beat conventional ({conv_max})"
        );
    }

    #[test]
    fn table3_smoke() {
        let t = run_table3(5, 2, &[1, 4, 18]).unwrap();
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row.values.len(), 4);
            for (_, v) in &row.values {
                assert!(*v > 0.0);
            }
        }
        // The parallelizable share must not grow with servers (the strict
        // shape assertions run at full scale in the `tables` binary, where
        // compute dominates the fixed overheads).
        let total = |i: usize| t.rows[i].values.last().unwrap().1;
        assert!(total(0) >= total(2) - 1e-9);
    }

    #[test]
    fn table5_smoke() {
        let t = run_table5(5, 2).unwrap();
        assert_eq!(t.rows.len(), 3);
        // At reduced budget, zero-join >= join.
        let last = &t.rows[2].values;
        let join = last[0].1;
        let zero = last[1].1;
        assert!(zero >= join - 1e-9, "zero-join {zero} vs join {join}");
    }

    #[test]
    fn table6_7_smoke() {
        let t6 = run_table6(5, 2).unwrap();
        let t7 = run_table7(5, 2).unwrap();
        assert_eq!(t6.rows.len(), 3);
        assert_eq!(t7.rows.len(), 3);
        // Full density is the best row in both sweeps.
        for t in [&t6, &t7] {
            let select = |i: usize| t.rows[i].values[2].1;
            assert!(select(0) >= select(2) - 1e-9);
        }
    }

    #[test]
    fn table8_smoke() {
        let (acc, _) = run_table8(5, 2).unwrap();
        assert_eq!(acc.rows.len(), 5);
    }

    #[test]
    fn new_ablations_smoke() {
        let p = run_ablation_partitions(5, 2).unwrap();
        assert_eq!(p.rows.len(), 2);
        // Finer partition uses fewer cells.
        assert!(p.rows[1].values[1].1 < p.rows[0].values[1].1);
        let b = run_extra_baselines(5, 2).unwrap();
        assert_eq!(b.rows[0].values.len(), 6);
        // M2TD still first by a wide margin.
        let m2td = b.rows[0].values[0].1;
        for (name, v) in &b.rows[0].values[1..] {
            assert!(m2td > *v, "{name} ({v}) should lose to M2TD ({m2td})");
        }
        let n = run_ablation_noise(5, 2).unwrap();
        assert_eq!(n.rows.len(), 4);
        // At smoke scale the noise effect can fluctuate; just require
        // finite accuracies in a sane band (the monotone degradation is
        // asserted at full scale in EXPERIMENTS.md).
        for row in &n.rows {
            for (_, v) in &row.values {
                assert!(v.is_finite() && *v < 1.0);
            }
        }
    }

    #[test]
    fn ablations_smoke() {
        let h = run_ablation_hooi(5, 2).unwrap();
        assert_eq!(h.rows.len(), 2);
        let p = run_ablation_projection(5, 2).unwrap();
        assert_eq!(p.rows.len(), 3);
        let o = run_ablation_ttm_order(5, 2).unwrap();
        assert_eq!(o.rows.len(), 2);
        // Orderings must agree on the core.
        assert!((o.rows[0].values[1].1 - o.rows[1].values[1].1).abs() < 1e-9);
        let k = run_ablation_pivot_k(5, 2).unwrap();
        assert_eq!(k.rows.len(), 2);
    }
}
