//! Integration coverage for the `m2td-cli bench-diff` perf-regression
//! gate: joins records per (group, name, threads), gates only the
//! configured families, and exits 3 on a regression beyond tolerance.

use std::path::PathBuf;
use std::process::Command;

fn record(group: &str, name: &str, threads: usize, mean_ns: f64) -> String {
    format!(
        "{{\"group\": \"{group}\", \"name\": \"{name}\", \"threads\": {threads}, \
         \"mean_ns\": {mean_ns}, \"samples\": 10}}"
    )
}

fn write_records(path: &PathBuf, records: &[String]) {
    std::fs::write(path, format!("[{}]", records.join(","))).unwrap();
}

fn bench_diff(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_m2td-cli"))
        .arg("bench-diff")
        .args(args)
        .output()
        .expect("m2td-cli runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn gate_passes_within_tolerance_and_fails_beyond_it() {
    let dir = std::env::temp_dir().join("m2td_bench_diff_gate");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    write_records(
        &base,
        &[
            record("gemm", "square256_blocked", 1, 1.0e6),
            record("ttm_chain", "chain3", 1, 2.0e6),
        ],
    );
    // +10% on a gated record: within the default 25% tolerance.
    write_records(
        &cur,
        &[
            record("gemm", "square256_blocked", 1, 1.1e6),
            record("ttm_chain", "chain3", 1, 2.0e6),
        ],
    );
    let (code, text) = bench_diff(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "within tolerance must pass:\n{text}");
    assert!(text.contains("ok"));

    // +60% on a gated record: beyond tolerance, exit 3.
    write_records(
        &cur,
        &[
            record("gemm", "square256_blocked", 1, 1.6e6),
            record("ttm_chain", "chain3", 1, 2.0e6),
        ],
    );
    let (code, text) = bench_diff(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, 3, "gated regression must fail:\n{text}");
    assert!(text.contains("REGRESSION"), "{text}");

    // The override knob widens the tolerance for intentional slowdowns.
    let (code, _) = bench_diff(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--max-regress",
        "0.75",
    ]);
    assert_eq!(code, 0, "--max-regress overrides the default gate");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ungated_families_and_unmatched_records_never_fail() {
    let dir = std::env::temp_dir().join("m2td_bench_diff_ungated");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    write_records(
        &base,
        &[
            record("eig", "eig64", 1, 1.0e6),
            record("eig", "retired", 1, 1.0e6),
        ],
    );
    // eig regresses 10x but is not a gated family; `fresh` has no
    // baseline; the ungated `retired` vanished from current. None of
    // these fail.
    write_records(
        &cur,
        &[
            record("eig", "eig64", 1, 1.0e7),
            record("gemm", "fresh", 2, 5.0e5),
        ],
    );
    let (code, text) = bench_diff(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("(ungated)"), "{text}");
    assert!(text.contains("new, no baseline"), "{text}");
    assert!(text.contains("missing from current (retired?)"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gated_baseline_record_missing_from_current_fails_the_gate() {
    let dir = std::env::temp_dir().join("m2td_bench_diff_missing_gated");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    write_records(
        &base,
        &[
            record("gemm", "square256_blocked", 1, 1.0e6),
            record("ttm_chain", "chain3", 1, 2.0e6),
        ],
    );
    // chain3 silently disappeared from the current run: the gate must
    // notice instead of letting a dropped benchmark retire itself.
    write_records(&cur, &[record("gemm", "square256_blocked", 1, 1.0e6)]);
    let (code, text) = bench_diff(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, 3, "gated missing record must fail:\n{text}");
    assert!(text.contains("MISSING from current (gated)"), "{text}");
    assert!(
        text.contains("1 gated baseline record(s) missing"),
        "{text}"
    );

    // Narrowing --families to exclude the family un-gates the absence.
    let (code, text) = bench_diff(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--families",
        "gemm",
    ]);
    assert_eq!(code, 0, "un-gated family may retire freely:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_or_malformed_inputs_are_usage_errors() {
    let dir = std::env::temp_dir().join("m2td_bench_diff_errors");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").unwrap();
    let good = dir.join("good.json");
    write_records(&good, &[record("gemm", "x", 1, 1.0)]);

    let (code, _) = bench_diff(&["--baseline", good.to_str().unwrap()]);
    assert_eq!(code, 2, "--current is required");
    let (code, _) = bench_diff(&[
        "--baseline",
        bad.to_str().unwrap(),
        "--current",
        good.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "malformed baseline is an error");
    let (code, _) = bench_diff(&[
        "--baseline",
        good.to_str().unwrap(),
        "--current",
        dir.join("absent.json").to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "missing current file is an error");
    let _ = std::fs::remove_dir_all(&dir);
}
