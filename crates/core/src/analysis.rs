//! Post-decomposition analytics — the "need for post-simulation data
//! processing" the paper's introduction motivates.
//!
//! A Tucker decomposition of an ensemble is only useful if an analyst can
//! read something out of it. This module provides the standard readings:
//! per-mode energy profiles (which parameter values behave most
//! distinctively), the core spectrum (how many latent patterns carry the
//! ensemble's energy), and the dominant factor interactions (which
//! combinations of per-mode patterns explain the data).

use crate::error::CoreError;
use crate::Result;
use m2td_tensor::{SparseTensor, TuckerDecomp};

/// One dominant entry of the core tensor: a latent-pattern combination and
/// its strength.
#[derive(Debug, Clone, PartialEq)]
pub struct Interaction {
    /// Per-mode latent-pattern indices (column of each factor).
    pub pattern: Vec<usize>,
    /// The core value (signed strength of the interaction).
    pub strength: f64,
}

/// Row energies of one mode's factor: `profile[i] = ‖U⁽ⁿ⁾[i, :]‖₂`.
///
/// High energy means parameter value `i` is strongly represented by the
/// retained patterns — its simulations behave distinctively; low energy
/// means the value's behaviour is mostly explained away by the truncation.
/// This is exactly the quantity M2TD-SELECT uses to arbitrate between
/// sub-systems, exposed here as an analyst-facing reading.
pub fn mode_energy_profile(tucker: &TuckerDecomp, mode: usize) -> Result<Vec<f64>> {
    let factor = tucker
        .factors
        .get(mode)
        .ok_or_else(|| CoreError::InvalidInput {
            reason: format!(
                "mode {mode} out of range for an order-{} decomposition",
                tucker.factors.len()
            ),
        })?;
    Ok((0..factor.rows()).map(|i| factor.row_norm(i)).collect())
}

/// The core spectrum: absolute core values, sorted decreasing. The decay
/// rate tells an analyst how many latent patterns the ensemble really has
/// (a fast drop means a lower target rank would have sufficed).
pub fn core_spectrum(tucker: &TuckerDecomp) -> Vec<f64> {
    let mut spectrum: Vec<f64> = tucker.core.as_slice().iter().map(|v| v.abs()).collect();
    spectrum.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    spectrum
}

/// Fraction of the core's energy captured by its `k` largest entries.
pub fn spectrum_energy_fraction(tucker: &TuckerDecomp, k: usize) -> f64 {
    let spectrum = core_spectrum(tucker);
    let total: f64 = spectrum.iter().map(|v| v * v).sum();
    if total == 0.0 {
        return 1.0;
    }
    let head: f64 = spectrum.iter().take(k).map(|v| v * v).sum();
    head / total
}

/// The `top_k` strongest interactions in the core: which combinations of
/// per-mode latent patterns dominate the ensemble (the paper's "broad,
/// actionable patterns").
pub fn dominant_interactions(tucker: &TuckerDecomp, top_k: usize) -> Vec<Interaction> {
    let shape = tucker.core.shape().clone();
    let mut all: Vec<Interaction> = tucker
        .core
        .as_slice()
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(lin, &v)| Interaction {
            pattern: shape.multi_index(lin),
            strength: v,
        })
        .collect();
    all.sort_by(|a, b| {
        b.strength
            .abs()
            .partial_cmp(&a.strength.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    all.truncate(top_k);
    all
}

/// For one mode, the parameter value (row index) most aligned with each
/// latent pattern (the per-column argmax of `|U⁽ⁿ⁾|`). Lets an analyst
/// label a pattern with a concrete parameter setting.
pub fn pattern_representatives(tucker: &TuckerDecomp, mode: usize) -> Result<Vec<usize>> {
    let factor = tucker
        .factors
        .get(mode)
        .ok_or_else(|| CoreError::InvalidInput {
            reason: format!("mode {mode} out of range"),
        })?;
    let mut reps = Vec::with_capacity(factor.cols());
    for j in 0..factor.cols() {
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for i in 0..factor.rows() {
            let v = factor.get(i, j).abs();
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        reps.push(best);
    }
    Ok(reps)
}

/// A simulation cell with its reconstruction residual.
#[derive(Debug, Clone, PartialEq)]
pub struct Residual {
    /// The cell's multi-index (in the decomposition's mode order).
    pub index: Vec<usize>,
    /// Observed (simulated) value.
    pub observed: f64,
    /// Value predicted by the decomposition.
    pub predicted: f64,
}

impl Residual {
    /// Absolute residual `|observed − predicted|`.
    pub fn magnitude(&self) -> f64 {
        (self.observed - self.predicted).abs()
    }
}

/// The `top_k` sampled cells the decomposition explains **worst** —
/// candidate outlier simulations. A simulation whose result the global
/// low-rank pattern cannot reproduce is either anomalous dynamics (worth
/// an analyst's attention) or a region the ensemble under-samples (worth
/// more budget).
///
/// `sampled` must share the decomposition's mode order (for M2TD results,
/// the join order).
///
/// # Errors
///
/// [`CoreError::InvalidInput`] when the tensor and decomposition orders
/// disagree.
pub fn worst_explained_cells(
    tucker: &TuckerDecomp,
    sampled: &SparseTensor,
    top_k: usize,
) -> Result<Vec<Residual>> {
    if sampled.order() != tucker.factors.len() {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "tensor order {} does not match decomposition order {}",
                sampled.order(),
                tucker.factors.len()
            ),
        });
    }
    let mut residuals: Vec<Residual> = Vec::with_capacity(sampled.nnz());
    for (index, observed) in sampled.iter() {
        let predicted = tucker.cell(&index)?;
        residuals.push(Residual {
            index,
            observed,
            predicted,
        });
    }
    residuals.sort_by(|a, b| {
        b.magnitude()
            .partial_cmp(&a.magnitude())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    residuals.truncate(top_k);
    Ok(residuals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_linalg::Matrix;
    use m2td_tensor::DenseTensor;

    fn tucker() -> TuckerDecomp {
        // Core 2x2 with one dominant entry; factors with obvious structure.
        let core = DenseTensor::from_vec(&[2, 2], vec![5.0, 0.5, -0.1, 2.0]).unwrap();
        let u0 = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.6, 0.8]]).unwrap();
        let u1 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        TuckerDecomp::new(core, vec![u0, u1]).unwrap()
    }

    #[test]
    fn energy_profile_matches_row_norms() {
        let t = tucker();
        let p = mode_energy_profile(&t, 0).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[2] - 1.0).abs() < 1e-12); // 0.6-0.8 row
        assert!(mode_energy_profile(&t, 5).is_err());
    }

    #[test]
    fn spectrum_is_sorted_and_complete() {
        let t = tucker();
        let s = core_spectrum(&t);
        assert_eq!(s, vec![5.0, 2.0, 0.5, 0.1]);
    }

    #[test]
    fn energy_fraction_monotone_in_k() {
        let t = tucker();
        let f1 = spectrum_energy_fraction(&t, 1);
        let f2 = spectrum_energy_fraction(&t, 2);
        let f_all = spectrum_energy_fraction(&t, 4);
        assert!(f1 < f2);
        assert!((f_all - 1.0).abs() < 1e-12);
        // 25 / (25 + 4 + 0.25 + 0.01)
        assert!((f1 - 25.0 / 29.26).abs() < 1e-10);
    }

    #[test]
    fn zero_core_energy_fraction_is_one() {
        let core = DenseTensor::zeros(&[2, 2]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)]).unwrap();
        assert_eq!(spectrum_energy_fraction(&t, 1), 1.0);
    }

    #[test]
    fn dominant_interactions_ranked() {
        let t = tucker();
        let top = dominant_interactions(&t, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].pattern, vec![0, 0]);
        assert_eq!(top[0].strength, 5.0);
        assert_eq!(top[1].pattern, vec![1, 1]);
        assert_eq!(top[1].strength, 2.0);
        // top_k larger than nnz just returns everything.
        assert_eq!(dominant_interactions(&t, 99).len(), 4);
    }

    #[test]
    fn worst_explained_cells_finds_a_planted_outlier() {
        use m2td_tensor::{hosvd_sparse, DenseTensor as DT, SparseTensor as ST};
        // A smooth rank-1 field with one corrupted cell.
        let mut dense = DT::from_fn(&[6, 6], |i| (i[0] + 1) as f64 * (i[1] + 1) as f64);
        // A moderate outlier: big enough to stick out, small enough that
        // the leading rank-1 component stays locked on the background
        // (the spike's energy is below the background's).
        dense.set(&[2, 3], 60.0);
        let sparse = ST::from_dense(&dense);
        // Rank 1: the smooth background is exactly rank 1, so the spike
        // (which would need a second component) must show as a residual.
        let tucker = hosvd_sparse(&sparse, &[1, 1]).unwrap();
        let worst = worst_explained_cells(&tucker, &sparse, 1).unwrap();
        assert_eq!(worst[0].index, vec![2, 3]);
        assert!(worst[0].magnitude() > 10.0);
        // And the full list is sorted decreasing.
        let all = worst_explained_cells(&tucker, &sparse, 36).unwrap();
        assert!(all.windows(2).all(|w| w[0].magnitude() >= w[1].magnitude()));
    }

    #[test]
    fn worst_explained_cells_validates_order() {
        use m2td_tensor::SparseTensor as ST;
        let t = tucker();
        let wrong = ST::from_entries(&[2, 2, 2], &[(vec![0, 0, 0], 1.0)]).unwrap();
        assert!(worst_explained_cells(&t, &wrong, 1).is_err());
    }

    #[test]
    fn representatives_are_column_argmaxes() {
        let t = tucker();
        // u1 columns: col0 peaks at row 1, col1 at row 0.
        assert_eq!(pattern_representatives(&t, 1).unwrap(), vec![1, 0]);
        assert!(pattern_representatives(&t, 9).is_err());
    }
}
