//! Pivot-mode factor combination strategies (the heart of M2TD).

use crate::error::CoreError;
use crate::Result;
use m2td_linalg::Matrix;

/// How the pivot-mode factor matrices of the two sub-tensor decompositions
/// are merged into one factor for the join tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotCombine {
    /// M2TD-AVG: entry-wise average of the two factor matrices
    /// (Algorithm 2, Figure 10(a)).
    Average,
    /// M2TD-CONCAT: left singular vectors of the column-concatenated
    /// matricization `[X₁₍ₙ₎ | X₂₍ₙ₎]` (Algorithm 3). Since the left
    /// singular vectors of a concatenation are the eigenvectors of the sum
    /// of the Gram matrices, this variant combines at the Gram level and
    /// its result *is* a genuine singular basis — fixing AVG's weakness
    /// that averages of singular vectors need not be singular vectors.
    Concat,
    /// M2TD-SELECT: per-row energy selection between the two factors
    /// (Algorithms 4–5, Figure 10(b)). The row with the larger 2-norm
    /// better represents the corresponding entity, and keeping it intact
    /// prevents the lower-energy row from acting as noise.
    Select,
}

impl PivotCombine {
    /// Name used in reports, matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            PivotCombine::Average => "M2TD-AVG",
            PivotCombine::Concat => "M2TD-CONCAT",
            PivotCombine::Select => "M2TD-SELECT",
        }
    }

    /// All three variants, in the paper's table order.
    pub fn all() -> [PivotCombine; 3] {
        [
            PivotCombine::Average,
            PivotCombine::Concat,
            PivotCombine::Select,
        ]
    }
}

/// Comparison key for row-energy selection: a NaN norm (a row poisoned by
/// degraded-mode missing cells) is treated as −∞, i.e. "no energy", so it
/// can never win the selection.
fn energy_key(norm: f64) -> f64 {
    if norm.is_nan() {
        f64::NEG_INFINITY
    } else {
        norm
    }
}

/// `ROW_SELECT` (Algorithm 5): builds the output factor row-by-row, taking
/// each row from whichever input matrix gives it more energy (2-norm).
///
/// Tie-breaking is explicit and deterministic: row norms are compared
/// with NaN mapped to −∞, and on exact ties (including both-NaN) the row
/// comes from `u1`. The former `>=` comparison silently picked `u2`
/// whenever `u1`'s norm was NaN — a poisoned row displacing a finite one.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] if the matrices' shapes differ.
pub fn row_select(u1: &Matrix, u2: &Matrix) -> Result<Matrix> {
    if u1.shape() != u2.shape() {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "row_select requires equal shapes, got {:?} and {:?}",
                u1.shape(),
                u2.shape()
            ),
        });
    }
    let mut out = Matrix::zeros(u1.rows(), u1.cols());
    for i in 0..u1.rows() {
        let n1 = energy_key(u1.row_norm(i));
        let n2 = energy_key(u2.row_norm(i));
        // `u1` wins ties: total_cmp makes every case (incl. ±∞) ordered.
        let src = if n1.total_cmp(&n2) != std::cmp::Ordering::Less {
            u1.row(i)
        } else {
            u2.row(i)
        };
        out.row_mut(i).copy_from_slice(src);
    }
    Ok(out)
}

/// Flips the sign of each column of `u2` whose inner product with the
/// corresponding column of `u1` is negative.
///
/// Eigenvectors are only defined up to sign, so the two sub-tensor factors
/// can disagree on orientation even when they describe the same pattern.
/// Row-wise combination (AVG's averaging, SELECT's row mixing) is only
/// meaningful after the bases are consistently oriented.
///
/// The sign convention is pinned for determinism: a column of `u2` is
/// flipped iff its inner product with the matching `u1` column is
/// *strictly negative*. A zero dot (orthogonal columns) and a NaN dot
/// carry no orientation evidence, so `u2`'s original orientation is kept
/// in both cases.
pub fn align_signs(u1: &Matrix, u2: &Matrix) -> Result<Matrix> {
    if u1.shape() != u2.shape() {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "align_signs requires equal shapes, got {:?} and {:?}",
                u1.shape(),
                u2.shape()
            ),
        });
    }
    let mut out = u2.clone();
    for j in 0..u1.cols() {
        let mut dot = 0.0;
        for i in 0..u1.rows() {
            dot += u1.get(i, j) * u2.get(i, j);
        }
        // Strictly-negative test: `Less` is false for dot == 0.0 and for
        // NaN, keeping the documented "no evidence → no flip" behavior.
        if dot.partial_cmp(&0.0) == Some(std::cmp::Ordering::Less) {
            for i in 0..u1.rows() {
                out.set(i, j, -out.get(i, j));
            }
        }
    }
    Ok(out)
}

/// Combines one pivot mode's information from the two sub-tensors into a
/// single `I_n × r` factor matrix.
///
/// `gram1`/`gram2` are the mode's Gram matrices `X₍ₙ₎X₍ₙ₎ᵀ` from the two
/// sub-tensors; `u1`/`u2` are the corresponding `r`-leading eigenvector
/// factors (already computed by the caller, who also needs them for the
/// free modes' bookkeeping).
pub fn combine_pivot_factor(
    kind: PivotCombine,
    gram1: &Matrix,
    gram2: &Matrix,
    u1: &Matrix,
    u2: &Matrix,
    r: usize,
) -> Result<Matrix> {
    match kind {
        PivotCombine::Average => {
            let u2_aligned = align_signs(u1, u2)?;
            Ok(u1.average(&u2_aligned)?)
        }
        PivotCombine::Concat => {
            let summed = gram1.add(gram2)?;
            Ok(m2td_guard::gram_factor("phase1.combine", None, &summed, r)?)
        }
        PivotCombine::Select => {
            let u2_aligned = align_signs(u1, u2)?;
            row_select(u1, &u2_aligned)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_select_picks_higher_energy_rows() {
        let u1 = Matrix::from_rows(&[&[3.0, 4.0], &[0.1, 0.0]]).unwrap(); // norms 5, 0.1
        let u2 = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap(); // norms 1, 2
        let u = row_select(&u1, &u2).unwrap();
        assert_eq!(u.row(0), &[3.0, 4.0]);
        assert_eq!(u.row(1), &[0.0, 2.0]);
    }

    #[test]
    fn row_select_tie_prefers_first() {
        let u1 = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let u = row_select(&u1, &u2).unwrap();
        assert_eq!(u.row(0), &[1.0, 0.0]);
    }

    #[test]
    fn row_select_nan_norm_loses_to_finite_row() {
        // Regression: `u1.row_norm >= u2.row_norm` is false when u1's norm
        // is NaN, which *kept* working here — but the symmetric case (NaN
        // in u2) also evaluated false, handing NaN rows of u1 a win only
        // by accident of operand order. Pin both directions: NaN = −∞.
        let u1 = Matrix::from_rows(&[&[f64::NAN, 1.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[0.5, 0.0]]).unwrap();
        let u = row_select(&u1, &u2).unwrap();
        assert_eq!(u.row(0), &[0.5, 0.0], "NaN row in u1 must lose");

        let u = row_select(&u2, &u1).unwrap();
        assert_eq!(u.row(0), &[0.5, 0.0], "NaN row in u2 must lose");
    }

    #[test]
    fn row_select_both_nan_prefers_first() {
        let u1 = Matrix::from_rows(&[&[f64::NAN, 2.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[3.0, f64::NAN]]).unwrap();
        let u = row_select(&u1, &u2).unwrap();
        // Both norms are NaN → both keys are −∞ → tie → u1 wins.
        assert!(u.get(0, 0).is_nan());
        assert_eq!(u.get(0, 1), 2.0);
    }

    #[test]
    fn align_signs_zero_dot_keeps_orientation() {
        // Orthogonal columns: dot == 0.0 carries no orientation evidence,
        // so u2 must come back unchanged (documented tie behavior).
        let u1 = Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[0.0], &[-2.0]]).unwrap();
        let out = align_signs(&u1, &u2).unwrap();
        assert_eq!(out.row(0), &[0.0]);
        assert_eq!(out.row(1), &[-2.0]);
    }

    #[test]
    fn align_signs_nan_dot_keeps_orientation() {
        let u1 = Matrix::from_rows(&[&[f64::NAN], &[1.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[1.0], &[-3.0]]).unwrap();
        let out = align_signs(&u1, &u2).unwrap();
        // dot = NaN → no flip; u2 returned with original signs.
        assert_eq!(out.row(0), &[1.0]);
        assert_eq!(out.row(1), &[-3.0]);
    }

    #[test]
    fn align_signs_negative_dot_still_flips() {
        let u1 = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[-1.0], &[-1.0]]).unwrap();
        let out = align_signs(&u1, &u2).unwrap();
        assert_eq!(out.row(0), &[1.0]);
        assert_eq!(out.row(1), &[1.0]);
    }

    #[test]
    fn row_select_shape_mismatch() {
        let u1 = Matrix::zeros(2, 2);
        let u2 = Matrix::zeros(3, 2);
        assert!(row_select(&u1, &u2).is_err());
    }

    #[test]
    fn row_select_output_rows_come_from_inputs() {
        let u1 = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let u2 = Matrix::from_fn(5, 3, |i, j| ((i + j) as f64).cos());
        let u = row_select(&u1, &u2).unwrap();
        for i in 0..5 {
            let is_u1 = u.row(i) == u1.row(i);
            let is_u2 = u.row(i) == u2.row(i);
            assert!(is_u1 || is_u2, "row {i} is neither input row");
            // And it must be the one with the larger norm.
            let expected = u1.row_norm(i).max(u2.row_norm(i));
            assert!((u.row_norm(i) - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn average_combination_is_midpoint() {
        let u1 = Matrix::from_rows(&[&[2.0, 0.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[0.0, 2.0]]).unwrap();
        let g = Matrix::identity(1);
        let u = combine_pivot_factor(PivotCombine::Average, &g, &g, &u1, &u2, 2).unwrap();
        assert_eq!(u.row(0), &[1.0, 1.0]);
    }

    #[test]
    fn concat_combination_diagonalizes_summed_gram() {
        // Two rank-1 grams along different axes: the summed gram's leading
        // eigenvectors are the coordinate axes, strongest first.
        let g1 = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 0.0]]).unwrap();
        let g2 = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]).unwrap();
        let u_dummy = Matrix::zeros(2, 2);
        let u =
            combine_pivot_factor(PivotCombine::Concat, &g1, &g2, &u_dummy, &u_dummy, 2).unwrap();
        assert!((u.get(0, 0).abs() - 1.0).abs() < 1e-12);
        assert!((u.get(1, 1).abs() - 1.0).abs() < 1e-12);
        assert!(u.get(1, 0).abs() < 1e-12);
    }

    #[test]
    fn concat_result_is_orthonormal() {
        let a = Matrix::from_fn(4, 9, |i, j| ((i * 2 + j) as f64).sin());
        let b = Matrix::from_fn(4, 7, |i, j| ((i + 3 * j) as f64).cos());
        let g1 = a.gram_rows();
        let g2 = b.gram_rows();
        let dummy = Matrix::zeros(4, 3);
        let u = combine_pivot_factor(PivotCombine::Concat, &g1, &g2, &dummy, &dummy, 3).unwrap();
        assert!(u.orthonormality_defect() < 1e-9);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PivotCombine::Average.name(), "M2TD-AVG");
        assert_eq!(PivotCombine::Concat.name(), "M2TD-CONCAT");
        assert_eq!(PivotCombine::Select.name(), "M2TD-SELECT");
        assert_eq!(PivotCombine::all().len(), 3);
    }
}
