//! Error type aggregating the failure modes of the M2TD pipeline.

use std::fmt;

/// Errors produced by M2TD decomposition and the experiment pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The two sub-tensors are structurally incompatible with the
    /// requested pivot count or ranks.
    InvalidInput {
        /// Explanation of the violation.
        reason: String,
    },
    /// Linear algebra failure.
    Linalg(m2td_linalg::LinalgError),
    /// Tensor kernel failure.
    Tensor(m2td_tensor::TensorError),
    /// Sampling-plan failure.
    Sampling(m2td_sampling::SamplingError),
    /// Stitching failure.
    Stitch(m2td_stitch::StitchError),
    /// Simulation/ensemble failure.
    Sim(m2td_sim::SimError),
    /// A numerical guard detected a condition the installed policy refuses
    /// to repair (non-finite values at a phase boundary, rank deficiency,
    /// ill-conditioning, or a blown reconstruction-error budget).
    Guard(m2td_guard::GuardError),
    /// Too many simulation runs failed for degraded-mode decomposition to
    /// proceed: surviving-cell coverage fell below the configured floor.
    InsufficientCoverage {
        /// Fraction of planned cells that survived simulation failures.
        coverage: f64,
        /// The minimum coverage the run was configured to tolerate.
        required: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInput { reason } => write!(f, "invalid M2TD input: {reason}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Sampling(e) => write!(f, "sampling error: {e}"),
            CoreError::Stitch(e) => write!(f, "stitch error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Guard(e) => write!(f, "numerical guard violation: {e}"),
            CoreError::InsufficientCoverage { coverage, required } => write!(
                f,
                "insufficient simulation coverage for degraded-mode decomposition: \
                 {:.1}% of planned cells survived, {:.1}% required",
                coverage * 100.0,
                required * 100.0
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::InvalidInput { .. } | CoreError::InsufficientCoverage { .. } => None,
            CoreError::Linalg(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::Sampling(e) => Some(e),
            CoreError::Stitch(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Guard(e) => Some(e),
        }
    }
}

impl From<m2td_linalg::LinalgError> for CoreError {
    fn from(e: m2td_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<m2td_tensor::TensorError> for CoreError {
    fn from(e: m2td_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<m2td_sampling::SamplingError> for CoreError {
    fn from(e: m2td_sampling::SamplingError) -> Self {
        CoreError::Sampling(e)
    }
}

impl From<m2td_stitch::StitchError> for CoreError {
    fn from(e: m2td_stitch::StitchError) -> Self {
        CoreError::Stitch(e)
    }
}

impl From<m2td_sim::SimError> for CoreError {
    fn from(e: m2td_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<m2td_guard::GuardError> for CoreError {
    fn from(e: m2td_guard::GuardError) -> Self {
        match e {
            // A linalg failure inside a guarded call is still a plain
            // linalg error to pipeline consumers.
            m2td_guard::GuardError::Linalg(l) => CoreError::Linalg(l),
            other => CoreError::Guard(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: CoreError = m2td_tensor::TensorError::EmptyTensor.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("tensor"));
        let i = CoreError::InvalidInput {
            reason: "boom".into(),
        };
        assert!(i.source().is_none());
        assert!(i.to_string().contains("boom"));
    }
}
