//! # M2TD — Multi-Task Tensor Decomposition
//!
//! The paper's primary contribution (Section VI): obtain a Tucker
//! decomposition of the high-order join tensor `J` *directly from the
//! decompositions of the two low-order sub-tensors* `X₁`, `X₂` produced by
//! PF-partitioning, instead of running HOSVD on `J` itself.
//!
//! Three strategies combine the pivot-mode factor pairs:
//!
//! * [`PivotCombine::Average`] — **M2TD-AVG** (Algorithm 2): average the
//!   two factor matrices entry-wise.
//! * [`PivotCombine::Concat`] — **M2TD-CONCAT** (Algorithm 3): seek the
//!   singular vectors of the column-concatenated matricization
//!   `[X₁₍ₙ₎ | X₂₍ₙ₎]` (equivalently, eigenvectors of the summed Grams).
//! * [`PivotCombine::Select`] — **M2TD-SELECT** (Algorithms 4–5): build
//!   each factor row from whichever sub-system represents that entity with
//!   higher energy (row 2-norm).
//!
//! Free-mode factors come from their own sub-tensor; the core is recovered
//! with a sparse-first TTM chain over the stitched join tensor.
//!
//! The [`pipeline`] module wires the full experiment: simulate → sample →
//! stitch → decompose → score against ground truth, for both the M2TD
//! variants and the conventional baselines of Section IV.

pub mod analysis;
mod combine;
mod error;
mod m2td;
mod multiway;
pub mod pipeline;

pub use combine::{align_signs, combine_pivot_factor, row_select, PivotCombine};
pub use error::CoreError;
pub use m2td::{
    m2td_decompose, projection_factors, CoreProjection, M2tdDecomposition, M2tdOptions, M2tdTimings,
};
pub use multiway::m2td_decompose_multi;
pub use pipeline::{DegradedStats, RunReport, SimFaultPolicy, Workbench, WorkbenchConfig};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
