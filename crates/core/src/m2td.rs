//! The M2TD decomposition (Algorithms 2–4 of the paper).

use crate::combine::{combine_pivot_factor, PivotCombine};
use crate::error::CoreError;
use crate::Result;
use m2td_stitch::{stitch, StitchKind, StitchReport};
use m2td_tensor::{CoreOrdering, SparseTensor, TtmPlan, TuckerDecomp, Workspace};
use std::time::Instant;

/// How the core tensor is recovered from the join tensor and the factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreProjection {
    /// `G = J ×₁ U⁽¹⁾ᵀ ⋯` — the paper's Algorithm 4 as written. Exact when
    /// every factor is orthonormal (CONCAT), biased when a combined factor
    /// is not (AVG's averages and SELECT's row mixtures).
    Transpose,
    /// `G = J ×₁ U⁽¹⁾⁺ ⋯` with the Moore–Penrose pseudo-inverse: the
    /// least-squares core for the given factors. Identical to `Transpose`
    /// for orthonormal factors and strictly better for the combined ones;
    /// this is the default (the `ablation_projection` bench quantifies the
    /// difference).
    LeastSquares,
}

/// Options controlling an M2TD decomposition.
#[derive(Debug, Clone, Copy)]
pub struct M2tdOptions {
    /// Pivot-factor combination strategy (AVG / CONCAT / SELECT).
    pub combine: PivotCombine,
    /// Join or zero-join stitching for the core-recovery tensor.
    pub stitch: StitchKind,
    /// Mode ordering for the core-recovery TTM chain.
    pub ordering: CoreOrdering,
    /// Core-recovery projection.
    pub projection: CoreProjection,
}

impl Default for M2tdOptions {
    fn default() -> Self {
        Self {
            combine: PivotCombine::Select,
            stitch: StitchKind::Join,
            ordering: CoreOrdering::BestShrinkFirst,
            projection: CoreProjection::LeastSquares,
        }
    }
}

/// Wall-clock durations of the three phases of the algorithm — these
/// correspond one-to-one with the phases of D-M2TD (Section VI-D) and feed
/// the Table III reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct M2tdTimings {
    /// Phase 1: sub-tensor factor computation (Gram + eigenvectors).
    pub phase1_decompose: f64,
    /// Phase 2: JE-stitching into the join tensor.
    pub phase2_stitch: f64,
    /// Phase 3: core recovery (TTM chain over the join tensor).
    pub phase3_core: f64,
}

impl M2tdTimings {
    /// Total decomposition time in seconds.
    pub fn total(&self) -> f64 {
        self.phase1_decompose + self.phase2_stitch + self.phase3_core
    }
}

/// The result of an M2TD decomposition: a Tucker decomposition of the join
/// tensor (modes in join order `[pivot…, free₁…, free₂…]`) plus stitch
/// statistics and phase timings.
#[derive(Debug, Clone)]
pub struct M2tdDecomposition {
    /// Tucker decomposition of the join tensor.
    pub tucker: TuckerDecomp,
    /// Statistics of the stitch that produced the join tensor.
    pub stitch_report: StitchReport,
    /// Wall-clock phase timings.
    pub timings: M2tdTimings,
    /// Outcome of the end-to-end acceptance check (relative reconstruction
    /// error of the recovered core over the observed join cells, against
    /// the installed budget). `None` unless `m2td-guard` is installed with
    /// an error budget.
    pub guard: Option<m2td_guard::GuardVerdict>,
}

/// Runs M2TD over two PF-partitioned sub-ensemble tensors.
///
/// * `x1`, `x2` — sub-tensors in sub-tensor mode order (first `k` modes are
///   the shared pivots).
/// * `k` — number of pivot modes.
/// * `ranks` — per-mode target ranks **in join order**
///   (`k + (order(x1) − k) + (order(x2) − k)` entries).
///
/// Implements Algorithm 4 (and, via [`M2tdOptions::combine`], Algorithms 2
/// and 3): pivot factors are combined from both sub-tensors, free-mode
/// factors come from their own sub-tensor, and the core is recovered as
/// `G = J ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ` over the stitched join tensor `J`.
///
/// ```
/// use m2td_core::{m2td_decompose, M2tdOptions};
/// use m2td_tensor::{SparseTensor, Shape};
///
/// // Fully dense 4x3 sub-ensembles sharing the first (pivot) mode.
/// let fill = |dims: &[usize], scale: f64| {
///     let shape = Shape::new(dims);
///     let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
///         .map(|l| (shape.multi_index(l), scale * (l as f64 * 0.4).sin()))
///         .collect();
///     SparseTensor::from_entries(dims, &entries).unwrap()
/// };
/// let x1 = fill(&[4, 3], 1.0);
/// let x2 = fill(&[4, 3], 2.0);
///
/// let d = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], M2tdOptions::default()).unwrap();
/// // The decomposition covers the 4x3x3 join tensor at rank (2,2,2).
/// assert_eq!(d.tucker.output_dims(), vec![4, 3, 3]);
/// assert_eq!(d.stitch_report.join_nnz, 4 * 3 * 3);
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidInput`] for structural mismatches (wrong rank
///   count, rank exceeding a mode size, bad `k`).
/// * Propagated stitch/tensor/linalg errors.
#[allow(clippy::needless_range_loop)] // free-mode loops index `ranks` with offset arithmetic
pub fn m2td_decompose(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
) -> Result<M2tdDecomposition> {
    let m1 = x1.order();
    let m2 = x2.order();
    if k == 0 || k >= m1 || k >= m2 {
        return Err(CoreError::InvalidInput {
            reason: format!("pivot count {k} invalid for sub-tensor orders {m1}, {m2}"),
        });
    }
    let join_order = k + (m1 - k) + (m2 - k);
    if ranks.len() != join_order {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "{} ranks supplied for a join tensor of order {join_order}",
                ranks.len()
            ),
        });
    }
    // Join-order mode extents, for rank validation.
    let mut join_dims: Vec<usize> = x1.dims()[..k].to_vec();
    join_dims.extend_from_slice(&x1.dims()[k..]);
    join_dims.extend_from_slice(&x2.dims()[k..]);
    for (n, (&r, &d)) in ranks.iter().zip(join_dims.iter()).enumerate() {
        if r == 0 || r > d {
            return Err(CoreError::InvalidInput {
                reason: format!("rank {r} invalid for join mode {n} of extent {d}"),
            });
        }
    }

    // Phase-boundary sentinel: reject poisoned inputs before any phase
    // runs (no-ops while m2td-guard is uninstalled).
    m2td_guard::check_cells("phase1.x1", x1.iter())?;
    m2td_guard::check_cells("phase1.x2", x2.iter())?;

    // ---- Phase 1: sub-tensor decompositions + pivot combination --------
    // The X₁ side (pivot grams/bases + X₁ free factors) and the X₂ side
    // are independent by construction, so they run concurrently on the
    // `m2td-par` pool — the single-node analogue of D-M2TD Phase 1. Each
    // side computes the same grams in the same order as the serial loop,
    // so results are bitwise unchanged.
    //
    // Span labels are shared with `m2td_dist::d_m2td*`: the phases
    // correspond one-to-one, so telemetry consumers see one taxonomy.
    let span1 = m2td_obs::span!("phase1.decompose");
    let t1 = Instant::now();
    type PivotSide = (
        Vec<(m2td_linalg::Matrix, m2td_linalg::Matrix)>,
        Vec<m2td_linalg::Matrix>,
    );
    let (side1, side2): (Result<PivotSide>, Result<PivotSide>) = m2td_par::join(
        || {
            let mut pivot = Vec::with_capacity(k);
            for n in 0..k {
                let gram1 = m2td_tensor::phase_gram(x1, n)?;
                let u1 = leading(&gram1, ranks[n], n)?;
                pivot.push((gram1, u1));
            }
            let mut free = Vec::with_capacity(m1 - k);
            for n in k..m1 {
                let gram = m2td_tensor::phase_gram(x1, n)?;
                free.push(leading(&gram, ranks[n], n)?);
            }
            Ok((pivot, free))
        },
        || {
            let mut pivot = Vec::with_capacity(k);
            for n in 0..k {
                let gram2 = m2td_tensor::phase_gram(x2, n)?;
                let u2 = leading(&gram2, ranks[n], n)?;
                pivot.push((gram2, u2));
            }
            let mut free = Vec::with_capacity(m2 - k);
            for n in k..m2 {
                let join_mode = k + (m1 - k) + (n - k);
                let gram = m2td_tensor::phase_gram(x2, n)?;
                free.push(leading(&gram, ranks[join_mode], join_mode)?);
            }
            Ok((pivot, free))
        },
    );
    let (pivot1, free1) = side1?;
    let (pivot2, free2) = side2?;
    let mut factors = Vec::with_capacity(join_order);
    for ((gram1, u1), (gram2, u2)) in pivot1.iter().zip(pivot2.iter()) {
        // The guard's ClampRank policy may have truncated one side's
        // pivot basis; combination needs equal widths, so harmonize both
        // sides to the narrower one.
        let width = u1.cols().min(u2.cols());
        factors.push(combine_pivot_factor(
            opts.combine,
            gram1,
            gram2,
            &u1.leading_columns(width)?,
            &u2.leading_columns(width)?,
            width,
        )?);
    }
    factors.extend(free1);
    factors.extend(free2);
    // Phase-1 boundary sentinel: combined factors are the phase output.
    for (n, f) in factors.iter().enumerate() {
        m2td_guard::check_matrix("phase1.factor", Some(n), f)?;
    }
    let phase1 = t1.elapsed().as_secs_f64();
    drop(span1);

    // ---- Phase 2: JE-stitching ------------------------------------------
    let span2 = m2td_obs::span!("phase2.stitch");
    let t2 = Instant::now();
    let (join, stitch_report) = stitch(x1, x2, k, opts.stitch)?;
    // Phase-2 boundary sentinel: a poisoned join cell must not reach core
    // recovery.
    m2td_guard::check_cells("phase2.join", join.iter())?;
    let phase2 = t2.elapsed().as_secs_f64();
    drop(span2);

    // ---- Phase 3: core recovery -----------------------------------------
    let _span3 = m2td_obs::span!("phase3.core");
    let t3 = Instant::now();
    if join.nnz() == 0 {
        return Err(CoreError::InvalidInput {
            reason: "join tensor is empty: the sub-ensembles share no pivot configuration"
                .to_string(),
        });
    }
    // Plan the TTM chain once for the join shape (compression-ratio
    // ordering, semi-sparse execution) and run it with a workspace so the
    // chain's unfold/product/fold buffers are reused across steps. Sized
    // off the *actual* factor widths, which the guard's ClampRank policy
    // may have shrunk below the requested ranks.
    let widths: Vec<usize> = factors.iter().map(|f| f.cols()).collect();
    let chain_plan = TtmPlan::with_ordering(join.dims(), &widths, opts.ordering)?;
    let mut ws = Workspace::new();
    let core = match opts.projection {
        CoreProjection::Transpose => chain_plan.execute_sparse(&join, &factors, &mut ws)?,
        CoreProjection::LeastSquares => {
            // G = J ×ₙ Uⁿ⁺ — realized by replacing each factor U with
            // W = U (UᵀU)⁻¹, since Wᵀ = (UᵀU)⁻¹Uᵀ = U⁺.
            let ls_factors = projection_factors(&factors, opts.projection)?;
            chain_plan.execute_sparse(&join, &ls_factors, &mut ws)?
        }
    };
    let phase3 = t3.elapsed().as_secs_f64();
    // Phase-3 boundary sentinel: the recovered core is the run's output;
    // a non-finite entry here is exactly the "silent garbage core" the
    // guard layer exists to prevent.
    m2td_guard::check_dense("phase3.core", core.dims(), core.as_slice())?;

    let tucker = TuckerDecomp::new(core, factors)?;
    let guard = acceptance_verdict(&tucker, &join)?;
    Ok(M2tdDecomposition {
        tucker,
        stitch_report,
        timings: M2tdTimings {
            phase1_decompose: phase1,
            phase2_stitch: phase2,
            phase3_core: phase3,
        },
        guard,
    })
}

/// End-to-end acceptance check: relative reconstruction error of the
/// decomposition over the *observed* join cells, judged against the
/// installed error budget. `None` (and no reconstruction work at all)
/// unless `m2td-guard` is installed with a budget configured.
fn acceptance_verdict(
    tucker: &TuckerDecomp,
    join: &SparseTensor,
) -> Result<Option<m2td_guard::GuardVerdict>> {
    if !m2td_guard::installed() || m2td_guard::config().error_budget.is_none() {
        return Ok(None);
    }
    let recon = tucker.reconstruct()?;
    let mut num = 0.0;
    let mut den = 0.0;
    for (idx, v) in join.iter() {
        let d = recon.get(&idx) - v;
        num += d * d;
        den += v * v;
    }
    let relative_error = if den > 0.0 {
        (num / den).sqrt()
    } else {
        f64::INFINITY
    };
    Ok(m2td_guard::budget_verdict(relative_error))
}

/// Leading-`r` eigenvectors of a Gram matrix for join mode `join_mode`,
/// routed through the numerical guard layer (spectrum checks and policy
/// repairs when `m2td-guard` is installed; a plain eig + truncation
/// otherwise).
fn leading(gram: &m2td_linalg::Matrix, r: usize, join_mode: usize) -> Result<m2td_linalg::Matrix> {
    Ok(m2td_guard::gram_factor(
        "phase1.factor",
        Some(join_mode),
        gram,
        r,
    )?)
}

/// Applies the configured core projection to a factor list: returns the
/// matrices whose transposes should multiply the join tensor when
/// recovering the core. Identity for [`CoreProjection::Transpose`];
/// pseudo-inverse-inducing transform for [`CoreProjection::LeastSquares`].
///
/// Shared between the serial implementation here and `m2td_dist::d_m2td`.
pub fn projection_factors(
    factors: &[m2td_linalg::Matrix],
    projection: CoreProjection,
) -> Result<Vec<m2td_linalg::Matrix>> {
    match projection {
        CoreProjection::Transpose => Ok(factors.to_vec()),
        CoreProjection::LeastSquares => factors.iter().map(ls_projection_factor).collect(),
    }
}

/// `W = U (UᵀU)⁻¹`, so that `Wᵀ = U⁺` (the factor's pseudo-inverse).
///
/// A tiny ridge keeps the `r × r` solve well-posed when a combined factor
/// is nearly rank-deficient. With `m2td-guard` installed under
/// `Regularize(λ)`, the configured `λ` replaces the built-in `1e-12` —
/// this solve is where that policy's ridge actually lands.
fn ls_projection_factor(u: &m2td_linalg::Matrix) -> Result<m2td_linalg::Matrix> {
    let r = u.cols();
    let ridge = m2td_guard::ridge_lambda().unwrap_or(1e-12);
    let mut gram = u.transpose_matmul(u)?;
    for i in 0..r {
        gram.set(i, i, gram.get(i, i) + ridge);
    }
    // Solve (UᵀU) Xᵀ = Uᵀ row-by-row of U: each row w_i of W solves
    // (UᵀU) w_i = u_i where u_i is the i-th row of U.
    let mut w = m2td_linalg::Matrix::zeros(u.rows(), r);
    for i in 0..u.rows() {
        let sol = m2td_linalg::solve_spd(&gram, u.row(i))?;
        w.row_mut(i).copy_from_slice(&sol);
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_tensor::{DenseTensor, Shape};

    /// Builds two fully dense sub-tensors sampled from a smooth function of
    /// the *underlying* 3-parameter system (pivot p, free a, free b), with
    /// the other free parameter fixed at its default.
    fn sub_tensors(p_dim: usize, f_dim: usize) -> (SparseTensor, SparseTensor, DenseTensor) {
        // Ground truth over [p, a, b].
        let f = |p: usize, a: usize, b: usize| {
            ((p as f64) * 0.7).sin() * ((a as f64) * 0.4 + 1.0) * ((b as f64) * 0.3 + 1.0)
                + 0.1 * (p as f64)
        };
        let truth = DenseTensor::from_fn(&[p_dim, f_dim, f_dim], |i| f(i[0], i[1], i[2]));
        let default_b = f_dim / 2;
        let default_a = f_dim / 2;
        // X1: [p, a] with b fixed; X2: [p, b] with a fixed.
        let full = |dims: &[usize], g: &dyn Fn(&[usize]) -> f64| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| {
                    let idx = shape.multi_index(l);
                    let v = g(&idx);
                    (idx, v)
                })
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = full(&[p_dim, f_dim], &|i: &[usize]| f(i[0], i[1], default_b));
        let x2 = full(&[p_dim, f_dim], &|i: &[usize]| f(i[0], default_a, i[1]));
        (x1, x2, truth)
    }

    fn accuracy_of(kind: PivotCombine) -> f64 {
        let (x1, x2, truth) = sub_tensors(6, 5);
        let opts = M2tdOptions {
            combine: kind,
            ..M2tdOptions::default()
        };
        let d = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], opts).unwrap();
        1.0 - d.tucker.relative_error(&truth).unwrap()
    }

    #[test]
    fn all_variants_produce_valid_decompositions() {
        for kind in PivotCombine::all() {
            let acc = accuracy_of(kind);
            assert!(
                acc.is_finite() && acc > 0.0,
                "{} accuracy {acc} not positive",
                kind.name()
            );
        }
    }

    #[test]
    fn join_tensor_shape_is_pivot_free1_free2() {
        let (x1, x2, _) = sub_tensors(4, 3);
        let d = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], M2tdOptions::default()).unwrap();
        assert_eq!(d.tucker.output_dims(), vec![4, 3, 3]);
        assert_eq!(d.tucker.ranks(), &[2, 2, 2]);
        assert_eq!(d.stitch_report.shared_pivot_configs, 4);
    }

    #[test]
    fn timings_are_populated() {
        let (x1, x2, _) = sub_tensors(5, 4);
        let d = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], M2tdOptions::default()).unwrap();
        assert!(d.timings.total() > 0.0);
        assert!(d.timings.phase1_decompose >= 0.0);
        assert!(d.timings.phase3_core >= 0.0);
    }

    #[test]
    fn rank_validation() {
        let (x1, x2, _) = sub_tensors(4, 3);
        // Wrong count.
        assert!(m2td_decompose(&x1, &x2, 1, &[2, 2], M2tdOptions::default()).is_err());
        // Rank exceeding mode extent.
        assert!(m2td_decompose(&x1, &x2, 1, &[5, 2, 2], M2tdOptions::default()).is_err());
        // Zero rank.
        assert!(m2td_decompose(&x1, &x2, 1, &[0, 2, 2], M2tdOptions::default()).is_err());
        // Bad k.
        assert!(m2td_decompose(&x1, &x2, 0, &[2, 2, 2], M2tdOptions::default()).is_err());
        assert!(m2td_decompose(&x1, &x2, 2, &[2, 2, 2], M2tdOptions::default()).is_err());
    }

    #[test]
    fn disjoint_pivots_error_cleanly() {
        let x1 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 1.0)]).unwrap();
        let x2 = SparseTensor::from_entries(&[2, 2], &[(vec![1, 1], 1.0)]).unwrap();
        let r = m2td_decompose(&x1, &x2, 1, &[1, 1, 1], M2tdOptions::default());
        assert!(matches!(r, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn select_beats_or_matches_average_on_asymmetric_energy() {
        // Make X2 much weaker (scaled down): SELECT should keep X1's strong
        // rows, while AVG dilutes them.
        let (x1, x2_orig, truth) = sub_tensors(6, 5);
        let weak_entries: Vec<(Vec<usize>, f64)> =
            x2_orig.iter().map(|(i, v)| (i, v * 0.05)).collect();
        let x2 = SparseTensor::from_entries(x2_orig.dims(), &weak_entries).unwrap();
        let run = |kind| {
            let opts = M2tdOptions {
                combine: kind,
                ..M2tdOptions::default()
            };
            let d = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], opts).unwrap();
            1.0 - d.tucker.relative_error(&truth).unwrap()
        };
        let avg = run(PivotCombine::Average);
        let select = run(PivotCombine::Select);
        assert!(
            select >= avg - 1e-6,
            "SELECT ({select}) should not lose to AVG ({avg}) under asymmetric energy"
        );
    }

    #[test]
    fn zero_join_handles_sparse_subsystems() {
        let (x1_full, x2_full, _) = sub_tensors(6, 5);
        // Drop most entries from both sub-tensors.
        let thin = |x: &SparseTensor, keep: usize| {
            let entries: Vec<(Vec<usize>, f64)> = x
                .iter()
                .enumerate()
                .filter(|(i, _)| i % keep == 0)
                .map(|(_, e)| e)
                .collect();
            SparseTensor::from_entries(x.dims(), &entries).unwrap()
        };
        let x1 = thin(&x1_full, 3);
        let x2 = thin(&x2_full, 3);
        let opts = M2tdOptions {
            stitch: StitchKind::ZeroJoin,
            ..M2tdOptions::default()
        };
        let d = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], opts).unwrap();
        assert!(d.stitch_report.join_nnz > 0);
        assert!(d.tucker.core.frobenius_norm() > 0.0);
    }
}
