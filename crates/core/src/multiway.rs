//! Multi-way M2TD — decomposing `S ≥ 2` PF-partitioned sub-ensembles
//! (extension beyond the paper's two-task formulation).
//!
//! The algorithm generalizes directly: pivot-mode factors are combined
//! across all `S` sub-tensor decompositions (AVG averages all of them,
//! CONCAT diagonalizes the summed Grams, SELECT takes each row from the
//! sub-system with the highest energy), free-mode factors come from their
//! own sub-tensor, and the core is recovered over the multi-way join
//! tensor.

use crate::combine::{align_signs, PivotCombine};
use crate::error::CoreError;
use crate::m2td::{projection_factors, M2tdDecomposition, M2tdOptions, M2tdTimings};
use crate::Result;
use m2td_linalg::Matrix;
use m2td_stitch::stitch_multi;
use m2td_tensor::{sparse_core, SparseTensor, TuckerDecomp};
use std::time::Instant;

/// Combines `S` pivot factors into one.
fn combine_multi(
    kind: PivotCombine,
    grams: &[Matrix],
    factors: &[Matrix],
    r: usize,
) -> Result<Matrix> {
    match kind {
        PivotCombine::Average => {
            let mut acc = factors[0].clone();
            for f in &factors[1..] {
                let aligned = align_signs(&factors[0], f)?;
                acc = acc.add(&aligned)?;
            }
            Ok(acc.scaled(1.0 / factors.len() as f64))
        }
        PivotCombine::Concat => {
            let mut sum = grams[0].clone();
            for g in &grams[1..] {
                sum = sum.add(g)?;
            }
            Ok(m2td_guard::gram_factor("phase1.combine", None, &sum, r)?)
        }
        PivotCombine::Select => {
            let rows = factors[0].rows();
            let cols = factors[0].cols();
            let aligned: Vec<Matrix> = std::iter::once(Ok(factors[0].clone()))
                .chain(factors[1..].iter().map(|f| align_signs(&factors[0], f)))
                .collect::<Result<_>>()?;
            let mut out = Matrix::zeros(rows, cols);
            for i in 0..rows {
                let best = aligned
                    .iter()
                    .max_by(|a, b| {
                        a.row_norm(i)
                            .partial_cmp(&b.row_norm(i))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("at least two factors");
                out.row_mut(i).copy_from_slice(best.row(i));
            }
            Ok(out)
        }
    }
}

/// Runs M2TD over `S ≥ 2` sub-tensors sharing their first `k` (pivot)
/// modes. `ranks` is given in join order
/// (`k + Σ_s (order(X_s) − k)` entries). For `S = 2` the result matches
/// [`crate::m2td_decompose`].
///
/// # Errors
///
/// [`CoreError::InvalidInput`] for structural mismatches; propagated
/// stitch/tensor/linalg errors otherwise.
#[allow(clippy::needless_range_loop)] // pivot loop indexes `ranks` alongside per-sub grams
pub fn m2td_decompose_multi(
    subs: &[&SparseTensor],
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
) -> Result<M2tdDecomposition> {
    if subs.len() < 2 {
        return Err(CoreError::InvalidInput {
            reason: format!("need at least 2 sub-tensors, got {}", subs.len()),
        });
    }
    for x in subs {
        if k == 0 || k >= x.order() {
            return Err(CoreError::InvalidInput {
                reason: format!("pivot count {k} invalid for order {}", x.order()),
            });
        }
    }
    let join_order: usize = k + subs.iter().map(|x| x.order() - k).sum::<usize>();
    if ranks.len() != join_order {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "{} ranks supplied for a join tensor of order {join_order}",
                ranks.len()
            ),
        });
    }
    let mut join_dims: Vec<usize> = subs[0].dims()[..k].to_vec();
    for x in subs {
        join_dims.extend_from_slice(&x.dims()[k..]);
    }
    for (n, (&r, &d)) in ranks.iter().zip(join_dims.iter()).enumerate() {
        if r == 0 || r > d {
            return Err(CoreError::InvalidInput {
                reason: format!("rank {r} invalid for join mode {n} of extent {d}"),
            });
        }
    }

    // ---- Phase 1: per-sub-tensor factors + pivot combination ------------
    let t1 = Instant::now();
    let mut factors: Vec<Matrix> = Vec::with_capacity(join_order);
    for n in 0..k {
        let grams: Vec<Matrix> = subs
            .iter()
            .map(|x| m2td_tensor::phase_gram(x, n).map_err(CoreError::from))
            .collect::<Result<_>>()?;
        let pivot_factors: Vec<Matrix> = grams
            .iter()
            .map(|g| leading(g, ranks[n]))
            .collect::<Result<_>>()?;
        factors.push(combine_multi(
            opts.combine,
            &grams,
            &pivot_factors,
            ranks[n],
        )?);
    }
    let mut rank_pos = k;
    for x in subs {
        for mode in k..x.order() {
            let gram = m2td_tensor::phase_gram(x, mode)?;
            factors.push(leading(&gram, ranks[rank_pos])?);
            rank_pos += 1;
        }
    }
    let phase1 = t1.elapsed().as_secs_f64();

    // ---- Phase 2: multi-way stitch --------------------------------------
    let t2 = Instant::now();
    let (join, stitch_report) = stitch_multi(subs, k, opts.stitch)?;
    let phase2 = t2.elapsed().as_secs_f64();

    // ---- Phase 3: core recovery -----------------------------------------
    let t3 = Instant::now();
    if join.nnz() == 0 {
        return Err(CoreError::InvalidInput {
            reason: "multi-way join tensor is empty".to_string(),
        });
    }
    let proj = projection_factors(&factors, opts.projection)?;
    let core = sparse_core(&join, &proj, opts.ordering)?;
    let phase3 = t3.elapsed().as_secs_f64();

    let tucker = TuckerDecomp::new(core, factors)?;
    Ok(M2tdDecomposition {
        tucker,
        stitch_report,
        timings: M2tdTimings {
            phase1_decompose: phase1,
            phase2_stitch: phase2,
            phase3_core: phase3,
        },
        guard: None,
    })
}

fn leading(gram: &Matrix, r: usize) -> Result<Matrix> {
    Ok(m2td_guard::gram_factor("phase1.factor", None, gram, r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m2td::m2td_decompose;
    use m2td_tensor::Shape;

    fn full(dims: &[usize], f: impl Fn(&[usize]) -> f64) -> SparseTensor {
        let shape = Shape::new(dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .map(|l| {
                let idx = shape.multi_index(l);
                let v = f(&idx);
                (idx, v)
            })
            .collect();
        SparseTensor::from_entries(dims, &entries).unwrap()
    }

    fn value(p: usize, a: usize, b: usize, c: usize) -> f64 {
        ((p as f64) * 0.6).sin() * ((a + 1) as f64) + ((b * c) as f64) * 0.1 + (c as f64) * 0.3
    }

    #[test]
    fn two_way_multi_matches_pairwise_m2td() {
        let x1 = full(&[5, 4], |i| value(i[0], i[1], 2, 2));
        let x2 = full(&[5, 4], |i| value(i[0], 2, i[1], 2));
        let ranks = [3, 3, 3];
        for combine in PivotCombine::all() {
            let opts = M2tdOptions {
                combine,
                ..M2tdOptions::default()
            };
            let pair = m2td_decompose(&x1, &x2, 1, &ranks, opts).unwrap();
            let multi = m2td_decompose_multi(&[&x1, &x2], 1, &ranks, opts).unwrap();
            let d = pair
                .tucker
                .core
                .sub(&multi.tucker.core)
                .unwrap()
                .frobenius_norm();
            assert!(d < 1e-9, "{}: core diff {d}", combine.name());
        }
    }

    #[test]
    fn three_way_decomposition_runs_and_reconstructs() {
        let x1 = full(&[5, 3], |i| value(i[0], i[1], 1, 1));
        let x2 = full(&[5, 3], |i| value(i[0], 1, i[1], 1));
        let x3 = full(&[5, 3], |i| value(i[0], 1, 1, i[1]));
        let ranks = [2, 2, 2, 2];
        for combine in PivotCombine::all() {
            let opts = M2tdOptions {
                combine,
                ..M2tdOptions::default()
            };
            let d = m2td_decompose_multi(&[&x1, &x2, &x3], 1, &ranks, opts).unwrap();
            assert_eq!(d.tucker.output_dims(), vec![5, 3, 3, 3]);
            let recon = d.tucker.reconstruct().unwrap();
            assert!(recon.frobenius_norm() > 0.0);
            // Against the true join tensor.
            let (join, _) =
                stitch_multi(&[&x1, &x2, &x3], 1, m2td_stitch::StitchKind::Join).unwrap();
            let dense_join = join.to_dense().unwrap();
            let err =
                recon.sub(&dense_join).unwrap().frobenius_norm() / dense_join.frobenius_norm();
            assert!(err < 1.0, "{}: join fit {err}", combine.name());
        }
    }

    #[test]
    fn validation() {
        let x = full(&[3, 3], |i| (i[0] + i[1]) as f64);
        let opts = M2tdOptions::default();
        assert!(m2td_decompose_multi(&[&x], 1, &[2, 2], opts).is_err());
        assert!(m2td_decompose_multi(&[&x, &x], 0, &[2, 2, 2], opts).is_err());
        assert!(m2td_decompose_multi(&[&x, &x], 1, &[2, 2], opts).is_err());
        assert!(m2td_decompose_multi(&[&x, &x], 1, &[2, 9, 2], opts).is_err());
    }

    #[test]
    fn disjoint_pivots_error() {
        let x1 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 1.0)]).unwrap();
        let x2 = SparseTensor::from_entries(&[2, 2], &[(vec![1, 0], 1.0)]).unwrap();
        let x3 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 1], 1.0)]).unwrap();
        let r = m2td_decompose_multi(&[&x1, &x2, &x3], 1, &[1, 1, 1, 1], M2tdOptions::default());
        assert!(r.is_err());
    }
}
