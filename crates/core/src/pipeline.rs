//! End-to-end experiment pipeline: simulate → sample → (stitch) →
//! decompose → score.
//!
//! A [`Workbench`] fixes a dynamical system, a parameter resolution, a time
//! grid and a target rank, materializes the ground-truth tensor `Y` once,
//! and then runs any number of strategies against it:
//!
//! * [`Workbench::run_conventional`] — the Section IV baselines: sample the
//!   full space with a budget, HOSVD the sparse ensemble, reconstruct,
//!   score.
//! * [`Workbench::run_m2td`] — the paper's pipeline: PF-partition,
//!   sample the two sub-spaces, stitch, M2TD, reconstruct, score.
//! * [`Workbench::run_joined_hosvd`] — ablation: stitch but decompose the
//!   join tensor directly with sparse HOSVD instead of M2TD.
//!
//! Accuracy is the paper's Section VII-D metric
//! `1 − ‖X̃ − Y‖_F / ‖Y‖_F`, with reconstructions permuted from join order
//! back to the natural mode order before comparison.

use crate::error::CoreError;
use crate::m2td::{m2td_decompose, M2tdOptions, M2tdTimings};
use crate::Result;
use m2td_fault::FaultPlan;
use m2td_sampling::{PfPartition, SamplingScheme, SubSystem};
use m2td_sim::{EnsembleBuilder, EnsembleSystem, ParameterSpace, TimeGrid};
use m2td_stitch::StitchReport;
use m2td_tensor::{hosvd_sparse, DenseTensor, Shape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// Static configuration of a workbench.
#[derive(Debug, Clone, Copy)]
pub struct WorkbenchConfig {
    /// Values per parameter axis (the paper's "resolution", scaled down).
    pub resolution: usize,
    /// Time-mode extent.
    pub time_steps: usize,
    /// Total simulated time.
    pub t_end: f64,
    /// RK4 substeps between recorded stamps.
    pub substeps: usize,
    /// Uniform target rank (clipped per mode to the mode extent).
    pub rank: usize,
    /// RNG seed for all sampling decisions.
    pub seed: u64,
    /// Standard deviation of additive Gaussian measurement noise applied
    /// to sampled cells (0 = clean observations; the ground truth is
    /// always noise-free).
    pub noise_sigma: f64,
}

impl Default for WorkbenchConfig {
    fn default() -> Self {
        Self {
            resolution: 8,
            time_steps: 8,
            t_end: 2.0,
            substeps: 20,
            rank: 4,
            seed: 17,
            noise_sigma: 0.0,
        }
    }
}

/// Failure model for the simulation stage of a degraded-mode run
/// ([`Workbench::run_m2td_degraded`]): which runs fail (deterministic,
/// seeded), how often each is retried, and how much missingness the
/// decomposition tolerates before giving up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFaultPolicy {
    /// Seeded failure schedule; only its simulation stream is consulted.
    pub plan: FaultPlan,
    /// Attempts per simulation run before it is abandoned.
    pub max_attempts: u32,
    /// Minimum fraction of planned cells that must survive for the
    /// decomposition to proceed; below it the run aborts with
    /// [`CoreError::InsufficientCoverage`].
    pub min_coverage: f64,
}

impl SimFaultPolicy {
    /// A policy failing each simulation attempt with probability
    /// `fail_rate`, retrying up to 3 attempts, tolerating 50% cell loss.
    pub fn new(seed: u64, fail_rate: f64) -> Self {
        Self {
            plan: FaultPlan::sim_failures(seed, fail_rate),
            max_attempts: 3,
            min_coverage: 0.5,
        }
    }

    /// Sets the coverage floor.
    pub fn with_min_coverage(mut self, min_coverage: f64) -> Self {
        self.min_coverage = min_coverage;
        self
    }

    /// Sets the per-run attempt budget.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Poisons a deterministic fraction of the simulated sub-ensemble
    /// cells with NaN (corrupted telemetry / sensor dropout). Without an
    /// installed `m2td-guard` the NaNs propagate silently; with one they
    /// are caught at the phase-1 boundary.
    pub fn with_nan_cell_rate(mut self, rate: f64) -> Self {
        self.plan = self.plan.with_nan_cell_rate(rate);
        self
    }
}

/// Degraded-mode accounting attached to a [`RunReport`] when the run
/// executed under a [`SimFaultPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedStats {
    /// Simulation runs that failed on every allowed attempt; their cells
    /// became missing values.
    pub failed_sims: usize,
    /// Extra simulation attempts spent on eventually-successful retries.
    pub sim_retries: usize,
    /// Cells the sampling plan called for before failures.
    pub planned_cells: usize,
    /// Fraction of planned cells that survived (`cells / planned_cells`).
    pub coverage: f64,
}

impl DegradedStats {
    /// True if any run was lost — i.e. the reported accuracy is a
    /// degraded-mode accuracy over a thinner-than-planned ensemble.
    pub fn is_degraded(&self) -> bool {
        self.failed_sims > 0
    }
}

/// The outcome of one strategy run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label (e.g. `"M2TD-SELECT"`, `"random"`).
    pub method: String,
    /// The paper's accuracy metric against the ground truth.
    pub accuracy: f64,
    /// Wall-clock decomposition time (seconds).
    pub decompose_secs: f64,
    /// Wall-clock simulation time (seconds).
    pub simulate_secs: f64,
    /// Number of ensemble cells simulated (the budget unit).
    pub cells: usize,
    /// Number of distinct simulation runs executed.
    pub distinct_sims: usize,
    /// Density of the sampled (or joined) tensor that was decomposed.
    pub density: f64,
    /// Phase timings, for M2TD runs.
    pub timings: Option<M2tdTimings>,
    /// Stitch statistics, for M2TD / joined-HOSVD runs.
    pub stitch: Option<StitchReport>,
    /// Degraded-mode accounting, for runs executed under a
    /// [`SimFaultPolicy`].
    pub degraded: Option<DegradedStats>,
    /// Telemetry snapshot (span aggregates, counters, gauges) taken when
    /// the report was built. Present iff an `m2td-obs` subscriber was
    /// installed; covers everything recorded since the last
    /// `m2td_obs::reset()`, not just this run.
    pub metrics: Option<m2td_obs::MetricsSnapshot>,
    /// Outcome of the guard layer's end-to-end acceptance check (relative
    /// reconstruction error over the observed join cells vs the configured
    /// budget). `None` unless `m2td-guard` is installed with an error
    /// budget; only M2TD runs compute it.
    pub guard: Option<m2td_guard::GuardVerdict>,
}

impl RunReport {
    /// Whether the run is healthy: either no acceptance check ran (no
    /// guard installed, or no budget configured) or the check passed.
    pub fn is_healthy(&self) -> bool {
        self.guard.is_none_or(|v| v.healthy)
    }
}

/// Output of [`Workbench::build_subsystems`]: the two sub-tensors plus
/// sampling/failure accounting.
struct SubsystemBuild {
    x1: m2td_tensor::SparseTensor,
    x2: m2td_tensor::SparseTensor,
    cells: usize,
    distinct_sims: usize,
    simulate_secs: f64,
    degraded: Option<DegradedStats>,
}

/// Replaces each cell selected by the fault plan's NaN stream with NaN.
/// Rebuilds the tensor from its (already sorted) linear storage, so the
/// untouched cells keep their exact bit patterns.
fn poison_cells(
    x: &m2td_tensor::SparseTensor,
    plan: &FaultPlan,
    subsystem: u64,
) -> Result<m2td_tensor::SparseTensor> {
    let mut indices = Vec::with_capacity(x.nnz());
    let mut values = Vec::with_capacity(x.nnz());
    for (l, v) in x.iter_linear() {
        indices.push(l);
        values.push(if plan.cell_goes_nan(subsystem, l) {
            f64::NAN
        } else {
            v
        });
    }
    Ok(m2td_tensor::SparseTensor::from_sorted_linear(
        x.dims(),
        indices,
        values,
    )?)
}

/// A fixed `(system, space, grid, rank)` experiment context with the
/// ground-truth tensor materialized once.
pub struct Workbench<'a> {
    system: &'a dyn EnsembleSystem,
    cfg: WorkbenchConfig,
    space: ParameterSpace,
    grid: TimeGrid,
    ground_truth: DenseTensor,
    full_dims: Vec<usize>,
    defaults: Vec<usize>,
}

impl<'a> Workbench<'a> {
    /// Builds the workbench, simulating the complete ground-truth tensor.
    pub fn new(system: &'a dyn EnsembleSystem, cfg: WorkbenchConfig) -> Result<Self> {
        let space = system.default_space(cfg.resolution);
        let grid = TimeGrid::new(cfg.t_end, cfg.time_steps, cfg.substeps);
        let builder = EnsembleBuilder::new(system, &space, &grid);
        let ground_truth = builder.ground_truth()?;
        let full_dims = builder.tensor_dims();
        let mut defaults = space.default_indices();
        defaults.push(cfg.time_steps / 2);
        Ok(Self {
            system,
            cfg,
            space,
            grid,
            ground_truth,
            full_dims,
            defaults,
        })
    }

    /// The ground-truth tensor `Y`.
    pub fn ground_truth(&self) -> &DenseTensor {
        &self.ground_truth
    }

    /// An ensemble builder honoring the configured measurement noise.
    fn builder(&self) -> EnsembleBuilder<'_, dyn EnsembleSystem + 'a> {
        let b = EnsembleBuilder::new(self.system, &self.space, &self.grid);
        if self.cfg.noise_sigma > 0.0 {
            b.with_noise(self.cfg.noise_sigma, self.cfg.seed.wrapping_add(77))
        } else {
            b
        }
    }

    /// Returns the same workbench with a different target rank — the
    /// (expensive) ground truth is reused. Used by rank sweeps (Table II).
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.cfg.rank = rank;
        self
    }

    /// The workbench configuration.
    pub fn config(&self) -> &WorkbenchConfig {
        &self.cfg
    }

    /// Public access to the PF-partitioned sub-tensors (used by the
    /// D-M2TD harness, which drives `m2td_dist::d_m2td` directly).
    /// Returns `(x1, x2, partition)`.
    pub fn subsystems(
        &self,
        pivot_mode: usize,
        p_frac: f64,
        e_frac: f64,
        cell_frac: f64,
    ) -> Result<(
        m2td_tensor::SparseTensor,
        m2td_tensor::SparseTensor,
        PfPartition,
    )> {
        let partition = PfPartition::balanced(self.n_modes(), pivot_mode)?;
        let build = self.build_subsystems(&partition, p_frac, e_frac, cell_frac, None)?;
        Ok((build.x1, build.x2, partition))
    }

    /// Mode extents of the full ensemble tensor (parameters + time).
    pub fn full_dims(&self) -> &[usize] {
        &self.full_dims
    }

    /// Number of tensor modes (parameters + time).
    pub fn n_modes(&self) -> usize {
        self.full_dims.len()
    }

    /// Human-readable mode names (parameter names + `"t"`).
    pub fn mode_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .system
            .param_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        names.push("t".to_string());
        names
    }

    /// The per-mode ranks in natural order: `min(rank, I_n)`.
    pub fn natural_ranks(&self) -> Vec<usize> {
        self.full_dims
            .iter()
            .map(|&d| self.cfg.rank.min(d))
            .collect()
    }

    /// The cell budget an M2TD run with these densities consumes
    /// (`2 · P · E`), used to give conventional baselines budget parity.
    pub fn m2td_budget(&self, pivot_mode: usize, p_frac: f64, e_frac: f64) -> Result<usize> {
        let partition = PfPartition::balanced(self.n_modes(), pivot_mode)?;
        let (p, e1) = partition.cell_counts(&self.full_dims, SubSystem::First, p_frac, e_frac)?;
        let (_, e2) = partition.cell_counts(&self.full_dims, SubSystem::Second, p_frac, e_frac)?;
        Ok(p * e1 + p * e2)
    }

    /// The paper's accuracy metric for a reconstruction in natural mode
    /// order.
    pub fn accuracy(&self, recon: &DenseTensor) -> Result<f64> {
        let diff = recon.sub(&self.ground_truth)?;
        let denom = self.ground_truth.frobenius_norm();
        if denom == 0.0 {
            return Ok(if diff.frobenius_norm() == 0.0 {
                1.0
            } else {
                0.0
            });
        }
        Ok(1.0 - diff.frobenius_norm() / denom)
    }

    /// Accuracy of a Tucker decomposition whose modes are in the *join
    /// order* of `partition` (as produced by `m2td_decompose` or
    /// `m2td_dist::d_m2td`).
    pub fn accuracy_join_order(
        &self,
        tucker: &m2td_tensor::TuckerDecomp,
        partition: &PfPartition,
    ) -> Result<f64> {
        let recon_join = tucker.reconstruct()?;
        let recon = recon_join.permute_modes(&partition.perm_join_to_natural())?;
        self.accuracy(&recon)
    }

    /// Runs a conventional baseline: sample `budget` cells with `scheme`,
    /// HOSVD the sparse ensemble, reconstruct, score.
    pub fn run_conventional(
        &self,
        scheme: &dyn SamplingScheme,
        budget: usize,
    ) -> Result<RunReport> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let plan = scheme.plan(&self.full_dims, budget, &mut rng)?;
        let builder = self.builder();

        let t_sim = Instant::now();
        let sim_span = m2td_obs::span!("pipeline.simulate");
        let (sparse, distinct_sims) = builder.build_sparse(&plan)?;
        drop(sim_span);
        let simulate_secs = t_sim.elapsed().as_secs_f64();

        let t_dec = Instant::now();
        let tucker = hosvd_sparse(&sparse, &self.natural_ranks())?;
        let recon = tucker.reconstruct()?;
        let decompose_secs = t_dec.elapsed().as_secs_f64();
        m2td_obs::gauge_set("threads.effective", m2td_par::max_threads() as f64);

        Ok(RunReport {
            method: scheme.name().to_string(),
            accuracy: self.accuracy(&recon)?,
            decompose_secs,
            simulate_secs,
            cells: plan.len(),
            distinct_sims,
            density: sparse.density(),
            timings: None,
            stitch: None,
            degraded: None,
            metrics: m2td_obs::snapshot_if_installed(),
            guard: None,
        })
    }

    /// Drops every plan cell belonging to a simulation run the fault plan
    /// kills on all allowed attempts. Returns the surviving plan plus
    /// `(failed_runs, retries_spent)`.
    fn filter_failed_runs(
        &self,
        plan: Vec<Vec<usize>>,
        subsystem: u64,
        faults: &SimFaultPolicy,
    ) -> (Vec<Vec<usize>>, usize, usize) {
        let n_params = self.full_dims.len() - 1;
        let param_shape = Shape::new(&self.full_dims[..n_params]);
        let mut fate: HashMap<u64, bool> = HashMap::new();
        let mut failed = 0usize;
        let mut retries = 0usize;
        let kept = plan
            .into_iter()
            .filter(|cell| {
                // One fault draw per distinct simulation run (= parameter
                // config), with the subsystem folded in so the two
                // sub-ensembles draw independently.
                let key = (param_shape.linear_index(&cell[..n_params]) as u64)
                    .wrapping_mul(2)
                    .wrapping_add(subsystem);
                *fate.entry(key).or_insert_with(|| {
                    let (ok, attempts) = faults.plan.sim_survives(key, faults.max_attempts);
                    retries += attempts.saturating_sub(1) as usize;
                    if !ok {
                        failed += 1;
                    }
                    ok
                })
            })
            .collect();
        (kept, failed, retries)
    }

    /// Builds the two PF-partitioned sub-tensors for the given pivot mode
    /// and densities, optionally dropping runs killed by a
    /// [`SimFaultPolicy`].
    fn build_subsystems(
        &self,
        partition: &PfPartition,
        p_frac: f64,
        e_frac: f64,
        cell_frac: f64,
        faults: Option<&SimFaultPolicy>,
    ) -> Result<SubsystemBuild> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let builder = self.builder();
        let mut plan1 = partition.plan_subsystem(
            &self.full_dims,
            &self.defaults,
            SubSystem::First,
            p_frac,
            e_frac,
            &mut rng,
        )?;
        let mut plan2 = partition.plan_subsystem(
            &self.full_dims,
            &self.defaults,
            SubSystem::Second,
            p_frac,
            e_frac,
            &mut rng,
        )?;
        // Budget reduction à la Table V: keep a random fraction of the
        // planned cells, introducing genuine missingness inside the
        // selected sub-lattices (this is what zero-join compensates for).
        if !(cell_frac > 0.0 && cell_frac <= 1.0) {
            return Err(CoreError::InvalidInput {
                reason: format!("cell fraction {cell_frac} must lie in (0, 1]"),
            });
        }
        if cell_frac < 1.0 {
            use rand::seq::SliceRandom;
            for plan in [&mut plan1, &mut plan2] {
                plan.shuffle(&mut rng);
                let keep = ((plan.len() as f64 * cell_frac).ceil() as usize).max(1);
                plan.truncate(keep);
            }
        }
        let planned_cells = plan1.len() + plan2.len();

        // Degraded mode: failed simulation runs drop out of the plans and
        // become missing cells, as long as the coverage floor holds.
        let degraded = match faults {
            None => None,
            Some(policy) => {
                let (kept1, failed1, retries1) = self.filter_failed_runs(plan1, 1, policy);
                let (kept2, failed2, retries2) = self.filter_failed_runs(plan2, 2, policy);
                plan1 = kept1;
                plan2 = kept2;
                let survived = plan1.len() + plan2.len();
                let coverage = survived as f64 / planned_cells.max(1) as f64;
                if coverage < policy.min_coverage || plan1.is_empty() || plan2.is_empty() {
                    return Err(CoreError::InsufficientCoverage {
                        coverage,
                        required: policy.min_coverage,
                    });
                }
                let stats = DegradedStats {
                    failed_sims: failed1 + failed2,
                    sim_retries: retries1 + retries2,
                    planned_cells,
                    coverage,
                };
                m2td_obs::counter_add("sim.failed_runs", stats.failed_sims as u64);
                m2td_obs::counter_add("sim.retries", stats.sim_retries as u64);
                m2td_obs::gauge_set("sim.coverage", stats.coverage);
                Some(stats)
            }
        };
        let cells = plan1.len() + plan2.len();

        let t_sim = Instant::now();
        let sim_span = m2td_obs::span!("pipeline.simulate");
        // The two sub-ensembles are simulated independently, so run them
        // concurrently on the `m2td-par` pool (each build caches its own
        // trajectories; the per-plan outputs are unchanged).
        let (r1, r2) = m2td_par::join(
            || builder.build_sparse(&plan1),
            || builder.build_sparse(&plan2),
        );
        let (full1, sims1) = r1?;
        let (full2, sims2) = r2?;
        drop(sim_span);
        let simulate_secs = t_sim.elapsed().as_secs_f64();

        let mut x1 = partition.extract_sub_tensor(&full1, &self.defaults, SubSystem::First)?;
        let mut x2 = partition.extract_sub_tensor(&full2, &self.defaults, SubSystem::Second)?;
        // Chaos stream: poison a deterministic fraction of the simulated
        // cells with NaN, modeling corrupted observations entering the
        // sub-ensembles. The streams are keyed per sub-system so the two
        // tensors draw independently.
        if let Some(policy) = faults {
            if policy.plan.nan_cell_rate > 0.0 {
                x1 = poison_cells(&x1, &policy.plan, 1)?;
                x2 = poison_cells(&x2, &policy.plan, 2)?;
            }
        }
        Ok(SubsystemBuild {
            x1,
            x2,
            cells,
            distinct_sims: sims1 + sims2,
            simulate_secs,
            degraded,
        })
    }

    /// Runs the full M2TD pipeline for one pivot mode and strategy.
    pub fn run_m2td(
        &self,
        pivot_mode: usize,
        opts: M2tdOptions,
        p_frac: f64,
        e_frac: f64,
    ) -> Result<RunReport> {
        self.run_m2td_cells(pivot_mode, opts, p_frac, e_frac, 1.0)
    }

    /// As [`Self::run_m2td`], with an additional *cell fraction*: only a
    /// random `cell_frac` of the planned sub-ensemble cells are simulated
    /// (the paper's Table V budget reduction). With `cell_frac < 1`
    /// zero-join stitching meaningfully outperforms plain join.
    pub fn run_m2td_cells(
        &self,
        pivot_mode: usize,
        opts: M2tdOptions,
        p_frac: f64,
        e_frac: f64,
        cell_frac: f64,
    ) -> Result<RunReport> {
        self.run_m2td_inner(pivot_mode, opts, p_frac, e_frac, cell_frac, None)
    }

    /// As [`Self::run_m2td_cells`], but the simulation stage runs under a
    /// [`SimFaultPolicy`]: runs killed on every allowed attempt become
    /// missing cells, the decomposition proceeds as long as the policy's
    /// coverage floor holds (zero-join stitching absorbs the extra
    /// missingness), and the report's [`DegradedStats`] record what was
    /// lost. Below the floor the run aborts with
    /// [`CoreError::InsufficientCoverage`].
    pub fn run_m2td_degraded(
        &self,
        pivot_mode: usize,
        opts: M2tdOptions,
        p_frac: f64,
        e_frac: f64,
        cell_frac: f64,
        faults: &SimFaultPolicy,
    ) -> Result<RunReport> {
        self.run_m2td_inner(pivot_mode, opts, p_frac, e_frac, cell_frac, Some(faults))
    }

    fn run_m2td_inner(
        &self,
        pivot_mode: usize,
        opts: M2tdOptions,
        p_frac: f64,
        e_frac: f64,
        cell_frac: f64,
        faults: Option<&SimFaultPolicy>,
    ) -> Result<RunReport> {
        let partition = PfPartition::balanced(self.n_modes(), pivot_mode)?;
        let build = self.build_subsystems(&partition, p_frac, e_frac, cell_frac, faults)?;

        // Ranks in join order.
        let join_modes = partition.join_modes();
        let join_ranks: Vec<usize> = join_modes
            .iter()
            .map(|&m| self.cfg.rank.min(self.full_dims[m]))
            .collect();

        let t_dec = Instant::now();
        let decomp = m2td_decompose(&build.x1, &build.x2, partition.k(), &join_ranks, opts)?;
        let recon_join = decomp.tucker.reconstruct()?;
        let recon = recon_join.permute_modes(&partition.perm_join_to_natural())?;
        let decompose_secs = t_dec.elapsed().as_secs_f64();
        m2td_obs::gauge_set("threads.effective", m2td_par::max_threads() as f64);

        Ok(RunReport {
            method: opts.combine.name().to_string(),
            accuracy: self.accuracy(&recon)?,
            decompose_secs,
            simulate_secs: build.simulate_secs,
            cells: build.cells,
            distinct_sims: build.distinct_sims,
            density: decomp.stitch_report.join_density,
            timings: Some(decomp.timings),
            stitch: Some(decomp.stitch_report),
            degraded: build.degraded,
            metrics: m2td_obs::snapshot_if_installed(),
            guard: decomp.guard,
        })
    }

    /// Runs the **multi-way** M2TD pipeline (extension beyond the paper):
    /// the non-pivot modes are split into `num_groups` equal free groups,
    /// one sub-ensemble per group is sampled and all of them are stitched
    /// and decomposed with `m2td_decompose_multi`.
    ///
    /// `num_groups` must divide the number of non-pivot modes.
    pub fn run_m2td_multi(
        &self,
        pivot_mode: usize,
        num_groups: usize,
        opts: M2tdOptions,
        p_frac: f64,
        e_frac: f64,
    ) -> Result<RunReport> {
        use m2td_sampling::MultiPartition;
        let n = self.n_modes();
        if pivot_mode >= n {
            return Err(CoreError::InvalidInput {
                reason: format!("pivot mode {pivot_mode} out of range for {n} modes"),
            });
        }
        let rest: Vec<usize> = (0..n).filter(|&m| m != pivot_mode).collect();
        if num_groups == 0 || !rest.len().is_multiple_of(num_groups) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "{num_groups} groups do not evenly divide {} free modes",
                    rest.len()
                ),
            });
        }
        let group_size = rest.len() / num_groups;
        let groups: Vec<Vec<usize>> = rest.chunks(group_size).map(|c| c.to_vec()).collect();
        let partition = MultiPartition::new(vec![pivot_mode], groups, n)?;

        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(2));
        let builder = self.builder();
        let mut subs = Vec::with_capacity(num_groups);
        let mut cells = 0usize;
        let mut distinct_sims = 0usize;
        let t_sim = Instant::now();
        for s in 0..num_groups {
            let plan = partition.plan_subsystem(
                &self.full_dims,
                &self.defaults,
                s,
                p_frac,
                e_frac,
                &mut rng,
            )?;
            cells += plan.len();
            let (full, sims) = builder.build_sparse(&plan)?;
            distinct_sims += sims;
            subs.push(partition.extract_sub_tensor(&full, &self.defaults, s)?);
        }
        let simulate_secs = t_sim.elapsed().as_secs_f64();

        let join_ranks: Vec<usize> = partition
            .join_modes()
            .iter()
            .map(|&m| self.cfg.rank.min(self.full_dims[m]))
            .collect();
        let sub_refs: Vec<&m2td_tensor::SparseTensor> = subs.iter().collect();
        let t_dec = Instant::now();
        let decomp =
            crate::multiway::m2td_decompose_multi(&sub_refs, partition.k(), &join_ranks, opts)?;
        let recon_join = decomp.tucker.reconstruct()?;
        let recon = recon_join.permute_modes(&partition.perm_join_to_natural())?;
        let decompose_secs = t_dec.elapsed().as_secs_f64();

        Ok(RunReport {
            method: format!("{}x{}", opts.combine.name(), num_groups),
            accuracy: self.accuracy(&recon)?,
            decompose_secs,
            simulate_secs,
            cells,
            distinct_sims,
            density: decomp.stitch_report.join_density,
            timings: Some(decomp.timings),
            stitch: Some(decomp.stitch_report.clone()),
            degraded: None,
            metrics: m2td_obs::snapshot_if_installed(),
            guard: decomp.guard,
        })
    }

    /// Ablation: identical sampling and stitching to [`Self::run_m2td`],
    /// but the join tensor is decomposed *directly* with sparse HOSVD —
    /// the expensive route M2TD is designed to avoid.
    pub fn run_joined_hosvd(
        &self,
        pivot_mode: usize,
        stitch_kind: m2td_stitch::StitchKind,
        p_frac: f64,
        e_frac: f64,
    ) -> Result<RunReport> {
        let partition = PfPartition::balanced(self.n_modes(), pivot_mode)?;
        let SubsystemBuild {
            x1,
            x2,
            cells,
            distinct_sims,
            simulate_secs,
            ..
        } = self.build_subsystems(&partition, p_frac, e_frac, 1.0, None)?;

        let t_dec = Instant::now();
        let (join, report) = m2td_stitch::stitch(&x1, &x2, partition.k(), stitch_kind)?;
        let join_ranks: Vec<usize> = join.dims().iter().map(|&d| self.cfg.rank.min(d)).collect();
        let tucker = hosvd_sparse(&join, &join_ranks)?;
        let recon_join = tucker.reconstruct()?;
        let recon = recon_join.permute_modes(&partition.perm_join_to_natural())?;
        let decompose_secs = t_dec.elapsed().as_secs_f64();

        Ok(RunReport {
            method: "JOIN+HOSVD".to_string(),
            accuracy: self.accuracy(&recon)?,
            decompose_secs,
            simulate_secs,
            cells,
            distinct_sims,
            density: join.density(),
            timings: None,
            stitch: Some(report),
            degraded: None,
            metrics: m2td_obs::snapshot_if_installed(),
            guard: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::PivotCombine;
    use m2td_sampling::{GridSampling, RandomSampling, SliceSampling};
    use m2td_sim::systems::Sir;
    use m2td_stitch::StitchKind;

    fn bench() -> Workbench<'static> {
        static SYS: Sir = Sir;
        let cfg = WorkbenchConfig {
            resolution: 4,
            time_steps: 4,
            t_end: 40.0,
            substeps: 8,
            rank: 2,
            seed: 3,
            noise_sigma: 0.0,
        };
        Workbench::new(&SYS, cfg).unwrap()
    }

    #[test]
    fn workbench_materializes_ground_truth() {
        let w = bench();
        assert_eq!(w.full_dims(), &[4, 4, 4, 4, 4]);
        assert!(w.ground_truth().frobenius_norm() > 0.0);
        assert_eq!(w.natural_ranks(), vec![2, 2, 2, 2, 2]);
        assert_eq!(w.mode_names().last().unwrap(), "t");
    }

    #[test]
    fn m2td_budget_matches_2pe() {
        let w = bench();
        // Pivot = time (mode 4): P = 4, E = 16 per sub-system.
        assert_eq!(w.m2td_budget(4, 1.0, 1.0).unwrap(), 2 * 4 * 16);
        assert_eq!(w.m2td_budget(4, 0.5, 1.0).unwrap(), 2 * 2 * 16);
    }

    #[test]
    fn m2td_run_produces_sane_report() {
        let w = bench();
        let report = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        assert_eq!(report.method, "M2TD-SELECT");
        assert!(report.accuracy.is_finite());
        assert!(report.accuracy > 0.0, "accuracy {}", report.accuracy);
        assert_eq!(report.cells, 128);
        assert!(report.timings.is_some());
        assert!(report.stitch.is_some());
    }

    #[test]
    fn conventional_runs_produce_reports() {
        let w = bench();
        let budget = w.m2td_budget(4, 1.0, 1.0).unwrap();
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
        ] {
            let r = w.run_conventional(scheme, budget).unwrap();
            assert!(r.accuracy.is_finite());
            assert!(r.cells <= budget);
            assert!(r.distinct_sims > 0);
        }
    }

    #[test]
    fn m2td_beats_conventional_at_equal_budget() {
        // The paper's headline result (Table II shape), at miniature scale.
        let w = bench();
        let budget = w.m2td_budget(4, 1.0, 1.0).unwrap();
        let m2td = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        let random = w.run_conventional(&RandomSampling, budget).unwrap();
        assert!(
            m2td.accuracy > random.accuracy,
            "M2TD {} should beat random {}",
            m2td.accuracy,
            random.accuracy
        );
    }

    #[test]
    fn all_combine_variants_run() {
        let w = bench();
        for kind in PivotCombine::all() {
            let opts = M2tdOptions {
                combine: kind,
                ..M2tdOptions::default()
            };
            let r = w.run_m2td(4, opts, 1.0, 1.0).unwrap();
            assert_eq!(r.method, kind.name());
        }
    }

    #[test]
    fn joined_hosvd_ablation_runs() {
        let w = bench();
        let r = w.run_joined_hosvd(4, StitchKind::Join, 1.0, 1.0).unwrap();
        assert_eq!(r.method, "JOIN+HOSVD");
        assert!(r.accuracy.is_finite());
    }

    #[test]
    fn physical_parameter_pivot_works() {
        let w = bench();
        // Pivot = first parameter instead of time.
        let r = w.run_m2td(0, M2tdOptions::default(), 1.0, 1.0).unwrap();
        assert!(r.accuracy.is_finite());
    }

    #[test]
    fn multiway_pipeline_matches_two_way_at_two_groups() {
        let w = bench();
        let two_way = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        let multi = w
            .run_m2td_multi(4, 2, M2tdOptions::default(), 1.0, 1.0)
            .unwrap();
        assert_eq!(two_way.cells, multi.cells);
        assert!(
            (two_way.accuracy - multi.accuracy).abs() < 1e-9,
            "two-way {} vs multi {}",
            two_way.accuracy,
            multi.accuracy
        );
    }

    #[test]
    fn finest_partition_runs_and_uses_fewer_cells() {
        let w = bench();
        let coarse = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        let fine = w
            .run_m2td_multi(4, 4, M2tdOptions::default(), 1.0, 1.0)
            .unwrap();
        assert!(fine.accuracy.is_finite() && fine.accuracy > 0.0);
        // Four single-mode groups need 4*P*R cells vs 2*P*R^2.
        assert!(fine.cells < coarse.cells);
        assert_eq!(fine.method, "M2TD-SELECT x4".replace(' ', ""));
    }

    #[test]
    fn multiway_validates_group_count() {
        let w = bench();
        assert!(w
            .run_m2td_multi(4, 3, M2tdOptions::default(), 1.0, 1.0)
            .is_err());
        assert!(w
            .run_m2td_multi(4, 0, M2tdOptions::default(), 1.0, 1.0)
            .is_err());
        assert!(w
            .run_m2td_multi(9, 2, M2tdOptions::default(), 1.0, 1.0)
            .is_err());
    }

    #[test]
    fn reduced_densities_shrink_budget() {
        let w = bench();
        let full = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        let half = w.run_m2td(4, M2tdOptions::default(), 1.0, 0.5).unwrap();
        assert!(half.cells < full.cells);
    }

    #[test]
    fn fault_free_policy_matches_plain_run() {
        let w = bench();
        let plain = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        let policy = SimFaultPolicy::new(9, 0.0);
        let under = w
            .run_m2td_degraded(4, M2tdOptions::default(), 1.0, 1.0, 1.0, &policy)
            .unwrap();
        let stats = under.degraded.unwrap();
        assert_eq!(stats.failed_sims, 0);
        assert!(!stats.is_degraded());
        assert_eq!(stats.coverage, 1.0);
        assert_eq!(under.cells, plain.cells);
        assert_eq!(under.accuracy, plain.accuracy);
    }

    #[test]
    fn degraded_run_loses_cells_but_still_decomposes() {
        let w = bench();
        // High per-attempt failure with no retries guarantees lost runs.
        let policy = SimFaultPolicy::new(5, 0.4)
            .with_max_attempts(1)
            .with_min_coverage(0.2);
        let opts = M2tdOptions {
            stitch: m2td_stitch::StitchKind::ZeroJoin,
            ..M2tdOptions::default()
        };
        let r = w
            .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &policy)
            .unwrap();
        let stats = r.degraded.unwrap();
        assert!(stats.is_degraded(), "no run failed at 40% failure rate");
        assert!(stats.coverage < 1.0);
        assert!(r.cells < stats.planned_cells);
        assert!(r.accuracy.is_finite());
        // Degraded accuracy should still beat doing nothing.
        assert!(r.accuracy > 0.0, "degraded accuracy {}", r.accuracy);
    }

    #[test]
    fn coverage_floor_violation_is_a_clean_error() {
        let w = bench();
        // Near-certain failure with a high floor must abort, not panic.
        let policy = SimFaultPolicy::new(7, 0.97)
            .with_max_attempts(1)
            .with_min_coverage(0.9);
        let err = w
            .run_m2td_degraded(4, M2tdOptions::default(), 1.0, 1.0, 1.0, &policy)
            .unwrap_err();
        match err {
            CoreError::InsufficientCoverage { coverage, required } => {
                assert!(coverage < required);
                assert_eq!(required, 0.9);
            }
            other => panic!("expected InsufficientCoverage, got {other}"),
        }
    }

    #[test]
    fn retries_rescue_runs_a_single_attempt_loses() {
        let w = bench();
        let one_shot = SimFaultPolicy::new(11, 0.35)
            .with_max_attempts(1)
            .with_min_coverage(0.1);
        let retried = SimFaultPolicy::new(11, 0.35)
            .with_max_attempts(4)
            .with_min_coverage(0.1);
        let opts = M2tdOptions {
            stitch: m2td_stitch::StitchKind::ZeroJoin,
            ..M2tdOptions::default()
        };
        let r1 = w
            .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &one_shot)
            .unwrap();
        let r2 = w
            .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &retried)
            .unwrap();
        let (s1, s2) = (r1.degraded.unwrap(), r2.degraded.unwrap());
        assert!(
            s2.failed_sims < s1.failed_sims,
            "retries should rescue runs: {} vs {}",
            s2.failed_sims,
            s1.failed_sims
        );
        assert!(s2.sim_retries > 0, "rescues must cost retries");
        assert!(s2.coverage > s1.coverage);
    }
}
