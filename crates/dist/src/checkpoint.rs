//! Phase-boundary checkpoints for D-M2TD.
//!
//! A D-M2TD run is three MapReduce phases; under failure a naive engine
//! recomputes everything from scratch. The [`CheckpointStore`] persists
//! the output of each completed phase boundary via `m2td-json`:
//!
//! * **phase 1** — the combined factor matrices, in join order;
//! * **phase 2** — the stitched join tensor.
//!
//! A later run over the *same inputs* (guarded by a [`Fingerprint`] of the
//! sub-tensor contents, pivot count, ranks and options) loads these
//! artifacts and skips straight to the first incomplete phase, so a
//! phase-3 failure resumes from persisted phase-1 factors and phase-2 join
//! cells instead of recomputing them. Stale or corrupt checkpoint files
//! are treated as absent, never trusted.

use m2td_core::M2tdOptions;
use m2td_json::{FromJson, Json, ToJson};
use m2td_linalg::Matrix;
use m2td_tensor::SparseTensor;
use std::path::{Path, PathBuf};

/// Identity of one D-M2TD invocation: checkpoints are only resumable when
/// every field matches, including a content hash of both entry streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    dims1: Vec<usize>,
    dims2: Vec<usize>,
    k: usize,
    ranks: Vec<usize>,
    options: String,
    content_hash: u64,
}

/// Folds one `(linear index, value)` entry into a running splitmix hash.
fn fold_entry(acc: u64, lin: u64, value: f64) -> u64 {
    let mut z = acc
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lin)
        .wrapping_add(value.to_bits().rotate_left(17));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl Fingerprint {
    /// Fingerprints a D-M2TD invocation.
    pub fn new(
        x1: &SparseTensor,
        x2: &SparseTensor,
        k: usize,
        ranks: &[usize],
        opts: &M2tdOptions,
    ) -> Self {
        let mut h = 0x4d32_5444u64; // "M2TD"
        for (lin, v) in x1.iter_linear() {
            h = fold_entry(h, lin, v);
        }
        h = h.rotate_left(32);
        for (lin, v) in x2.iter_linear() {
            h = fold_entry(h, lin, v);
        }
        Self {
            dims1: x1.dims().to_vec(),
            dims2: x2.dims().to_vec(),
            k,
            ranks: ranks.to_vec(),
            options: format!("{opts:?}"),
            content_hash: h,
        }
    }
}

impl ToJson for Fingerprint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dims1".to_string(), self.dims1.to_json()),
            ("dims2".to_string(), self.dims2.to_json()),
            ("k".to_string(), self.k.to_json()),
            ("ranks".to_string(), self.ranks.to_json()),
            ("options".to_string(), self.options.to_json()),
            // Bit-cast through i64: the hash uses all 64 bits, and
            // `Json::Int` is an i64.
            (
                "content_hash".to_string(),
                Json::Int(self.content_hash as i64),
            ),
        ])
    }
}

impl FromJson for Fingerprint {
    fn from_json(json: &Json) -> Result<Self, m2td_json::JsonError> {
        let content_hash = match json.require("content_hash")? {
            Json::Int(i) => *i as u64,
            other => {
                return Err(m2td_json::JsonError::Type {
                    expected: "integer content hash",
                    found: other.type_name(),
                })
            }
        };
        Ok(Self {
            dims1: FromJson::from_json(json.require("dims1")?)?,
            dims2: FromJson::from_json(json.require("dims2")?)?,
            k: json.require("k")?.as_usize()?,
            ranks: FromJson::from_json(json.require("ranks")?)?,
            options: json.require("options")?.as_str()?.to_string(),
            content_hash,
        })
    }
}

/// A directory of phase-boundary checkpoint files for D-M2TD runs.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// Errors raised while *writing* checkpoints. (Unreadable checkpoints are
/// not errors — loads degrade to "absent" and the phase recomputes.)
pub type CheckpointError = String;

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("create checkpoint dir {}: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The directory checkpoints are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn phase_path(&self, phase: u8) -> PathBuf {
        self.dir.join(format!("phase{phase}.json"))
    }

    fn save(&self, phase: u8, fp: &Fingerprint, payload: Json) -> Result<(), CheckpointError> {
        let doc = Json::Obj(vec![
            ("fingerprint".to_string(), fp.to_json()),
            ("payload".to_string(), payload),
        ]);
        let path = self.phase_path(phase);
        std::fs::write(&path, doc.to_compact())
            .map_err(|e| format!("write checkpoint {}: {e}", path.display()))
    }

    /// Loads a phase payload iff the file exists, parses, and its
    /// fingerprint matches `fp`. Any failure yields `None`.
    fn load(&self, phase: u8, fp: &Fingerprint) -> Option<Json> {
        let text = std::fs::read_to_string(self.phase_path(phase)).ok()?;
        let doc = Json::parse(&text).ok()?;
        let stored = Fingerprint::from_json(doc.get("fingerprint")?).ok()?;
        if &stored != fp {
            return None;
        }
        doc.get("payload").cloned()
    }

    /// Persists the phase-1 output: combined factors in join order.
    pub fn save_phase1(&self, fp: &Fingerprint, factors: &[Matrix]) -> Result<(), CheckpointError> {
        self.save(1, fp, factors.to_vec().to_json())
    }

    /// Loads phase-1 factors for a matching run, if present and intact.
    pub fn load_phase1(&self, fp: &Fingerprint) -> Option<Vec<Matrix>> {
        let payload = self.load(1, fp)?;
        Vec::<Matrix>::from_json(&payload).ok()
    }

    /// Persists the phase-2 output: the stitched join tensor.
    pub fn save_phase2(
        &self,
        fp: &Fingerprint,
        join: &SparseTensor,
    ) -> Result<(), CheckpointError> {
        self.save(2, fp, join.to_json())
    }

    /// Loads the phase-2 join tensor for a matching run, if present and
    /// intact.
    pub fn load_phase2(&self, fp: &Fingerprint) -> Option<SparseTensor> {
        let payload = self.load(2, fp)?;
        SparseTensor::from_json(&payload).ok()
    }

    /// Deletes any checkpoint files in the store.
    pub fn clear(&self) -> Result<(), CheckpointError> {
        for phase in [1u8, 2] {
            let path = self.phase_path(phase);
            if path.exists() {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("remove checkpoint {}: {e}", path.display()))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join("m2td_checkpoint_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn tensors() -> (SparseTensor, SparseTensor) {
        let x1 =
            SparseTensor::from_entries(&[3, 2], &[(vec![0, 0], 1.0), (vec![2, 1], -0.5)]).unwrap();
        let x2 = SparseTensor::from_entries(&[3, 2], &[(vec![1, 1], 2.0)]).unwrap();
        (x1, x2)
    }

    #[test]
    fn phase1_round_trips_under_matching_fingerprint() {
        let store = tmp_store("p1_roundtrip");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        let factors = vec![Matrix::identity(3), Matrix::identity(2)];
        store.save_phase1(&fp, &factors).unwrap();
        let back = store.load_phase1(&fp).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].as_slice(), factors[0].as_slice());
    }

    #[test]
    fn phase2_round_trips_and_clear_removes() {
        let store = tmp_store("p2_roundtrip");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        store.save_phase2(&fp, &x1).unwrap();
        assert_eq!(store.load_phase2(&fp).unwrap(), x1);
        store.clear().unwrap();
        assert!(store.load_phase2(&fp).is_none());
    }

    #[test]
    fn mismatched_fingerprint_is_treated_as_absent() {
        let store = tmp_store("fp_mismatch");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        store.save_phase2(&fp, &x1).unwrap();
        // Different ranks → different fingerprint → no resume.
        let other = Fingerprint::new(&x1, &x2, 1, &[1, 1, 1], &M2tdOptions::default());
        assert!(store.load_phase2(&other).is_none());
        // Different input values → different fingerprint.
        let x1b = SparseTensor::from_entries(&[3, 2], &[(vec![0, 0], 9.0)]).unwrap();
        let changed = Fingerprint::new(&x1b, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        assert!(store.load_phase2(&changed).is_none());
    }

    #[test]
    fn corrupt_checkpoint_files_degrade_to_absent() {
        let store = tmp_store("corrupt");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        std::fs::write(store.dir().join("phase1.json"), "{not json").unwrap();
        std::fs::write(store.dir().join("phase2.json"), "{\"payload\": 3}").unwrap();
        assert!(store.load_phase1(&fp).is_none());
        assert!(store.load_phase2(&fp).is_none());
    }

    #[test]
    fn fingerprint_with_high_bit_hash_round_trips() {
        // Content hashes use all 64 bits; serialization must not lose the
        // high bit through `Json::Int`'s i64.
        let fp = Fingerprint {
            dims1: vec![2],
            dims2: vec![2],
            k: 1,
            ranks: vec![1, 1, 1],
            options: "opts".to_string(),
            content_hash: u64::MAX - 3,
        };
        let back = Fingerprint::from_json(&fp.to_json()).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn missing_store_files_are_absent_not_errors() {
        let store = tmp_store("empty");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        assert!(store.load_phase1(&fp).is_none());
        assert!(store.load_phase2(&fp).is_none());
        store.clear().unwrap();
    }
}
