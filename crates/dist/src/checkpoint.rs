//! Phase-boundary checkpoints for D-M2TD.
//!
//! A D-M2TD run is three MapReduce phases; under failure a naive engine
//! recomputes everything from scratch. The [`CheckpointStore`] persists
//! the output of each completed phase boundary via `m2td-json`:
//!
//! * **phase 1** — the combined factor matrices, in join order;
//! * **phase 2** — the stitched join tensor.
//!
//! A later run over the *same inputs* (guarded by a [`Fingerprint`] of the
//! sub-tensor contents, pivot count, ranks and options) loads these
//! artifacts and skips straight to the first incomplete phase, so a
//! phase-3 failure resumes from persisted phase-1 factors and phase-2 join
//! cells instead of recomputing them. Stale or corrupt checkpoint files
//! are treated as absent, never trusted.
//!
//! ## Record integrity (format v2)
//!
//! Every record is a JSON object `{version, fingerprint, checksum,
//! payload}` where `checksum` is FNV-1a-64 over the compact serialization
//! of `fingerprint` followed by that of `payload` — covering the
//! fingerprint too, so a bit-flip *anywhere* meaningful is detected.
//! Records are written atomically (uniquely named `*.tmp.<pid>.<n>` +
//! rename, so two stores publishing into the same directory never tear
//! each other's writes) and orphaned temp files from a crash mid-write are
//! deleted when the store opens. A record that fails to parse, carries the
//! wrong format version, or fails its checksum is **quarantined** (renamed
//! to `phase<N>.quarantined.<seq>.json`, bumping the
//! `guard.ckpt_quarantined` counter) and reported absent, forcing the
//! phase to recompute — garbage is never deserialized into the pipeline.
//! Quarantined records are kept for post-mortem but not forever: a
//! retention sweep on open (and after each new quarantine) keeps the
//! newest [`QUARANTINE_KEEP`] per phase and counts removals in
//! `guard.ckpt_quarantine_swept`.
//!
//! The record helpers ([`seal_record`]/[`open_record`]/[`write_atomic`])
//! live in `m2td_guard::integrity` and are shared workspace-wide: the job
//! manifest, the dead-letter queue, and the serve layer's snapshot store
//! and write-ahead log all persist in the same format-v2 envelope, and
//! the keep-newest-N quarantine retention sweep is the same
//! [`m2td_guard::integrity::sweep_retention`] helper everywhere.

use m2td_core::M2tdOptions;
use m2td_fault::CorruptionKind;
use m2td_json::{FromJson, Json, ToJson};
use m2td_linalg::Matrix;
use m2td_tensor::SparseTensor;
use std::path::{Path, PathBuf};

// Crate-wide aliases: manifest.rs, dlq.rs and transport.rs seal their
// records through the same shared helpers.
pub(crate) use m2td_guard::integrity::{
    fnv1a64, open_record, record_checksum, seal_record, write_atomic, FORMAT_VERSION,
};

/// Quarantined records kept per phase by the retention sweep.
const QUARANTINE_KEEP: usize = 4;

/// Identity of one D-M2TD invocation: checkpoints are only resumable when
/// every field matches, including a content hash of both entry streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    dims1: Vec<usize>,
    dims2: Vec<usize>,
    k: usize,
    ranks: Vec<usize>,
    options: String,
    content_hash: u64,
}

/// Folds one `(linear index, value)` entry into a running splitmix hash.
fn fold_entry(acc: u64, lin: u64, value: f64) -> u64 {
    let mut z = acc
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lin)
        .wrapping_add(value.to_bits().rotate_left(17));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl Fingerprint {
    /// Fingerprints a D-M2TD invocation.
    pub fn new(
        x1: &SparseTensor,
        x2: &SparseTensor,
        k: usize,
        ranks: &[usize],
        opts: &M2tdOptions,
    ) -> Self {
        let mut h = 0x4d32_5444u64; // "M2TD"
        for (lin, v) in x1.iter_linear() {
            h = fold_entry(h, lin, v);
        }
        h = h.rotate_left(32);
        for (lin, v) in x2.iter_linear() {
            h = fold_entry(h, lin, v);
        }
        Self {
            dims1: x1.dims().to_vec(),
            dims2: x2.dims().to_vec(),
            k,
            ranks: ranks.to_vec(),
            options: format!("{opts:?}"),
            content_hash: h,
        }
    }
}

impl ToJson for Fingerprint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dims1".to_string(), self.dims1.to_json()),
            ("dims2".to_string(), self.dims2.to_json()),
            ("k".to_string(), self.k.to_json()),
            ("ranks".to_string(), self.ranks.to_json()),
            ("options".to_string(), self.options.to_json()),
            // Bit-cast through i64: the hash uses all 64 bits, and
            // `Json::Int` is an i64.
            (
                "content_hash".to_string(),
                Json::Int(self.content_hash as i64),
            ),
        ])
    }
}

impl FromJson for Fingerprint {
    fn from_json(json: &Json) -> Result<Self, m2td_json::JsonError> {
        let content_hash = match json.require("content_hash")? {
            Json::Int(i) => *i as u64,
            other => {
                return Err(m2td_json::JsonError::Type {
                    expected: "integer content hash",
                    found: other.type_name(),
                })
            }
        };
        Ok(Self {
            dims1: FromJson::from_json(json.require("dims1")?)?,
            dims2: FromJson::from_json(json.require("dims2")?)?,
            k: json.require("k")?.as_usize()?,
            ranks: FromJson::from_json(json.require("ranks")?)?,
            options: json.require("options")?.as_str()?.to_string(),
            content_hash,
        })
    }
}

/// A directory of phase-boundary checkpoint files for D-M2TD runs.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// Errors raised while *writing* checkpoints. (Unreadable checkpoints are
/// not errors — loads degrade to "absent" and the phase recomputes.)
pub type CheckpointError = String;

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory. Orphaned `*.tmp`
    /// files left by a crash mid-write are deleted: they were never
    /// renamed into place, so they are by definition incomplete.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("create checkpoint dir {}: {e}", dir.display()))?;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                // Matches both the legacy `*.json.tmp` form and the unique
                // `*.json.tmp.<pid>.<n>` form.
                if name.to_string_lossy().contains(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let store = Self { dir };
        store.sweep_quarantine();
        Ok(store)
    }

    /// The directory checkpoints are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn phase_path(&self, phase: u8) -> PathBuf {
        self.dir.join(format!("phase{phase}.json"))
    }

    /// The quarantined records of `phase`, as `(sequence, path)` pairs in
    /// arbitrary order. Higher sequence = newer quarantine.
    fn quarantined_files(&self, phase: u8) -> Vec<(u64, PathBuf)> {
        m2td_guard::integrity::sequenced_files(&self.dir, &format!("phase{phase}.quarantined."))
    }

    /// Retention sweep: keeps the newest [`QUARANTINE_KEEP`] quarantined
    /// records per phase, deleting older ones and counting each removal in
    /// `guard.ckpt_quarantine_swept`.
    fn sweep_quarantine(&self) {
        for phase in [1u8, 2] {
            m2td_guard::integrity::sweep_retention(
                &self.dir,
                &format!("phase{phase}.quarantined."),
                QUARANTINE_KEEP,
                "guard.ckpt_quarantine_swept",
            );
        }
    }

    fn save(&self, phase: u8, fp: &Fingerprint, payload: Json) -> Result<(), CheckpointError> {
        let doc = seal_record(&fp.to_json(), payload);
        write_atomic(&self.phase_path(phase), &doc.to_compact())
    }

    /// Moves a failed-verification record aside and reports it absent. The
    /// quarantined file is kept for post-mortem, not reloaded. Counters
    /// bump only when the rename wins: in the restarted-job race two
    /// stores can detect the same damaged record, but exactly one owns the
    /// quarantine — the loser sees the source already gone and stays
    /// silent instead of double-counting.
    fn quarantine(&self, phase: u8, reason: &str) -> Option<Json> {
        let next = self
            .quarantined_files(phase)
            .iter()
            .map(|(seq, _)| seq + 1)
            .max()
            .unwrap_or(1);
        let dst = self
            .dir
            .join(format!("phase{phase}.quarantined.{next}.json"));
        if std::fs::rename(self.phase_path(phase), &dst).is_ok() {
            m2td_obs::counter_add("guard.ckpt_quarantined", 1);
            m2td_obs::counter_add(format!("guard.ckpt_quarantined.{reason}"), 1);
            self.sweep_quarantine();
        }
        None
    }

    /// Loads a phase payload iff the file exists, parses, carries the
    /// current format version, passes its checksum, and its fingerprint
    /// matches `fp`. Integrity failures quarantine the record (it can
    /// never load, and keeping it would mask the corruption); a clean
    /// fingerprint mismatch is merely a checkpoint from a different run
    /// and is left in place.
    fn load(&self, phase: u8, fp: &Fingerprint) -> Option<Json> {
        let text = match std::fs::read_to_string(self.phase_path(phase)) {
            Ok(t) => t,
            Err(_) => return None,
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(_) => return self.quarantine(phase, "unparseable"),
        };
        match doc.get("version") {
            Some(Json::Int(v)) if *v == FORMAT_VERSION => {}
            _ => return self.quarantine(phase, "version"),
        }
        let stored_checksum = match doc.get("checksum") {
            Some(Json::Int(c)) => *c as u64,
            _ => return self.quarantine(phase, "checksum"),
        };
        let (fingerprint, payload) = match (doc.get("fingerprint"), doc.get("payload")) {
            (Some(f), Some(p)) => (f, p),
            _ => return self.quarantine(phase, "structure"),
        };
        if record_checksum(fingerprint, payload) != stored_checksum {
            return self.quarantine(phase, "checksum");
        }
        let stored = match Fingerprint::from_json(fingerprint) {
            Ok(s) => s,
            Err(_) => return self.quarantine(phase, "fingerprint"),
        };
        if &stored != fp {
            return None;
        }
        Some(payload.clone())
    }

    /// Applies a [`CorruptionKind`] mutation to the stored record of
    /// `phase`, simulating disk/format corruption for the chaos harness.
    /// Returns whether a record existed to corrupt. The mutation bypasses
    /// the atomic write path on purpose — it models damage *after* a
    /// successful publish.
    pub fn corrupt(&self, phase: u8, kind: CorruptionKind) -> Result<bool, CheckpointError> {
        let path = self.phase_path(phase);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Ok(false),
        };
        let mutated = match kind {
            CorruptionKind::BitFlip => {
                let mut b = bytes;
                let mid = b.len() / 2;
                b[mid] ^= 0x01;
                b
            }
            CorruptionKind::Truncate => bytes[..bytes.len() / 2].to_vec(),
            CorruptionKind::StaleVersion => {
                // Claim an older format version; the checksum (which does
                // not cover the version field) stays valid, so detection
                // must come from the version check alone.
                match Json::parse(&String::from_utf8_lossy(&bytes)) {
                    Ok(Json::Obj(fields)) => {
                        let rewritten: Vec<(String, Json)> = fields
                            .into_iter()
                            .map(|(k, v)| {
                                if k == "version" {
                                    (k, Json::Int(FORMAT_VERSION - 1))
                                } else {
                                    (k, v)
                                }
                            })
                            .collect();
                        Json::Obj(rewritten).to_compact().into_bytes()
                    }
                    // Unparseable record: degrade to a torn write.
                    _ => bytes[..bytes.len() / 2].to_vec(),
                }
            }
        };
        std::fs::write(&path, mutated)
            .map_err(|e| format!("corrupt checkpoint {}: {e}", path.display()))?;
        Ok(true)
    }

    /// Persists the phase-1 output: combined factors in join order.
    pub fn save_phase1(&self, fp: &Fingerprint, factors: &[Matrix]) -> Result<(), CheckpointError> {
        self.save(1, fp, factors.to_vec().to_json())
    }

    /// Loads phase-1 factors for a matching run, if present and intact.
    pub fn load_phase1(&self, fp: &Fingerprint) -> Option<Vec<Matrix>> {
        let payload = self.load(1, fp)?;
        Vec::<Matrix>::from_json(&payload).ok()
    }

    /// Persists the phase-2 output: the stitched join tensor.
    pub fn save_phase2(
        &self,
        fp: &Fingerprint,
        join: &SparseTensor,
    ) -> Result<(), CheckpointError> {
        self.save(2, fp, join.to_json())
    }

    /// Loads the phase-2 join tensor for a matching run, if present and
    /// intact.
    pub fn load_phase2(&self, fp: &Fingerprint) -> Option<SparseTensor> {
        let payload = self.load(2, fp)?;
        SparseTensor::from_json(&payload).ok()
    }

    /// Deletes any checkpoint files in the store, including quarantined
    /// records.
    pub fn clear(&self) -> Result<(), CheckpointError> {
        for phase in [1u8, 2] {
            let mut paths = vec![self.phase_path(phase)];
            paths.extend(self.quarantined_files(phase).into_iter().map(|(_, p)| p));
            for path in paths {
                if path.exists() {
                    std::fs::remove_file(&path)
                        .map_err(|e| format!("remove checkpoint {}: {e}", path.display()))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that install the global obs subscriber, so
    /// concurrent tests cannot capture each other's counter bumps.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    fn tmp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join("m2td_checkpoint_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn tensors() -> (SparseTensor, SparseTensor) {
        let x1 =
            SparseTensor::from_entries(&[3, 2], &[(vec![0, 0], 1.0), (vec![2, 1], -0.5)]).unwrap();
        let x2 = SparseTensor::from_entries(&[3, 2], &[(vec![1, 1], 2.0)]).unwrap();
        (x1, x2)
    }

    #[test]
    fn phase1_round_trips_under_matching_fingerprint() {
        let store = tmp_store("p1_roundtrip");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        let factors = vec![Matrix::identity(3), Matrix::identity(2)];
        store.save_phase1(&fp, &factors).unwrap();
        let back = store.load_phase1(&fp).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].as_slice(), factors[0].as_slice());
    }

    #[test]
    fn phase2_round_trips_and_clear_removes() {
        let store = tmp_store("p2_roundtrip");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        store.save_phase2(&fp, &x1).unwrap();
        assert_eq!(store.load_phase2(&fp).unwrap(), x1);
        store.clear().unwrap();
        assert!(store.load_phase2(&fp).is_none());
    }

    #[test]
    fn mismatched_fingerprint_is_treated_as_absent() {
        let store = tmp_store("fp_mismatch");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        store.save_phase2(&fp, &x1).unwrap();
        // Different ranks → different fingerprint → no resume.
        let other = Fingerprint::new(&x1, &x2, 1, &[1, 1, 1], &M2tdOptions::default());
        assert!(store.load_phase2(&other).is_none());
        // Different input values → different fingerprint.
        let x1b = SparseTensor::from_entries(&[3, 2], &[(vec![0, 0], 9.0)]).unwrap();
        let changed = Fingerprint::new(&x1b, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        assert!(store.load_phase2(&changed).is_none());
    }

    #[test]
    fn corrupt_checkpoint_files_degrade_to_absent() {
        let store = tmp_store("corrupt");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        std::fs::write(store.dir().join("phase1.json"), "{not json").unwrap();
        std::fs::write(store.dir().join("phase2.json"), "{\"payload\": 3}").unwrap();
        assert!(store.load_phase1(&fp).is_none());
        assert!(store.load_phase2(&fp).is_none());
    }

    #[test]
    fn orphaned_temp_files_are_cleaned_on_open() {
        let store = tmp_store("tmp_cleanup");
        let orphan = store.dir().join("phase1.json.tmp");
        std::fs::write(&orphan, "half-written garbage").unwrap();
        // Re-opening the same directory removes the orphan.
        let reopened = CheckpointStore::new(store.dir()).unwrap();
        assert!(!orphan.exists());
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        assert!(reopened.load_phase1(&fp).is_none());
    }

    #[test]
    fn every_corruption_kind_is_detected_and_quarantined() {
        for (name, kind) in [
            ("bitflip", CorruptionKind::BitFlip),
            ("truncate", CorruptionKind::Truncate),
            ("stale", CorruptionKind::StaleVersion),
        ] {
            let store = tmp_store(&format!("corrupt_{name}"));
            let (x1, x2) = tensors();
            let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
            store.save_phase2(&fp, &x1).unwrap();
            assert!(store.corrupt(2, kind).unwrap(), "no record to corrupt");
            assert!(
                store.load_phase2(&fp).is_none(),
                "{kind} survived verification"
            );
            // The damaged record was moved aside, not left in place.
            assert!(store.dir().join("phase2.quarantined.1.json").exists());
            assert!(!store.dir().join("phase2.json").exists());
            // A fresh save then loads cleanly again.
            store.save_phase2(&fp, &x1).unwrap();
            assert_eq!(store.load_phase2(&fp).unwrap(), x1);
        }
    }

    #[test]
    fn corrupting_an_absent_record_reports_false() {
        let store = tmp_store("corrupt_absent");
        assert!(!store.corrupt(1, CorruptionKind::BitFlip).unwrap());
    }

    #[test]
    fn quarantine_bumps_the_guard_counter() {
        let _obs = OBS_LOCK.lock().unwrap();
        let store = tmp_store("quarantine_counter");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        store.save_phase1(&fp, &[Matrix::identity(3)]).unwrap();
        store.corrupt(1, CorruptionKind::Truncate).unwrap();
        m2td_obs::install();
        let before = m2td_obs::snapshot()
            .counter("guard.ckpt_quarantined")
            .unwrap_or(0);
        assert!(store.load_phase1(&fp).is_none());
        let after = m2td_obs::snapshot()
            .counter("guard.ckpt_quarantined")
            .unwrap_or(0);
        m2td_obs::uninstall();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn stale_version_keeps_valid_checksum_but_still_fails() {
        // The stale-version mutation leaves fingerprint and payload (and
        // thus the checksum) untouched: only the version check can catch
        // it. This pins that the check exists.
        let store = tmp_store("stale_checksum");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        store.save_phase2(&fp, &x1).unwrap();
        store.corrupt(2, CorruptionKind::StaleVersion).unwrap();
        let text = std::fs::read_to_string(store.dir().join("phase2.json")).unwrap();
        let doc = Json::parse(&text).unwrap();
        let stored = match doc.get("checksum") {
            Some(Json::Int(c)) => *c as u64,
            other => panic!("missing checksum: {other:?}"),
        };
        let recomputed =
            record_checksum(doc.get("fingerprint").unwrap(), doc.get("payload").unwrap());
        assert_eq!(
            stored, recomputed,
            "stale-version must not break the checksum"
        );
        assert!(store.load_phase2(&fp).is_none());
    }

    #[test]
    fn fingerprint_with_high_bit_hash_round_trips() {
        // Content hashes use all 64 bits; serialization must not lose the
        // high bit through `Json::Int`'s i64.
        let fp = Fingerprint {
            dims1: vec![2],
            dims2: vec![2],
            k: 1,
            ranks: vec![1, 1, 1],
            options: "opts".to_string(),
            content_hash: u64::MAX - 3,
        };
        let back = Fingerprint::from_json(&fp.to_json()).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn retention_sweep_keeps_the_newest_quarantines() {
        let _obs = OBS_LOCK.lock().unwrap();
        let store = tmp_store("retention");
        for seq in 1..=7u64 {
            std::fs::write(
                store.dir().join(format!("phase1.quarantined.{seq}.json")),
                "damaged",
            )
            .unwrap();
        }
        m2td_obs::install();
        let before = m2td_obs::snapshot()
            .counter("guard.ckpt_quarantine_swept")
            .unwrap_or(0);
        let reopened = CheckpointStore::new(store.dir()).unwrap();
        let after = m2td_obs::snapshot()
            .counter("guard.ckpt_quarantine_swept")
            .unwrap_or(0);
        m2td_obs::uninstall();
        // 7 quarantines, keep 4: the three oldest are swept and counted.
        assert_eq!(after, before + 3);
        let mut kept: Vec<u64> = reopened
            .quarantined_files(1)
            .into_iter()
            .map(|(seq, _)| seq)
            .collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![4, 5, 6, 7]);
    }

    #[test]
    fn concurrent_stores_do_not_clobber_or_double_quarantine() {
        let store_a = tmp_store("concurrent");
        let store_b = CheckpointStore::new(store_a.dir()).unwrap();
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        let factors = vec![Matrix::identity(3)];
        // Interleaved atomic saves from two stores (the restarted-job
        // race) must never tear: every write publishes through its own
        // uniquely named temp file.
        let (fp_ref, factors_ref) = (&fp, &factors);
        std::thread::scope(|s| {
            for store in [&store_a, &store_b] {
                s.spawn(move || {
                    for _ in 0..32 {
                        store.save_phase1(fp_ref, factors_ref).unwrap();
                    }
                });
            }
        });
        assert_eq!(store_a.load_phase1(&fp).unwrap().len(), 1);
        assert_eq!(store_b.load_phase1(&fp).unwrap().len(), 1);
        // A damaged record seen by both stores at once is quarantined
        // exactly once — the losing rename must not mint a second copy.
        store_a.corrupt(1, CorruptionKind::Truncate).unwrap();
        std::thread::scope(|s| {
            for store in [&store_a, &store_b] {
                s.spawn(move || assert!(store.load_phase1(fp_ref).is_none()));
            }
        });
        assert!(!store_a.dir().join("phase1.json").exists());
        assert_eq!(
            store_a.quarantined_files(1).len(),
            1,
            "double-quarantined: {:?}",
            store_a.quarantined_files(1)
        );
    }

    #[test]
    fn missing_store_files_are_absent_not_errors() {
        let store = tmp_store("empty");
        let (x1, x2) = tensors();
        let fp = Fingerprint::new(&x1, &x2, 1, &[2, 2, 2], &M2tdOptions::default());
        assert!(store.load_phase1(&fp).is_none());
        assert!(store.load_phase2(&fp).is_none());
        store.clear().unwrap();
    }
}
