//! Analytic cluster cost model.
//!
//! The paper's Table III measures D-M2TD's three phases on a Hadoop
//! cluster while varying the server count. Re-running that measurement
//! needs a cluster; what the table *demonstrates* is a shape — compute
//! parallelizes, communication does not:
//!
//! `t_phase(W) = serial_compute / W + bytes_shuffled · net_cost · f(W) + overhead`
//!
//! with `f(W) = (W − 1)/W` (the fraction of shuffled data that crosses
//! server boundaries under uniform hash partitioning). The model yields
//! phase-3 dominance and diminishing returns in `W` for exactly the reason
//! the paper gives: "allocating more servers indeed helps bring the cost
//! of this phase down; however, there are diminishing returns due to data
//! communication overheads."

use crate::mapreduce::ShuffleStats;

/// Cost of one phase under the model, in (virtual) seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// Parallelizable compute share.
    pub compute: f64,
    /// Non-parallelizable communication share.
    pub communication: f64,
    /// Fixed coordination overhead.
    pub overhead: f64,
}

impl PhaseCost {
    /// Total phase time.
    pub fn total(&self) -> f64 {
        self.compute + self.communication + self.overhead
    }
}

/// An analytic model of a `W`-server cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Number of servers `W`.
    pub servers: usize,
    /// Seconds of network cost per shuffled key/value pair.
    pub net_secs_per_pair: f64,
    /// Fixed per-job coordination overhead in seconds (job setup,
    /// scheduling, stragglers).
    pub overhead_secs: f64,
}

impl ClusterModel {
    /// A model with defaults calibrated to make a Hadoop-like deployment:
    /// visible communication costs and per-job overheads.
    pub fn new(servers: usize) -> Self {
        Self {
            servers: servers.max(1),
            net_secs_per_pair: 5e-8,
            overhead_secs: 0.02,
        }
    }

    /// Cost of a phase given its measured serial compute time and the
    /// shuffle statistics of the corresponding MapReduce job.
    pub fn phase_cost(&self, serial_compute_secs: f64, stats: &ShuffleStats) -> PhaseCost {
        let w = self.servers as f64;
        let cross_fraction = (w - 1.0) / w;
        PhaseCost {
            compute: serial_compute_secs / w,
            communication: stats.shuffled_pairs as f64 * self.net_secs_per_pair * cross_fraction,
            overhead: self.overhead_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: usize) -> ShuffleStats {
        ShuffleStats {
            map_records: pairs,
            shuffled_pairs: pairs,
            reduce_groups: pairs / 10 + 1,
        }
    }

    #[test]
    fn single_server_has_no_communication() {
        let m = ClusterModel::new(1);
        let c = m.phase_cost(10.0, &stats(1_000_000));
        assert_eq!(c.communication, 0.0);
        assert_eq!(c.compute, 10.0);
    }

    #[test]
    fn compute_scales_inversely_with_servers() {
        let c4 = ClusterModel::new(4).phase_cost(8.0, &stats(0));
        let c8 = ClusterModel::new(8).phase_cost(8.0, &stats(0));
        assert_eq!(c4.compute, 2.0);
        assert_eq!(c8.compute, 1.0);
    }

    #[test]
    fn diminishing_returns_with_communication() {
        // With real shuffle volume, doubling servers less than halves the
        // total time, and the marginal gain shrinks.
        let s = stats(10_000_000);
        let t = |w| ClusterModel::new(w).phase_cost(100.0, &s).total();
        let (t2, t4, t8, t16) = (t(2), t(4), t(8), t(16));
        assert!(t4 < t2 && t8 < t4 && t16 < t8, "more servers must help");
        let gain1 = t2 - t4;
        let gain2 = t4 - t8;
        let gain3 = t8 - t16;
        assert!(
            gain1 > gain2 && gain2 > gain3,
            "gains must diminish: {gain1} {gain2} {gain3}"
        );
    }

    #[test]
    fn communication_grows_with_shuffle_volume() {
        let m = ClusterModel::new(8);
        let small = m.phase_cost(1.0, &stats(1_000));
        let big = m.phase_cost(1.0, &stats(1_000_000));
        assert!(big.communication > small.communication);
        assert!(big.total() > small.total());
    }

    #[test]
    fn zero_servers_clamped() {
        assert_eq!(ClusterModel::new(0).servers, 1);
    }
}
