//! Analytic cluster cost model.
//!
//! The paper's Table III measures D-M2TD's three phases on a Hadoop
//! cluster while varying the server count. Re-running that measurement
//! needs a cluster; what the table *demonstrates* is a shape — compute
//! parallelizes, communication does not:
//!
//! `t_phase(W) = serial_compute / W + bytes_shuffled · net_cost · f(W) + overhead`
//!
//! with `f(W) = (W − 1)/W` (the fraction of shuffled data that crosses
//! server boundaries under uniform hash partitioning). The model yields
//! phase-3 dominance and diminishing returns in `W` for exactly the reason
//! the paper gives: "allocating more servers indeed helps bring the cost
//! of this phase down; however, there are diminishing returns due to data
//! communication overheads."
//!
//! [`FailureModel`] extends the phase cost to expected time under task
//! failure: retries inflate compute by `1/(1 − f)` and stragglers add a
//! speculation-capped delay term, preserving the diminishing-returns
//! shape in `W`.

use crate::mapreduce::ShuffleStats;

/// Expected-time-under-failure extension of [`ClusterModel`].
///
/// With per-attempt failure probability `f`, a task's expected attempt
/// count is the geometric series `1/(1 − f)`, inflating the parallelizable
/// compute share. Stragglers (probability `s` per task) each cost at most
/// the speculation threshold `d`, because a backup copy is launched then;
/// tasks run in `W`-wide waves, so the straggler term decays as more
/// servers absorb the delayed tasks. Both terms leave the communication
/// term untouched, so the diminishing-returns shape in `W` is preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Per-attempt task failure probability, in `[0, 1)`.
    pub failure_rate: f64,
    /// Per-task straggle probability, in `[0, 1]`.
    pub straggle_rate: f64,
    /// Seconds after which a speculative backup copy is launched — the
    /// cap on what any one straggler can cost.
    pub speculate_after_secs: f64,
}

impl FailureModel {
    /// A failure-free model: no retry inflation, no straggler delay.
    pub fn none() -> Self {
        Self {
            failure_rate: 0.0,
            straggle_rate: 0.0,
            speculate_after_secs: 5.0,
        }
    }

    /// Expected attempts per task: the geometric series `1/(1 − f)`.
    pub fn retry_inflation(&self) -> f64 {
        let f = self.failure_rate.clamp(0.0, 0.999_999);
        1.0 / (1.0 - f)
    }
}

/// Cost of one phase under the model, in (virtual) seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// Parallelizable compute share.
    pub compute: f64,
    /// Non-parallelizable communication share.
    pub communication: f64,
    /// Fixed coordination overhead.
    pub overhead: f64,
}

impl PhaseCost {
    /// Total phase time.
    pub fn total(&self) -> f64 {
        self.compute + self.communication + self.overhead
    }
}

/// An analytic model of a `W`-server cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Number of servers `W`.
    pub servers: usize,
    /// Seconds of network cost per shuffled key/value pair.
    pub net_secs_per_pair: f64,
    /// Fixed per-job coordination overhead in seconds (job setup,
    /// scheduling, stragglers).
    pub overhead_secs: f64,
}

impl ClusterModel {
    /// A model with defaults calibrated to make a Hadoop-like deployment:
    /// visible communication costs and per-job overheads.
    pub fn new(servers: usize) -> Self {
        Self {
            servers: servers.max(1),
            net_secs_per_pair: 5e-8,
            overhead_secs: 0.02,
        }
    }

    /// Cost of a phase given its measured serial compute time and the
    /// shuffle statistics of the corresponding MapReduce job.
    pub fn phase_cost(&self, serial_compute_secs: f64, stats: &ShuffleStats) -> PhaseCost {
        let w = self.servers as f64;
        let cross_fraction = (w - 1.0) / w;
        PhaseCost {
            compute: serial_compute_secs / w,
            communication: stats.shuffled_pairs as f64 * self.net_secs_per_pair * cross_fraction,
            overhead: self.overhead_secs,
        }
    }

    /// Expected cost of a phase under a [`FailureModel`].
    ///
    /// The compute share is inflated by the expected attempt count
    /// `1/(1 − f)` (failed attempts redo their work), and the overhead
    /// share gains a straggler term: with `g` reduce groups run in
    /// `W`-wide waves, the expected number of straggling *waves* is
    /// `s · ⌈g / W⌉`, each delaying the phase by at most the speculation
    /// threshold. Expected time is monotone increasing in `failure_rate`
    /// and still shows diminishing returns in `W`:
    ///
    /// ```
    /// use m2td_dist::{ClusterModel, FailureModel, ShuffleStats};
    /// let stats = ShuffleStats { map_records: 1_000, shuffled_pairs: 100_000, reduce_groups: 64 };
    /// let fm = |f| FailureModel { failure_rate: f, straggle_rate: 0.05, speculate_after_secs: 5.0 };
    /// let t = |w: usize, f: f64| ClusterModel::new(w).phase_cost_under_failure(40.0, &stats, &fm(f)).total();
    /// // Monotone in the failure rate at fixed W…
    /// assert!(t(8, 0.0) < t(8, 0.1) && t(8, 0.1) < t(8, 0.3) && t(8, 0.3) < t(8, 0.6));
    /// // …and diminishing returns in W at a fixed failure rate.
    /// let (t2, t4, t8, t16) = (t(2, 0.3), t(4, 0.3), t(8, 0.3), t(16, 0.3));
    /// assert!(t2 > t4 && t4 > t8 && t8 > t16);
    /// assert!(t2 - t4 > t4 - t8 && t4 - t8 > t8 - t16);
    /// ```
    pub fn phase_cost_under_failure(
        &self,
        serial_compute_secs: f64,
        stats: &ShuffleStats,
        failures: &FailureModel,
    ) -> PhaseCost {
        let base = self.phase_cost(serial_compute_secs, stats);
        let w = self.servers as f64;
        let waves = (stats.reduce_groups.max(1) as f64 / w).ceil();
        let straggle_secs =
            failures.straggle_rate.clamp(0.0, 1.0) * waves * failures.speculate_after_secs.max(0.0);
        PhaseCost {
            compute: base.compute * failures.retry_inflation(),
            communication: base.communication,
            overhead: base.overhead + straggle_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: usize) -> ShuffleStats {
        ShuffleStats {
            map_records: pairs,
            shuffled_pairs: pairs,
            reduce_groups: pairs / 10 + 1,
        }
    }

    #[test]
    fn single_server_has_no_communication() {
        let m = ClusterModel::new(1);
        let c = m.phase_cost(10.0, &stats(1_000_000));
        assert_eq!(c.communication, 0.0);
        assert_eq!(c.compute, 10.0);
    }

    #[test]
    fn compute_scales_inversely_with_servers() {
        let c4 = ClusterModel::new(4).phase_cost(8.0, &stats(0));
        let c8 = ClusterModel::new(8).phase_cost(8.0, &stats(0));
        assert_eq!(c4.compute, 2.0);
        assert_eq!(c8.compute, 1.0);
    }

    #[test]
    fn diminishing_returns_with_communication() {
        // With real shuffle volume, doubling servers less than halves the
        // total time, and the marginal gain shrinks.
        let s = stats(10_000_000);
        let t = |w| ClusterModel::new(w).phase_cost(100.0, &s).total();
        let (t2, t4, t8, t16) = (t(2), t(4), t(8), t(16));
        assert!(t4 < t2 && t8 < t4 && t16 < t8, "more servers must help");
        let gain1 = t2 - t4;
        let gain2 = t4 - t8;
        let gain3 = t8 - t16;
        assert!(
            gain1 > gain2 && gain2 > gain3,
            "gains must diminish: {gain1} {gain2} {gain3}"
        );
    }

    #[test]
    fn communication_grows_with_shuffle_volume() {
        let m = ClusterModel::new(8);
        let small = m.phase_cost(1.0, &stats(1_000));
        let big = m.phase_cost(1.0, &stats(1_000_000));
        assert!(big.communication > small.communication);
        assert!(big.total() > small.total());
    }

    #[test]
    fn zero_servers_clamped() {
        assert_eq!(ClusterModel::new(0).servers, 1);
    }

    #[test]
    fn expected_time_monotone_in_failure_rate() {
        let s = stats(500_000);
        let m = ClusterModel::new(6);
        let t = |f: f64| {
            let fm = FailureModel {
                failure_rate: f,
                straggle_rate: 0.1,
                speculate_after_secs: 5.0,
            };
            m.phase_cost_under_failure(60.0, &s, &fm).total()
        };
        let mut prev = t(0.0);
        for f in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8] {
            let cur = t(f);
            assert!(cur > prev, "t({f}) = {cur} not > {prev}");
            prev = cur;
        }
    }

    #[test]
    fn failure_free_model_matches_base_cost() {
        let s = stats(100_000);
        let m = ClusterModel::new(4);
        let base = m.phase_cost(10.0, &s);
        let under = m.phase_cost_under_failure(10.0, &s, &FailureModel::none());
        assert_eq!(base.compute, under.compute);
        assert_eq!(base.communication, under.communication);
        assert_eq!(base.overhead, under.overhead);
    }

    #[test]
    fn diminishing_returns_survive_failures() {
        let s = stats(10_000_000);
        let fm = FailureModel {
            failure_rate: 0.3,
            straggle_rate: 0.1,
            speculate_after_secs: 5.0,
        };
        let t = |w| {
            ClusterModel::new(w)
                .phase_cost_under_failure(100.0, &s, &fm)
                .total()
        };
        let (t2, t4, t8, t16) = (t(2), t(4), t(8), t(16));
        assert!(t4 < t2 && t8 < t4 && t16 < t8, "more servers must help");
        assert!(
            t2 - t4 > t4 - t8 && t4 - t8 > t8 - t16,
            "gains must diminish under failures too"
        );
    }

    #[test]
    fn retry_inflation_is_geometric() {
        let fm = |f| FailureModel {
            failure_rate: f,
            straggle_rate: 0.0,
            speculate_after_secs: 5.0,
        };
        assert_eq!(fm(0.0).retry_inflation(), 1.0);
        assert!((fm(0.5).retry_inflation() - 2.0).abs() < 1e-12);
        assert!((fm(0.75).retry_inflation() - 4.0).abs() < 1e-12);
    }
}
