//! Dead-letter queue: where exhausted tasks go instead of killing the job.
//!
//! When a reduce task is killed on every attempt its [`RetryPolicy`]
//! budget allows, a recovery-enabled run no longer aborts: the task's
//! envelope (identity + serialized input payload), its attempt history,
//! and the terminal error are **parked** as a [`DlqEntry`] in `dlq.json`
//! next to the checkpoint store, and the phase completes degraded where
//! coverage allows. Operators inspect the queue with `m2td-cli dlq list`,
//! mark entries for another try with `dlq requeue`, and discard them with
//! `dlq purge`. A requeued entry makes the next run over the same inputs
//! re-execute that task; success **drains** the entry and un-marks the
//! task in the job manifest.
//!
//! The file is a format-v2 record (version, checksum, atomic unique-temp
//! write) like checkpoints and the manifest, with a null fingerprint —
//! the queue spans runs, its entries carry their own identity. A corrupt
//! queue file is treated as empty rather than trusted.
//!
//! [`RetryPolicy`]: m2td_fault::RetryPolicy

use crate::checkpoint::{open_record, seal_record, write_atomic};
use crate::transport::TaskEnvelope;
use m2td_json::{FromJson, Json, JsonError, ToJson};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One parked task.
#[derive(Debug, Clone, PartialEq)]
pub struct DlqEntry {
    /// Job the task belonged to.
    pub job: u64,
    /// D-M2TD phase (1–3).
    pub phase: u8,
    /// Task kind as a display string (`map` / `reduce` / `simulation`).
    pub kind: String,
    /// Task index within the job.
    pub task: u64,
    /// Attempts consumed before parking.
    pub attempts: u32,
    /// One line per attempt: what the fault plan and transport did.
    pub log: Vec<String>,
    /// The terminal error, rendered.
    pub error: String,
    /// The task's input payload, as serialized for transport — enough to
    /// identify and (in a rerun over the same inputs) re-execute it.
    pub payload: String,
    /// Set by `dlq requeue`: the next run re-executes this task instead of
    /// skipping it as dead.
    pub requeued: bool,
}

impl DlqEntry {
    /// Builds an entry from a parked task's envelope and history.
    pub(crate) fn from_envelope(
        envelope: &TaskEnvelope,
        attempts: u32,
        log: Vec<String>,
        error: String,
    ) -> Self {
        Self {
            job: envelope.job,
            phase: envelope.phase,
            kind: envelope.kind.to_string(),
            task: envelope.task,
            attempts,
            log,
            error,
            payload: envelope.payload.clone(),
            requeued: false,
        }
    }
}

impl ToJson for DlqEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("job".to_string(), self.job.to_json()),
            ("phase".to_string(), self.phase.to_json()),
            ("kind".to_string(), self.kind.to_json()),
            ("task".to_string(), self.task.to_json()),
            ("attempts".to_string(), self.attempts.to_json()),
            ("log".to_string(), self.log.to_json()),
            ("error".to_string(), self.error.to_json()),
            ("payload".to_string(), self.payload.to_json()),
            ("requeued".to_string(), self.requeued.to_json()),
        ])
    }
}

impl FromJson for DlqEntry {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            job: u64::from_json(json.require("job")?)?,
            phase: u8::from_json(json.require("phase")?)?,
            kind: String::from_json(json.require("kind")?)?,
            task: u64::from_json(json.require("task")?)?,
            attempts: u32::from_json(json.require("attempts")?)?,
            log: Vec::<String>::from_json(json.require("log")?)?,
            error: String::from_json(json.require("error")?)?,
            payload: String::from_json(json.require("payload")?)?,
            requeued: bool::from_json(json.require("requeued")?)?,
        })
    }
}

/// The persistent dead-letter queue of one checkpoint directory.
#[derive(Debug)]
pub struct DlqStore {
    path: PathBuf,
    entries: Mutex<Vec<DlqEntry>>,
}

impl DlqStore {
    /// File name of the queue inside a checkpoint directory.
    pub const FILE_NAME: &'static str = "dlq.json";

    /// Opens the queue stored in `dir` (typically the checkpoint
    /// directory). A missing or damaged file yields an empty queue.
    pub fn open(dir: impl AsRef<Path>) -> Self {
        let path = dir.as_ref().join(Self::FILE_NAME);
        let entries = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| {
                let (_, payload) = open_record(&doc)?;
                Vec::<DlqEntry>::from_json(payload).ok()
            })
            .unwrap_or_default();
        let store = Self {
            path,
            entries: Mutex::new(entries),
        };
        store.publish_depth();
        store
    }

    fn publish_depth(&self) {
        m2td_obs::gauge_set("dlq.depth", self.depth() as f64);
    }

    fn persist(&self) -> Result<(), String> {
        let entries = self.entries.lock().unwrap().clone();
        let doc = seal_record(&Json::Null, entries.to_json());
        write_atomic(&self.path, &doc.to_compact())
    }

    /// Number of parked entries.
    pub fn depth(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Snapshot of every entry, in parking order.
    pub fn entries(&self) -> Vec<DlqEntry> {
        self.entries.lock().unwrap().clone()
    }

    /// Whether the entry for `(job, phase, task)` is marked for requeue.
    pub fn is_requeued(&self, job: u64, phase: u8, task: u64) -> bool {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .any(|e| e.job == job && e.phase == phase && e.task == task && e.requeued)
    }

    /// Parks (or re-parks) an entry. A fresh death for a task already in
    /// the queue replaces its entry and clears any requeue mark — the
    /// retry was spent. Persists the queue and bumps `dlq.parked`.
    pub fn park(&self, entry: DlqEntry) -> Result<(), String> {
        {
            let mut entries = self.entries.lock().unwrap();
            if let Some(slot) = entries
                .iter_mut()
                .find(|e| e.job == entry.job && e.phase == entry.phase && e.task == entry.task)
            {
                *slot = entry;
            } else {
                entries.push(entry);
            }
        }
        m2td_obs::counter_add("dlq.parked", 1);
        self.publish_depth();
        self.persist()
    }

    /// Removes the entry for a task that has since completed (a drained
    /// requeue). Persists and bumps `dlq.drained` when an entry existed.
    pub fn drain(&self, job: u64, phase: u8, task: u64) -> Result<bool, String> {
        let removed = {
            let mut entries = self.entries.lock().unwrap();
            let before = entries.len();
            entries.retain(|e| !(e.job == job && e.phase == phase && e.task == task));
            before != entries.len()
        };
        if removed {
            m2td_obs::counter_add("dlq.drained", 1);
            self.publish_depth();
            self.persist()?;
        }
        Ok(removed)
    }

    /// Marks every entry for requeue; returns how many were newly marked.
    pub fn requeue_all(&self) -> Result<usize, String> {
        let marked = {
            let mut entries = self.entries.lock().unwrap();
            let mut marked = 0;
            for e in entries.iter_mut() {
                if !e.requeued {
                    e.requeued = true;
                    marked += 1;
                }
            }
            marked
        };
        if marked > 0 {
            self.persist()?;
        }
        Ok(marked)
    }

    /// Discards every entry; returns how many were removed.
    pub fn purge(&self) -> Result<usize, String> {
        let removed = {
            let mut entries = self.entries.lock().unwrap();
            let n = entries.len();
            entries.clear();
            n
        };
        self.publish_depth();
        if removed > 0 {
            self.persist()?;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_fault::TaskKind;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("m2td_dlq_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(task: u64) -> DlqEntry {
        let env = TaskEnvelope::new(3, 3, TaskKind::Reduce, task, 4, format!("[{task}]"));
        DlqEntry::from_envelope(
            &env,
            4,
            vec!["attempt 0: killed by fault plan".to_string()],
            "retry budget exhausted".to_string(),
        )
    }

    #[test]
    fn entries_round_trip_through_the_file() {
        let dir = tmp_dir("roundtrip");
        let store = DlqStore::open(&dir);
        assert_eq!(store.depth(), 0);
        store.park(entry(7)).unwrap();
        store.park(entry(2)).unwrap();
        let reopened = DlqStore::open(&dir);
        assert_eq!(reopened.depth(), 2);
        assert_eq!(reopened.entries(), store.entries());
        let e = &reopened.entries()[0];
        assert_eq!((e.job, e.phase, e.task), (3, 3, 7));
        assert_eq!(e.kind, "reduce");
        assert!(!e.requeued);
    }

    #[test]
    fn park_upserts_and_clears_requeue_marks() {
        let dir = tmp_dir("upsert");
        let store = DlqStore::open(&dir);
        store.park(entry(7)).unwrap();
        assert_eq!(store.requeue_all().unwrap(), 1);
        assert!(store.is_requeued(3, 3, 7));
        // The task died again: the retry was spent, the mark clears.
        store.park(entry(7)).unwrap();
        assert_eq!(store.depth(), 1);
        assert!(!store.is_requeued(3, 3, 7));
    }

    #[test]
    fn drain_and_purge_remove_entries() {
        let dir = tmp_dir("drain");
        let store = DlqStore::open(&dir);
        store.park(entry(1)).unwrap();
        store.park(entry(2)).unwrap();
        assert!(store.drain(3, 3, 1).unwrap());
        assert!(!store.drain(3, 3, 1).unwrap(), "double drain");
        assert_eq!(store.depth(), 1);
        assert_eq!(store.purge().unwrap(), 1);
        assert_eq!(store.depth(), 0);
        assert_eq!(DlqStore::open(&dir).depth(), 0);
    }

    #[test]
    fn corrupt_queue_files_degrade_to_empty() {
        let dir = tmp_dir("corrupt");
        let store = DlqStore::open(&dir);
        store.park(entry(1)).unwrap();
        std::fs::write(dir.join(DlqStore::FILE_NAME), "{torn").unwrap();
        assert_eq!(DlqStore::open(&dir).depth(), 0);
        // A checksum-valid but version-stale record is also rejected.
        let doc = seal_record(&Json::Null, vec![entry(1)].to_json());
        let stale = doc
            .to_compact()
            .replacen("\"version\":2", "\"version\":1", 1);
        std::fs::write(dir.join(DlqStore::FILE_NAME), stale).unwrap();
        assert_eq!(DlqStore::open(&dir).depth(), 0);
    }
}
