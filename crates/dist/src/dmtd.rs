//! The three phases of D-M2TD (Section VI-D), executed on the
//! [`crate::MapReduce`] engine.
//!
//! * **Phase 1 — parallel sub-tensor decomposition**: entries are tagged
//!   with their sub-tensor id `κ ∈ {1, 2}` and shuffled so each reducer
//!   receives one sub-tensor, computes its mode Grams and factor matrices.
//!   The driver then combines the pivot factors (AVG/CONCAT/SELECT).
//! * **Phase 2 — parallel JE-stitching**: entries are shuffled by their
//!   pivot configuration; each reducer joins (or zero-joins) its pivot
//!   group into join-tensor cells.
//! * **Phase 3 — parallel core recovery**: join cells are partitioned
//!   across reducers; each computes a partial core via the TTM chain over
//!   its cells (TTM is linear in the tensor, so partial cores sum to the
//!   exact core).
//!
//! ## Fault tolerance
//!
//! [`d_m2td_fault_tolerant`] executes the same dataflow under a seeded
//! [`FaultConfig`]: task kills are retried with deterministic virtual
//! backoff, stragglers are rescued by speculative re-execution, and each
//! completed phase boundary can be persisted to a
//! [`CheckpointStore`](crate::CheckpointStore) so a later run over the
//! same inputs resumes from the first incomplete phase. Because every
//! task is pure, any fault schedule that eventually succeeds produces
//! factors and a core **bitwise identical** to the fault-free run at every
//! `M2TD_THREADS` setting; `tests/fault_determinism.rs` pins this.

use crate::checkpoint::{CheckpointStore, Fingerprint};
use crate::cluster::{ClusterModel, PhaseCost};
use crate::dlq::{DlqEntry, DlqStore};
use crate::manifest::{JobManifest, ManifestStore};
use crate::mapreduce::{
    MapReduce, ShardedOutput, ShardedRun, ShuffleStats, TaskState, WaveRecovery,
};
use crate::scheduler::DeadTask;
use crate::transport::TaskEnvelope;
use m2td_core::{projection_factors, CoreError, M2tdOptions};
use m2td_fault::{FaultError, FaultPlan, RetryPolicy, TaskCounters};
use m2td_json::{FromJson, Json, JsonError, ToJson};
use m2td_linalg::Matrix;
use m2td_stitch::StitchKind;
use m2td_tensor::{
    CoreOrdering, DenseTensor, Shape, SparseTensor, TtmPlan, TuckerDecomp, Workspace,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Errors produced by D-M2TD.
#[derive(Debug)]
pub enum DistError {
    /// Propagated core/tensor error.
    Core(CoreError),
    /// Structural problem specific to the distributed formulation.
    Invalid(String),
    /// A task was killed on every attempt its retry budget allowed.
    Exhausted(FaultError),
    /// A phase checkpoint could not be written.
    Checkpoint(String),
    /// A worker-side failure that crossed the transport boundary, or a
    /// task stranded in the dead-letter queue. Carries the rendered error
    /// — typed errors do not survive serialization.
    Worker(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Core(e) => write!(f, "core error: {e}"),
            DistError::Invalid(s) => write!(f, "invalid D-M2TD input: {s}"),
            DistError::Exhausted(e) => write!(f, "{e}"),
            DistError::Checkpoint(s) => write!(f, "checkpoint error: {s}"),
            DistError::Worker(s) => write!(f, "worker error: {s}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Core(e) => Some(e),
            DistError::Invalid(_) | DistError::Checkpoint(_) | DistError::Worker(_) => None,
            DistError::Exhausted(e) => Some(e),
        }
    }
}

impl From<CoreError> for DistError {
    fn from(e: CoreError) -> Self {
        DistError::Core(e)
    }
}

impl From<m2td_tensor::TensorError> for DistError {
    fn from(e: m2td_tensor::TensorError) -> Self {
        DistError::Core(e.into())
    }
}

impl From<m2td_linalg::LinalgError> for DistError {
    fn from(e: m2td_linalg::LinalgError) -> Self {
        DistError::Core(e.into())
    }
}

impl From<FaultError> for DistError {
    fn from(e: FaultError) -> Self {
        DistError::Exhausted(e)
    }
}

impl From<m2td_guard::GuardError> for DistError {
    fn from(e: m2td_guard::GuardError) -> Self {
        DistError::Core(e.into())
    }
}

/// The failure model one D-M2TD run executes under: which faults are
/// injected ([`FaultPlan`]) and how the engine responds ([`RetryPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Injected faults (deterministic, seeded).
    pub plan: FaultPlan,
    /// Retry budget, backoff schedule and speculation threshold.
    pub policy: RetryPolicy,
}

impl FaultConfig {
    /// No injected faults, default retry policy.
    pub fn none() -> Self {
        Self {
            plan: FaultPlan::none(),
            policy: RetryPolicy::default(),
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A reduce task's result as it crosses the transport boundary: either
/// the value or the rendered error (typed errors do not serialize).
#[derive(Debug, Clone)]
enum TaskOutcome<T> {
    Ok(T),
    Fail(String),
}

impl<T> TaskOutcome<T> {
    fn into_result(self) -> Result<T, DistError> {
        match self {
            TaskOutcome::Ok(v) => Ok(v),
            TaskOutcome::Fail(s) => Err(DistError::Worker(s)),
        }
    }
}

impl<T> From<Result<T, DistError>> for TaskOutcome<T> {
    fn from(r: Result<T, DistError>) -> Self {
        match r {
            Ok(v) => TaskOutcome::Ok(v),
            Err(e) => TaskOutcome::Fail(e.to_string()),
        }
    }
}

impl<T: ToJson> ToJson for TaskOutcome<T> {
    fn to_json(&self) -> Json {
        match self {
            TaskOutcome::Ok(v) => Json::Obj(vec![("ok".to_string(), v.to_json())]),
            TaskOutcome::Fail(s) => Json::Obj(vec![("fail".to_string(), s.to_json())]),
        }
    }
}

impl<T: FromJson> FromJson for TaskOutcome<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if let Some(v) = json.get("ok") {
            return Ok(TaskOutcome::Ok(T::from_json(v)?));
        }
        if let Some(s) = json.get("fail") {
            return Ok(TaskOutcome::Fail(String::from_json(s)?));
        }
        Err(JsonError::Invalid(
            "task outcome needs an ok or fail field".to_string(),
        ))
    }
}

/// Durable stores a resumable run reads and writes: the [`ManifestStore`]
/// tracking per-phase task completion and the [`DlqStore`] holding parked
/// tasks, plus the coverage floor below which a degraded phase-3 result
/// is refused (mirroring the ensemble coverage policy in `m2td-core`).
#[derive(Debug, Clone, Copy)]
pub struct JobRecovery<'a> {
    /// Per-phase task-completion record (format-v2, fingerprint-sealed).
    pub manifest: &'a ManifestStore,
    /// Dead-letter queue for tasks whose retry budget is exhausted.
    pub dlq: &'a DlqStore,
    /// Minimum fraction of phase-3 partial cores that must survive for a
    /// degraded completion; below it the run fails cleanly. Phases 1 and
    /// 2 always require full coverage — their outputs feed every
    /// downstream task.
    pub min_coverage: f64,
}

impl<'a> JobRecovery<'a> {
    /// Recovery over the given stores with the default 0.5 coverage floor.
    pub fn new(manifest: &'a ManifestStore, dlq: &'a DlqStore) -> Self {
        Self {
            manifest,
            dlq,
            min_coverage: 0.5,
        }
    }

    /// Adjusts the phase-3 coverage floor (clamped to `[0, 1]`).
    pub fn with_min_coverage(mut self, min_coverage: f64) -> Self {
        self.min_coverage = min_coverage.clamp(0.0, 1.0);
        self
    }
}

/// What [`d_m2td_resumable`] did beyond the decomposition itself.
#[derive(Debug)]
pub struct ResumeReport {
    /// The (possibly degraded) decomposition.
    pub dist: DistDecomposition,
    /// Phase-3 reduce tasks missing from the core — parked in the
    /// dead-letter queue (this run or a previous one) and not drained.
    pub dead_tasks: Vec<u64>,
    /// Reduce tasks replayed from manifest-recorded outputs instead of
    /// re-running, across all phases.
    pub resumed_tasks: usize,
    /// Dead-letter entries drained by this run (requeued tasks that
    /// completed).
    pub drained: usize,
    /// True when the core is missing at least one partial (coverage was
    /// above the floor but below 1).
    pub degraded: bool,
}

/// Shared mutable state of one resumable run.
struct ResumeState {
    manifest: Mutex<JobManifest>,
    drained: AtomicUsize,
}

/// The [`WaveRecovery`] wiring for one phase: manifest records completion
/// and death, the DLQ holds corpses and requeue marks. Persistence errors
/// are counted, not fatal — a lost manifest save only means the next run
/// re-executes a task it could have resumed.
struct PhaseRecovery<'a> {
    job: u64,
    phase: u8,
    fingerprint: &'a Fingerprint,
    store: &'a ManifestStore,
    dlq: &'a DlqStore,
    state: &'a ResumeState,
}

impl PhaseRecovery<'_> {
    fn save(&self, manifest: &JobManifest) {
        if self.store.save(self.fingerprint, manifest).is_err() {
            m2td_obs::counter_add("manifest.save_errors", 1);
        }
    }
}

impl WaveRecovery for PhaseRecovery<'_> {
    fn begin_phase(&self, total: u64) {
        let mut m = self.state.manifest.lock().unwrap();
        m.begin_phase(self.phase, total);
        self.save(&m);
    }

    fn task_state(&self, task: u64) -> TaskState {
        let m = self.state.manifest.lock().unwrap();
        if let Some(out) = m.completed_output(self.phase, task) {
            return TaskState::Completed(out.clone());
        }
        if m.is_dead(self.phase, task) {
            return TaskState::Dead {
                requeued: self.dlq.is_requeued(self.job, self.phase, task),
            };
        }
        TaskState::Fresh
    }

    fn record_complete(&self, task: u64, output: &Json) {
        let mut m = self.state.manifest.lock().unwrap();
        m.record_complete(self.phase, task, output.clone());
        self.save(&m);
    }

    fn record_dead(&self, dead: &DeadTask, envelope: &TaskEnvelope) {
        {
            let mut m = self.state.manifest.lock().unwrap();
            m.record_dead(self.phase, dead.task);
            self.save(&m);
        }
        let entry = DlqEntry::from_envelope(
            envelope,
            dead.attempts,
            dead.log.clone(),
            dead.error.to_string(),
        );
        if self.dlq.park(entry).is_err() {
            m2td_obs::counter_add("dlq.park_errors", 1);
        }
    }

    fn record_revived(&self, task: u64) {
        // The manifest's dead mark was already cleared by the
        // record_complete that precedes every revival.
        match self.dlq.drain(self.job, self.phase, task) {
            Ok(true) => {
                self.state.drained.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {}
            Err(_) => m2td_obs::counter_add("dlq.drain_errors", 1),
        }
    }
}

/// Fails unless every reduce task of the phase survived: a corpse parked
/// this run surfaces its terminal fault; one inherited from a previous
/// run (and not requeued) points the operator at the DLQ workflow.
fn require_full_coverage<R>(phase: u8, out: &ShardedOutput<R>) -> Result<(), DistError> {
    if let Some(d) = out.dead.first() {
        return Err(DistError::Exhausted(d.error.clone()));
    }
    if let Some(&t) = out.skipped_dead.first() {
        return Err(DistError::Worker(format!(
            "phase-{phase} reduce task {t} is parked in the dead-letter queue \
             (phases 1-2 cannot complete degraded); requeue it with `m2td-cli dlq requeue`"
        )));
    }
    Ok(())
}

/// Job ids the three phases run under — a [`FaultPlan`] scoped with
/// [`FaultPlan::in_job`] targets exactly one phase.
pub const PHASE1_JOB: u64 = 1;
/// See [`PHASE1_JOB`].
pub const PHASE2_JOB: u64 = 2;
/// See [`PHASE1_JOB`]. Under [`Phase3Strategy::ModeShuffle`] all per-mode
/// jobs share this id.
pub const PHASE3_JOB: u64 = 3;

/// Measured statistics of one phase: serial compute time plus the shuffle
/// volume of its MapReduce job. Feed these to a [`ClusterModel`] to obtain
/// Table III-style per-server-count times.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Wall-clock seconds of the phase's computation in this process.
    pub serial_secs: f64,
    /// Shuffle statistics of the phase's MapReduce job.
    pub shuffle: ShuffleStats,
    /// Task-execution counters (attempts, kills, stragglers, speculative
    /// copies, virtual lost time) accumulated by the phase's job(s).
    /// All-zero for a phase resumed from a checkpoint.
    pub tasks: TaskCounters,
    /// True if this phase's output was loaded from a
    /// [`CheckpointStore`](crate::CheckpointStore) instead of computed.
    pub resumed: bool,
}

impl PhaseStats {
    fn computed(serial_secs: f64, shuffle: ShuffleStats, tasks: TaskCounters) -> Self {
        Self {
            serial_secs,
            shuffle,
            tasks,
            resumed: false,
        }
    }

    fn resumed_from_checkpoint() -> Self {
        Self {
            serial_secs: 0.0,
            shuffle: ShuffleStats::default(),
            tasks: TaskCounters::default(),
            resumed: true,
        }
    }

    /// Projects this phase onto a modeled cluster.
    pub fn on_cluster(&self, model: &ClusterModel) -> PhaseCost {
        model.phase_cost(self.serial_secs, &self.shuffle)
    }
}

/// The result of a distributed M2TD run.
#[derive(Debug, Clone)]
pub struct DistDecomposition {
    /// Tucker decomposition of the join tensor (join mode order).
    pub tucker: TuckerDecomp,
    /// Phase 1 statistics (parallel sub-tensor decomposition).
    pub phase1: PhaseStats,
    /// Phase 2 statistics (parallel JE-stitching).
    pub phase2: PhaseStats,
    /// Phase 3 statistics (parallel core recovery).
    pub phase3: PhaseStats,
}

impl DistDecomposition {
    /// Aggregate task counters over all three phases.
    pub fn total_tasks(&self) -> TaskCounters {
        let mut c = TaskCounters::default();
        c.absorb(&self.phase1.tasks);
        c.absorb(&self.phase2.tasks);
        c.absorb(&self.phase3.tasks);
        c
    }
}

/// How Phase 3 (core recovery) is distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase3Strategy {
    /// Partition the join cells across reducers; each computes a partial
    /// core via a full TTM chain over its cells, and the partial cores are
    /// summed (TTM is linear in the tensor). One MapReduce job.
    ChunkPartition,
    /// The paper's literal dataflow (Section VI-D): one MapReduce job per
    /// mode — cells are shuffled by their all-but-one-mode key, each
    /// reducer performs the vector-matrix multiplication for its fiber,
    /// and the output tensor feeds the next mode's job.
    ModeShuffle,
}

/// Runs D-M2TD over two PF-partitioned sub-tensors.
///
/// Semantics (inputs, `k`, join-order `ranks`, options) match
/// [`m2td_core::m2td_decompose`]; the result agrees with the serial
/// implementation up to floating-point accumulation order. Phase 3 uses
/// the [`Phase3Strategy::ChunkPartition`] dataflow; use
/// [`d_m2td_with_phase3`] to select the paper's per-mode shuffle instead,
/// or [`d_m2td_fault_tolerant`] to run under a failure model.
pub fn d_m2td(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
    engine: &MapReduce,
) -> Result<DistDecomposition, DistError> {
    d_m2td_with_phase3(
        x1,
        x2,
        k,
        ranks,
        opts,
        engine,
        Phase3Strategy::ChunkPartition,
    )
}

/// [`d_m2td`] with an explicit Phase-3 dataflow.
pub fn d_m2td_with_phase3(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
    engine: &MapReduce,
    phase3_strategy: Phase3Strategy,
) -> Result<DistDecomposition, DistError> {
    d_m2td_fault_tolerant(
        x1,
        x2,
        k,
        ranks,
        opts,
        engine,
        phase3_strategy,
        &FaultConfig::none(),
        None,
    )
}

/// [`d_m2td`] under a failure model, optionally with phase-boundary
/// checkpointing.
///
/// With a [`CheckpointStore`], each completed phase persists its output
/// (phase 1: combined factors; phase 2: join tensor), and a later call
/// over the same inputs loads the stored artifacts instead of recomputing
/// — so a run that died in phase 3 resumes from phases 1–2. Resumed
/// phases report `resumed = true` and all-zero [`TaskCounters`].
///
/// The determinism invariant: because tasks are pure, any fault schedule
/// that eventually succeeds (including one interrupted and resumed from
/// checkpoints) yields factors and core bitwise identical to the
/// fault-free run, at every thread count. A task killed on every allowed
/// attempt surfaces [`DistError::Exhausted`].
#[allow(clippy::too_many_arguments)]
pub fn d_m2td_fault_tolerant(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
    engine: &MapReduce,
    phase3_strategy: Phase3Strategy,
    faults: &FaultConfig,
    checkpoint: Option<&CheckpointStore>,
) -> Result<DistDecomposition, DistError> {
    d_m2td_run(
        x1,
        x2,
        k,
        ranks,
        opts,
        engine,
        phase3_strategy,
        faults,
        checkpoint,
        None,
    )
    .map(|(dist, _)| dist)
}

/// [`d_m2td_fault_tolerant`] with job-level resume and a dead-letter
/// queue.
///
/// Beyond phase-boundary checkpoints, the run records every completed
/// reduce task (with its serialized output) in a fingerprint-sealed
/// [`JobManifest`], so a process killed mid-phase and restarted over the
/// same inputs re-runs only incomplete tasks. A task killed on every
/// allowed attempt no longer fails the job: it is parked in the
/// [`DlqStore`] with its envelope and attempt history. Phases 1 and 2
/// still require full coverage (their outputs feed everything
/// downstream), but phase 3 under [`Phase3Strategy::ChunkPartition`]
/// completes **degraded** — summing the surviving partial cores — as
/// long as coverage stays at or above [`JobRecovery::min_coverage`].
/// `m2td-cli dlq requeue` marks parked tasks for re-execution; the next
/// resumable run re-runs them and drains their entries on success,
/// converging to the bitwise fault-free result.
#[allow(clippy::too_many_arguments)]
pub fn d_m2td_resumable(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
    engine: &MapReduce,
    phase3_strategy: Phase3Strategy,
    faults: &FaultConfig,
    checkpoint: Option<&CheckpointStore>,
    recovery: &JobRecovery<'_>,
) -> Result<ResumeReport, DistError> {
    d_m2td_run(
        x1,
        x2,
        k,
        ranks,
        opts,
        engine,
        phase3_strategy,
        faults,
        checkpoint,
        Some(recovery),
    )
    .map(|(dist, info)| ResumeReport {
        dist,
        dead_tasks: info.dead_tasks,
        resumed_tasks: info.resumed_tasks,
        drained: info.drained,
        degraded: info.degraded,
    })
}

/// Resume bookkeeping accumulated by [`d_m2td_run`].
#[derive(Debug, Default)]
struct RunInfo {
    dead_tasks: Vec<u64>,
    resumed_tasks: usize,
    drained: usize,
    degraded: bool,
}

#[allow(clippy::too_many_arguments)]
fn d_m2td_run(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    ranks: &[usize],
    opts: M2tdOptions,
    engine: &MapReduce,
    phase3_strategy: Phase3Strategy,
    faults: &FaultConfig,
    checkpoint: Option<&CheckpointStore>,
    recovery: Option<&JobRecovery<'_>>,
) -> Result<(DistDecomposition, RunInfo), DistError> {
    let m1 = x1.order();
    let m2 = x2.order();
    if k == 0 || k >= m1 || k >= m2 {
        return Err(DistError::Invalid(format!(
            "pivot count {k} invalid for sub-tensor orders {m1}, {m2}"
        )));
    }
    if ranks.len() != k + (m1 - k) + (m2 - k) {
        return Err(DistError::Invalid(format!(
            "{} ranks supplied for join order {}",
            ranks.len(),
            k + (m1 - k) + (m2 - k)
        )));
    }
    let plan = &faults.plan;
    let policy = &faults.policy;
    // Phase-boundary sentinel: reject poisoned inputs before any phase
    // runs (no-ops while m2td-guard is uninstalled).
    m2td_guard::check_cells("phase1.x1", x1.iter())?;
    m2td_guard::check_cells("phase1.x2", x2.iter())?;
    let fp = Fingerprint::new(x1, x2, k, ranks, &opts);
    // Resume state: the previous run's manifest (absent or wrong-
    // fingerprint records degrade to a fresh one) plus drain tally.
    let resume_state = recovery.map(|r| ResumeState {
        manifest: Mutex::new(r.manifest.load(&fp).unwrap_or_default()),
        drained: AtomicUsize::new(0),
    });
    let phase_recovery = |job: u64, phase: u8| -> Option<PhaseRecovery<'_>> {
        match (recovery, &resume_state) {
            (Some(r), Some(state)) => Some(PhaseRecovery {
                job,
                phase,
                fingerprint: &fp,
                store: r.manifest,
                dlq: r.dlq,
                state,
            }),
            _ => None,
        }
    };
    let mut info = RunInfo::default();
    let ckpt_factors = checkpoint.and_then(|c| c.load_phase1(&fp));
    let ckpt_join = checkpoint.and_then(|c| c.load_phase2(&fp));
    if checkpoint.is_some() && m2td_obs::installed() {
        let hit = |found: bool| if found { "hits" } else { "misses" };
        m2td_obs::counter_add(format!("ckpt.phase1.{}", hit(ckpt_factors.is_some())), 1);
        m2td_obs::counter_add(format!("ckpt.phase2.{}", hit(ckpt_join.is_some())), 1);
    }

    // Tagged entry stream: (κ, linear index, value). Needed by whichever
    // of phases 1 and 2 is not resumed from a checkpoint.
    let tagged: Vec<(u8, u64, f64)> = if ckpt_factors.is_none() || ckpt_join.is_none() {
        x1.iter_linear()
            .map(|(l, v)| (1u8, l, v))
            .chain(x2.iter_linear().map(|(l, v)| (2u8, l, v)))
            .collect()
    } else {
        Vec::new()
    };

    // ---- Phase 1: parallel sub-tensor decomposition ---------------------
    // Span labels are shared with `m2td_core::m2td_decompose`: the serial
    // and distributed phases correspond one-to-one, so telemetry consumers
    // see one taxonomy regardless of which entry point ran.
    let span1 = m2td_obs::span!("phase1.decompose");
    let t1 = Instant::now();
    let (factors, phase1) = match ckpt_factors {
        Some(factors) => (factors, PhaseStats::resumed_from_checkpoint()),
        None => {
            let dims1 = x1.dims().to_vec();
            let dims2 = x2.dims().to_vec();
            let ranks1: Vec<usize> = ranks[..m1].to_vec();
            let ranks2: Vec<usize> = {
                let mut r = ranks[..k].to_vec();
                r.extend_from_slice(&ranks[m1..]);
                r
            };
            let rec1 = phase_recovery(PHASE1_JOB, 1);
            let sharded1 = engine.run_sharded(
                &ShardedRun {
                    job: PHASE1_JOB,
                    phase: 1,
                    plan,
                    policy,
                    recovery: rec1.as_ref().map(|r| r as &dyn WaveRecovery),
                },
                tagged.clone(),
                |(kappa, lin, v)| vec![(kappa, (lin, v))],
                |kappa, entries| -> TaskOutcome<(u8, Vec<Matrix>, Vec<Matrix>)> {
                    let compute = || -> Result<(u8, Vec<Matrix>, Vec<Matrix>), DistError> {
                        let (dims, rks) = if *kappa == 1 {
                            (&dims1, &ranks1)
                        } else {
                            (&dims2, &ranks2)
                        };
                        let (indices, values): (Vec<u64>, Vec<f64>) = entries.into_iter().unzip();
                        let tensor = SparseTensor::from_sorted_linear(dims, indices, values)?;
                        let mut grams = Vec::with_capacity(dims.len());
                        let mut factors = Vec::with_capacity(dims.len());
                        for (mode, &r) in rks.iter().enumerate() {
                            let gram = m2td_tensor::phase_gram(&tensor, mode)?;
                            factors.push(m2td_guard::gram_factor(
                                "phase1.factor",
                                Some(mode),
                                &gram,
                                r,
                            )?);
                            grams.push(gram);
                        }
                        Ok((*kappa, grams, factors))
                    };
                    compute().into()
                },
            )?;
            require_full_coverage(1, &sharded1)?;
            info.resumed_tasks += sharded1.resumed;
            let (stats1, tasks1) = (sharded1.stats, sharded1.counters);
            let mut factor_sets = Vec::with_capacity(sharded1.outputs.len());
            for (_, outcome) in sharded1.outputs {
                factor_sets.push(outcome.into_result()?);
            }
            if factor_sets.len() != 2 {
                return Err(DistError::Invalid(
                    "one of the sub-tensors is empty".to_string(),
                ));
            }
            // factor_sets is keyed 1 then 2 (BTreeMap order).
            let (_, grams1, factors1) = &factor_sets[0];
            let (_, grams2, factors2) = &factor_sets[1];

            // Driver-side pivot combination + free-factor assembly (join
            // order).
            let mut factors: Vec<Matrix> = Vec::with_capacity(ranks.len());
            for n in 0..k {
                // The guard's ClampRank policy may have truncated one
                // side's factor; pivot combination needs equal widths, so
                // harmonize both sides to the narrower one.
                let width = factors1[n].cols().min(factors2[n].cols());
                factors.push(m2td_core::combine_pivot_factor(
                    opts.combine,
                    &grams1[n],
                    &grams2[n],
                    &factors1[n].leading_columns(width)?,
                    &factors2[n].leading_columns(width)?,
                    width,
                )?);
            }
            for f in &factors1[k..] {
                factors.push(f.clone());
            }
            for f in &factors2[k..] {
                factors.push(f.clone());
            }
            for (n, f) in factors.iter().enumerate() {
                m2td_guard::check_matrix("phase1.factor", Some(n), f)?;
            }
            if let Some(c) = checkpoint {
                c.save_phase1(&fp, &factors)
                    .map_err(DistError::Checkpoint)?;
                // Corruption stream: damage the freshly published record
                // (models disk corruption after a successful write). This
                // run keeps its in-memory factors; the *next* run must
                // quarantine the record and recompute.
                if let Some(kind) = plan.ckpt_corruption(1) {
                    c.corrupt(1, kind).map_err(DistError::Checkpoint)?;
                }
            }
            let stats = PhaseStats::computed(t1.elapsed().as_secs_f64(), stats1, tasks1);
            (factors, stats)
        }
    };

    drop(span1);

    // ---- Phase 2: parallel JE-stitching ---------------------------------
    let span2 = m2td_obs::span!("phase2.stitch");
    let t2 = Instant::now();
    let mut join_dims: Vec<usize> = x1.dims()[..k].to_vec();
    join_dims.extend_from_slice(&x1.dims()[k..]);
    join_dims.extend_from_slice(&x2.dims()[k..]);
    let (join, phase2) = match ckpt_join {
        Some(join) => {
            if join.dims() != join_dims.as_slice() {
                return Err(DistError::Invalid(format!(
                    "checkpointed join tensor dims {:?} do not match expected {join_dims:?}",
                    join.dims()
                )));
            }
            (join, PhaseStats::resumed_from_checkpoint())
        }
        None => {
            let pivot_shape = Shape::new(&x1.dims()[..k]);
            let free1_shape = Shape::new(&x1.dims()[k..]);
            let free2_shape = Shape::new(&x2.dims()[k..]);
            let join_shape = Shape::new(&join_dims);

            // Global free-config sets, needed by zero-join reducers.
            let (free_set1, free_set2): (BTreeSet<u64>, BTreeSet<u64>) = {
                let mut f1 = BTreeSet::new();
                let mut f2 = BTreeSet::new();
                let mut idx1 = vec![0usize; m1];
                for (lin, _) in x1.iter_linear() {
                    x1.shape().multi_index_into(lin as usize, &mut idx1);
                    f1.insert(free1_shape.linear_index(&idx1[k..]) as u64);
                }
                let mut idx2 = vec![0usize; m2];
                for (lin, _) in x2.iter_linear() {
                    x2.shape().multi_index_into(lin as usize, &mut idx2);
                    f2.insert(free2_shape.linear_index(&idx2[k..]) as u64);
                }
                (f1, f2)
            };

            let shape1 = x1.shape().clone();
            let shape2 = x2.shape().clone();
            let rec2 = phase_recovery(PHASE2_JOB, 2);
            let sharded2 = engine.run_sharded(
                &ShardedRun {
                    job: PHASE2_JOB,
                    phase: 2,
                    plan,
                    policy,
                    recovery: rec2.as_ref().map(|r| r as &dyn WaveRecovery),
                },
                tagged,
                |(kappa, lin, v)| {
                    // Key by pivot configuration.
                    let (shape, free_shape, order) = if kappa == 1 {
                        (&shape1, &free1_shape, m1)
                    } else {
                        (&shape2, &free2_shape, m2)
                    };
                    let mut idx = vec![0usize; order];
                    shape.multi_index_into(lin as usize, &mut idx);
                    let p = pivot_shape.linear_index(&idx[..k]) as u64;
                    let f = free_shape.linear_index(&idx[k..]) as u64;
                    vec![(p, (kappa, f, v))]
                },
                |pivot, entries| {
                    // Join this pivot group.
                    let mut side1: BTreeMap<u64, f64> = BTreeMap::new();
                    let mut side2: BTreeMap<u64, f64> = BTreeMap::new();
                    for (kappa, f, v) in entries {
                        if kappa == 1 {
                            side1.insert(f, v);
                        } else {
                            side2.insert(f, v);
                        }
                    }
                    let mut cells: Vec<(u64, u64, f64)> = Vec::new();
                    match opts.stitch {
                        StitchKind::Join => {
                            for (&f1, &v1) in &side1 {
                                for (&f2, &v2) in &side2 {
                                    cells.push((f1, f2, 0.5 * (v1 + v2)));
                                }
                            }
                        }
                        StitchKind::ZeroJoin => {
                            for (&f1, &v1) in &side1 {
                                for &f2 in &free_set2 {
                                    let v2 = side2.get(&f2).copied().unwrap_or(0.0);
                                    cells.push((f1, f2, 0.5 * (v1 + v2)));
                                }
                            }
                            for (&f2, &v2) in &side2 {
                                for &f1 in &free_set1 {
                                    if side1.contains_key(&f1) {
                                        continue;
                                    }
                                    cells.push((f1, f2, 0.5 * v2));
                                }
                            }
                        }
                    }
                    (*pivot, cells)
                },
            )?;
            require_full_coverage(2, &sharded2)?;
            info.resumed_tasks += sharded2.resumed;
            let (stats2, tasks2) = (sharded2.stats, sharded2.counters);

            // Assemble the join tensor from the per-pivot groups.
            let f1_len = free1_shape.order();
            let mut entries: Vec<(u64, f64)> = Vec::new();
            let mut idx = vec![0usize; join_dims.len()];
            for (_, (pivot, cells)) in sharded2.outputs {
                for (f1, f2, v) in cells {
                    pivot_shape.multi_index_into(pivot as usize, &mut idx[..k]);
                    free1_shape.multi_index_into(f1 as usize, &mut idx[k..k + f1_len]);
                    free2_shape.multi_index_into(f2 as usize, &mut idx[k + f1_len..]);
                    entries.push((join_shape.linear_index(&idx) as u64, v));
                }
            }
            entries.sort_unstable_by_key(|&(l, _)| l);
            let (indices, values): (Vec<u64>, Vec<f64>) = entries.into_iter().unzip();
            let join = SparseTensor::from_sorted_linear(&join_dims, indices, values)?;
            if let Some(c) = checkpoint {
                c.save_phase2(&fp, &join).map_err(DistError::Checkpoint)?;
                if let Some(kind) = plan.ckpt_corruption(2) {
                    c.corrupt(2, kind).map_err(DistError::Checkpoint)?;
                }
            }
            let stats = PhaseStats::computed(t2.elapsed().as_secs_f64(), stats2, tasks2);
            (join, stats)
        }
    };

    drop(span2);
    // Phase-2 boundary sentinel: a poisoned join cell (from a NaN that
    // slipped into the stitch arithmetic) must not reach core recovery.
    m2td_guard::check_cells("phase2.join", join.iter())?;

    // ---- Phase 3: parallel core recovery --------------------------------
    let _span3 = m2td_obs::span!("phase3.core");
    let t3 = Instant::now();
    if join.nnz() == 0 {
        return Err(DistError::Invalid(
            "join tensor is empty: the sub-ensembles share no pivot configuration".to_string(),
        ));
    }
    let proj_factors = projection_factors(&factors, opts.projection)?;
    let (core, stats3, tasks3) = match phase3_strategy {
        Phase3Strategy::ChunkPartition => {
            let partitions = engine.workers() as u64;
            let join_cells: Vec<(u64, f64)> = join.iter_linear().collect();
            // Every chunk shares the join shape and factor ranks, so the
            // TTM chain is planned once, outside the reducer.
            let ranks: Vec<usize> = proj_factors.iter().map(|f| f.cols()).collect();
            let chain_plan =
                TtmPlan::with_ordering(&join_dims, &ranks, CoreOrdering::BestShrinkFirst)?;
            let rec3 = phase_recovery(PHASE3_JOB, 3);
            let sharded3 = engine.run_sharded(
                &ShardedRun {
                    job: PHASE3_JOB,
                    phase: 3,
                    plan,
                    policy,
                    recovery: rec3.as_ref().map(|r| r as &dyn WaveRecovery),
                },
                join_cells,
                |(lin, v)| vec![(lin % partitions, (lin, v))],
                |_part, cells| -> TaskOutcome<DenseTensor> {
                    let compute = || -> Result<DenseTensor, DistError> {
                        let (mut indices, mut values): (Vec<u64>, Vec<f64>) = (
                            Vec::with_capacity(cells.len()),
                            Vec::with_capacity(cells.len()),
                        );
                        let mut sorted = cells.clone();
                        sorted.sort_unstable_by_key(|&(l, _)| l);
                        for (l, v) in sorted {
                            indices.push(l);
                            values.push(v);
                        }
                        let chunk = SparseTensor::from_sorted_linear(&join_dims, indices, values)?;
                        Ok(chain_plan.execute_sparse(
                            &chunk,
                            &proj_factors,
                            &mut Workspace::new(),
                        )?)
                    };
                    compute().into()
                },
            )?;
            info.resumed_tasks += sharded3.resumed;
            // Degraded completion: partial cores sum, so a missing task
            // only loses its cells' contribution. Refuse below the
            // coverage floor (or at all without a recovery layer — the
            // wave then fails before reaching here).
            let total = sharded3.reduce_tasks.max(1);
            let missing = sharded3.dead.len() + sharded3.skipped_dead.len();
            if missing > 0 {
                let covered = (total as usize - missing) as f64 / total as f64;
                let floor = recovery.map(|r| r.min_coverage).unwrap_or(1.0);
                if covered < floor {
                    return Err(DistError::Worker(format!(
                        "phase-3 coverage {covered:.3} is below the {floor:.3} floor: \
                         {missing} of {total} partial cores are parked in the dead-letter queue"
                    )));
                }
                info.degraded = true;
                info.dead_tasks = sharded3
                    .dead
                    .iter()
                    .map(|d| d.task)
                    .chain(sharded3.skipped_dead.iter().copied())
                    .collect();
                info.dead_tasks.sort_unstable();
                m2td_obs::counter_add("dlq.degraded_completions", 1);
            }
            let (stats3, tasks3) = (sharded3.stats, sharded3.counters);
            let mut core: Option<DenseTensor> = None;
            for (_, outcome) in sharded3.outputs {
                let partial = outcome.into_result()?;
                core = Some(match core {
                    None => partial,
                    Some(acc) => acc.add(&partial)?,
                });
            }
            let core = core.ok_or_else(|| {
                DistError::Invalid("phase 3 produced no partial cores".to_string())
            })?;
            (core, stats3, tasks3)
        }
        Phase3Strategy::ModeShuffle => phase3_mode_shuffle(&join, &proj_factors, engine, faults)?,
    };
    let phase3 = PhaseStats::computed(t3.elapsed().as_secs_f64(), stats3, tasks3);
    // Phase-3 boundary sentinel: the recovered core is the run's output;
    // a non-finite entry here is exactly the "silent garbage core" the
    // guard layer exists to prevent.
    m2td_guard::check_dense("phase3.core", core.dims(), core.as_slice())?;

    if let Some(state) = &resume_state {
        info.drained = state.drained.load(Ordering::Relaxed);
    }
    let tucker = TuckerDecomp::new(core, factors)?;
    Ok((
        DistDecomposition {
            tucker,
            phase1,
            phase2,
            phase3,
        },
        info,
    ))
}

/// Phase 3 via the paper's dataflow: one MapReduce job per mode, cells
/// keyed by their all-but-that-mode index, reducers performing the
/// per-fiber vector-matrix multiplication `out[j] = Σ_i v_i U[i, j]`.
/// Shuffle stats and task counters are summed over the per-mode jobs
/// (which all run under [`PHASE3_JOB`]).
fn phase3_mode_shuffle(
    join: &SparseTensor,
    factors: &[m2td_linalg::Matrix],
    engine: &MapReduce,
    faults: &FaultConfig,
) -> Result<(DenseTensor, ShuffleStats, TaskCounters), DistError> {
    let order = join.order();
    let mut cells: Vec<(Vec<usize>, f64)> = join.iter().collect();
    let mut dims: Vec<usize> = join.dims().to_vec();
    let mut total = ShuffleStats::default();
    let mut tasks = TaskCounters::default();

    for mode in 0..order {
        let factor = &factors[mode];
        let r = factor.cols();
        let rest_dims: Vec<usize> = dims
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &d)| d)
            .collect();
        let rest_shape = Shape::new(&rest_dims);

        let sharded = engine.run_sharded(
            &ShardedRun {
                job: PHASE3_JOB,
                phase: 3,
                plan: &faults.plan,
                policy: &faults.policy,
                // Per-mode jobs reuse task ids, so manifest-based resume
                // cannot tell them apart — ModeShuffle never parks.
                recovery: None,
            },
            cells,
            |(idx, v): (Vec<usize>, f64)| {
                // Key: the linearized all-but-`mode` index.
                let rest: Vec<usize> = idx
                    .iter()
                    .enumerate()
                    .filter(|&(m, _)| m != mode)
                    .map(|(_, &i)| i)
                    .collect();
                let key = rest_shape.linear_index(&rest) as u64;
                vec![(key, (idx[mode], v))]
            },
            |key, fiber: Vec<(usize, f64)>| {
                // out[j] = Σ_i v_i U[i, j] — the paper's vector-matrix step.
                let mut out = vec![0.0f64; r];
                for (i, v) in fiber {
                    for (slot, j) in out.iter_mut().zip(0..r) {
                        *slot += v * factor.get(i, j);
                    }
                }
                (*key, out)
            },
        )?;
        total.map_records += sharded.stats.map_records;
        total.shuffled_pairs += sharded.stats.shuffled_pairs;
        total.reduce_groups += sharded.stats.reduce_groups;
        tasks.absorb(&sharded.counters);
        let groups = sharded.outputs.into_iter().map(|(_, g)| g);

        // Reassemble the (dense-in-`mode`) intermediate as the next input:
        // mode's extent becomes r.
        dims[mode] = r;
        let mut next: Vec<(Vec<usize>, f64)> = Vec::with_capacity(groups.len() * r);
        let mut rest_idx = vec![0usize; rest_dims.len()];
        for (key, out) in groups {
            rest_shape.multi_index_into(key as usize, &mut rest_idx);
            for (j, &v) in out.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let mut idx = Vec::with_capacity(order);
                let mut o = 0;
                for m in 0..order {
                    if m == mode {
                        idx.push(j);
                    } else {
                        idx.push(rest_idx[o]);
                        o += 1;
                    }
                }
                next.push((idx, v));
            }
        }
        cells = next;
    }

    // Materialize the core densely.
    let mut core = DenseTensor::zeros(&dims);
    let core_shape = core.shape().clone();
    let data = core.as_mut_slice();
    for (idx, v) in cells {
        data[core_shape.linear_index(&idx)] += v;
    }
    Ok((core, total, tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_core::m2td_decompose;
    use m2td_tensor::Shape as TShape;

    /// A temp dir unique per process *and* per call, so concurrent test
    /// binaries (or repeated runs within one) never share checkpoint state.
    fn unique_tmp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
    }

    fn sub_tensors(p_dim: usize, f_dim: usize) -> (SparseTensor, SparseTensor) {
        let f = |p: usize, a: usize, b: usize| {
            ((p as f64) * 0.5).sin() * ((a as f64) * 0.4 + 1.0) * ((b as f64) * 0.3 + 1.0) + 0.2
        };
        let full = |dims: &[usize], g: &dyn Fn(&[usize]) -> f64| {
            let shape = TShape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| {
                    let idx = shape.multi_index(l);
                    let v = g(&idx);
                    (idx, v)
                })
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = full(&[p_dim, f_dim], &|i: &[usize]| f(i[0], i[1], f_dim / 2));
        let x2 = full(&[p_dim, f_dim], &|i: &[usize]| f(i[0], f_dim / 2, i[1]));
        (x1, x2)
    }

    #[test]
    fn distributed_matches_serial() {
        let (x1, x2) = sub_tensors(6, 5);
        let ranks = [3, 3, 3];
        let opts = M2tdOptions::default();
        let serial = m2td_decompose(&x1, &x2, 1, &ranks, opts).unwrap();
        for workers in [1, 2, 4] {
            let engine = MapReduce::new(workers);
            let dist = d_m2td(&x1, &x2, 1, &ranks, opts, &engine).unwrap();
            let d_core = dist
                .tucker
                .core
                .sub(&serial.tucker.core)
                .unwrap()
                .frobenius_norm();
            assert!(
                d_core < 1e-9,
                "core mismatch with {workers} workers: {d_core}"
            );
            for (a, b) in dist.tucker.factors.iter().zip(serial.tucker.factors.iter()) {
                let d = a.sub(b).unwrap().frobenius_norm();
                assert!(d < 1e-10, "factor mismatch: {d}");
            }
        }
    }

    #[test]
    fn zero_join_distributed_matches_serial() {
        let (x1_full, x2_full) = sub_tensors(6, 5);
        // Thin both tensors to create missingness.
        let thin = |x: &SparseTensor, m: usize| {
            let entries: Vec<(Vec<usize>, f64)> = x
                .iter()
                .enumerate()
                .filter(|(i, _)| i % m != 0)
                .map(|(_, e)| e)
                .collect();
            SparseTensor::from_entries(x.dims(), &entries).unwrap()
        };
        let x1 = thin(&x1_full, 3);
        let x2 = thin(&x2_full, 4);
        let opts = M2tdOptions {
            stitch: StitchKind::ZeroJoin,
            ..Default::default()
        };
        let serial = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], opts).unwrap();
        let dist = d_m2td(&x1, &x2, 1, &[2, 2, 2], opts, &MapReduce::new(3)).unwrap();
        let d = dist
            .tucker
            .core
            .sub(&serial.tucker.core)
            .unwrap()
            .frobenius_norm();
        assert!(d < 1e-9, "zero-join core mismatch: {d}");
    }

    #[test]
    fn mode_shuffle_phase3_matches_chunk_partition() {
        let (x1, x2) = sub_tensors(6, 5);
        let ranks = [3, 3, 3];
        let opts = M2tdOptions::default();
        let engine = MapReduce::new(3);
        let chunk = d_m2td_with_phase3(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
        )
        .unwrap();
        let shuffle = d_m2td_with_phase3(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ModeShuffle,
        )
        .unwrap();
        let d = chunk
            .tucker
            .core
            .sub(&shuffle.tucker.core)
            .unwrap()
            .frobenius_norm();
        assert!(d < 1e-9, "phase-3 strategies disagree by {d}");
        // The mode-shuffle dataflow moves more data (N jobs).
        assert!(shuffle.phase3.shuffle.shuffled_pairs >= chunk.phase3.shuffle.shuffled_pairs);
    }

    #[test]
    fn mode_shuffle_matches_serial_on_thin_inputs() {
        let (x1_full, x2_full) = sub_tensors(6, 5);
        let thin = |x: &SparseTensor, m: usize| {
            let entries: Vec<(Vec<usize>, f64)> = x
                .iter()
                .enumerate()
                .filter(|(i, _)| i % m != 0)
                .map(|(_, e)| e)
                .collect();
            SparseTensor::from_entries(x.dims(), &entries).unwrap()
        };
        let x1 = thin(&x1_full, 4);
        let x2 = thin(&x2_full, 3);
        let opts = M2tdOptions::default();
        let serial = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], opts).unwrap();
        let dist = d_m2td_with_phase3(
            &x1,
            &x2,
            1,
            &[2, 2, 2],
            opts,
            &MapReduce::new(2),
            Phase3Strategy::ModeShuffle,
        )
        .unwrap();
        let d = dist
            .tucker
            .core
            .sub(&serial.tucker.core)
            .unwrap()
            .frobenius_norm();
        assert!(d < 1e-9, "mode-shuffle disagrees with serial by {d}");
    }

    #[test]
    fn phase_stats_are_populated() {
        let (x1, x2) = sub_tensors(5, 4);
        let dist = d_m2td(
            &x1,
            &x2,
            1,
            &[2, 2, 2],
            M2tdOptions::default(),
            &MapReduce::new(2),
        )
        .unwrap();
        assert!(dist.phase1.shuffle.map_records > 0);
        assert!(dist.phase2.shuffle.shuffled_pairs > 0);
        assert!(dist.phase3.shuffle.reduce_groups >= 1);
        // Phase 2's shuffle moves every input entry.
        assert_eq!(dist.phase2.shuffle.map_records, x1.nnz() + x2.nnz());
        // Fault-free: attempts ran, nothing was killed, nothing resumed.
        assert!(dist.total_tasks().attempts() > 0);
        assert_eq!(dist.total_tasks().kills(), 0);
        assert!(!dist.phase1.resumed && !dist.phase2.resumed && !dist.phase3.resumed);
    }

    #[test]
    fn cluster_projection_shows_phase3_dominance() {
        let (x1, x2) = sub_tensors(8, 7);
        let dist = d_m2td(
            &x1,
            &x2,
            1,
            &[3, 3, 3],
            M2tdOptions::default(),
            &MapReduce::new(2),
        )
        .unwrap();
        let model = ClusterModel::new(4);
        let c3 = dist.phase3.on_cluster(&model);
        // Phase 3 shuffles the (much larger) join tensor.
        assert!(
            dist.phase3.shuffle.map_records > dist.phase2.shuffle.map_records,
            "join tensor should dwarf the input entries"
        );
        assert!(c3.total() > 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (x1, x2) = sub_tensors(4, 3);
        let e = MapReduce::new(2);
        assert!(d_m2td(&x1, &x2, 0, &[2, 2, 2], M2tdOptions::default(), &e).is_err());
        assert!(d_m2td(&x1, &x2, 1, &[2, 2], M2tdOptions::default(), &e).is_err());
        let empty = SparseTensor::empty(&[4, 3]);
        assert!(d_m2td(&x1, &empty, 1, &[2, 2, 2], M2tdOptions::default(), &e).is_err());
    }

    #[test]
    fn faulty_run_bitwise_matches_fault_free() {
        let (x1, x2) = sub_tensors(6, 5);
        let ranks = [3, 3, 3];
        let opts = M2tdOptions::default();
        let engine = MapReduce::new(3);
        let clean = d_m2td(&x1, &x2, 1, &ranks, opts, &engine).unwrap();
        let faults = FaultConfig {
            plan: FaultPlan::new(21, 0.5, 0.4, 30.0),
            policy: RetryPolicy::default(),
        };
        let faulty = d_m2td_fault_tolerant(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &faults,
            None,
        )
        .unwrap();
        assert_eq!(
            clean.tucker.core.as_slice(),
            faulty.tucker.core.as_slice(),
            "core not bitwise identical under faults"
        );
        for (a, b) in clean
            .tucker
            .factors
            .iter()
            .zip(faulty.tucker.factors.iter())
        {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert!(faulty.total_tasks().kills() > 0, "no kills injected");
    }

    #[test]
    fn channel_transport_matches_direct_bitwise() {
        let (x1, x2) = sub_tensors(6, 5);
        let ranks = [3, 3, 3];
        let opts = M2tdOptions::default();
        let direct = d_m2td(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &MapReduce::new(3).with_transport(crate::TransportKind::Direct),
        )
        .unwrap();
        let channel = d_m2td(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &MapReduce::new(3).with_transport(crate::TransportKind::Channel),
        )
        .unwrap();
        assert_eq!(
            direct.tucker.core.as_slice(),
            channel.tucker.core.as_slice(),
            "transport changed the core"
        );
        for (a, b) in direct
            .tucker
            .factors
            .iter()
            .zip(channel.tucker.factors.iter())
        {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn doomed_phase3_task_completes_degraded_then_converges_after_requeue() {
        let dir = unique_tmp_dir("m2td_dmtd_resume_unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = ManifestStore::open(&dir).unwrap();
        let (x1, x2) = sub_tensors(6, 5);
        let ranks = [3, 3, 3];
        let opts = M2tdOptions::default();
        let engine = MapReduce::new(2); // 2 phase-3 partitions
        let clean = d_m2td(&x1, &x2, 1, &ranks, opts, &engine).unwrap();

        // Run 1: partial core 1's every attempt dies — degraded result.
        let doomed = FaultConfig {
            plan: FaultPlan::none().in_job(PHASE3_JOB).with_doom_mask(1 << 1),
            policy: RetryPolicy::default(),
        };
        let dlq = DlqStore::open(&dir);
        let recovery = JobRecovery::new(&manifest, &dlq).with_min_coverage(0.5);
        let report = d_m2td_resumable(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &doomed,
            None,
            &recovery,
        )
        .unwrap();
        assert!(report.degraded);
        assert_eq!(report.dead_tasks, vec![1]);
        assert_eq!(dlq.depth(), 1);
        let entry = &dlq.entries()[0];
        assert_eq!((entry.job, entry.phase, entry.task), (PHASE3_JOB, 3, 1));
        assert_eq!(entry.attempts, RetryPolicy::default().max_attempts);
        // The degraded core differs from the clean one (cells missing).
        assert_ne!(
            report.dist.tucker.core.as_slice(),
            clean.tucker.core.as_slice()
        );

        // A tighter floor refuses the same degradation outright.
        let strict = JobRecovery::new(&manifest, &dlq).with_min_coverage(0.9);
        let err = d_m2td_resumable(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &doomed,
            None,
            &strict,
        )
        .unwrap_err();
        assert!(matches!(err, DistError::Worker(_)), "got {err}");

        // Run 2: requeue, drop the doom — converges to the clean result.
        assert_eq!(dlq.requeue_all().unwrap(), 1);
        let report2 = d_m2td_resumable(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &FaultConfig::none(),
            None,
            &recovery,
        )
        .unwrap();
        assert!(!report2.degraded);
        assert_eq!(report2.drained, 1);
        assert!(report2.resumed_tasks > 0, "manifest resumed nothing");
        assert_eq!(dlq.depth(), 0);
        assert_eq!(
            report2.dist.tucker.core.as_slice(),
            clean.tucker.core.as_slice(),
            "requeued run is not bitwise identical to the clean run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_phase1_task_is_a_hard_error_but_still_parks() {
        let dir = unique_tmp_dir("m2td_dmtd_p1dead_unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = ManifestStore::open(&dir).unwrap();
        let dlq = DlqStore::open(&dir);
        let (x1, x2) = sub_tensors(5, 4);
        // Phase 1 reduce task 0 (κ=1) is doomed: no degraded completion.
        let doomed = FaultConfig {
            plan: FaultPlan::none().in_job(PHASE1_JOB).with_doom_mask(1),
            policy: RetryPolicy::default(),
        };
        let recovery = JobRecovery::new(&manifest, &dlq);
        let err = d_m2td_resumable(
            &x1,
            &x2,
            1,
            &[2, 2, 2],
            M2tdOptions::default(),
            &MapReduce::new(2),
            Phase3Strategy::ChunkPartition,
            &doomed,
            None,
            &recovery,
        )
        .unwrap_err();
        assert!(matches!(err, DistError::Exhausted(_)), "got {err}");
        // The corpse is in the queue for forensics and requeue.
        assert_eq!(dlq.depth(), 1);
        assert_eq!(dlq.entries()[0].job, PHASE1_JOB);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_resumes_phases() {
        let dir = unique_tmp_dir("m2td_dmtd_ckpt_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir).unwrap();
        let (x1, x2) = sub_tensors(6, 5);
        let ranks = [3, 3, 3];
        let opts = M2tdOptions::default();
        let engine = MapReduce::new(2);
        let first = d_m2td_fault_tolerant(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &FaultConfig::none(),
            Some(&store),
        )
        .unwrap();
        assert!(!first.phase1.resumed && !first.phase2.resumed);
        let second = d_m2td_fault_tolerant(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &FaultConfig::none(),
            Some(&store),
        )
        .unwrap();
        assert!(second.phase1.resumed && second.phase2.resumed);
        assert_eq!(second.phase1.tasks.attempts(), 0);
        assert_eq!(second.phase2.tasks.attempts(), 0);
        assert!(second.phase3.tasks.attempts() > 0);
        assert_eq!(
            first.tucker.core.as_slice(),
            second.tucker.core.as_slice(),
            "resumed core differs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
