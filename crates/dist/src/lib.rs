//! D-M2TD — the distributed, 3-phase formulation of M2TD
//! (Section VI-D of the paper), plus the substrates it runs on.
//!
//! The paper deploys D-M2TD on an 18-node Hadoop cluster. This crate
//! substitutes (see DESIGN.md §4):
//!
//! * [`MapReduce`] — a real in-process map/shuffle/reduce engine on scoped
//!   threads, producing results bit-identical to serial execution;
//! * [`ClusterModel`] — an analytic cost model charging per-record compute
//!   to `W` virtual servers plus communication per shuffled byte, which
//!   reproduces Table III's *shape* (phase-3 dominance, diminishing
//!   returns in `W`) deterministically on one machine;
//! * [`d_m2td`] — the three phases themselves: parallel sub-tensor
//!   decomposition, parallel JE-stitching, parallel core recovery. The
//!   result matches the serial `m2td_core::m2td_decompose` to floating-
//!   point accumulation order.

//!
//! Fault tolerance (DESIGN.md §9): [`d_m2td_fault_tolerant`] runs the same
//! dataflow under a seeded [`FaultPlan`](m2td_fault::FaultPlan) with
//! retry/backoff and speculative re-execution, persisting phase boundaries
//! to a [`CheckpointStore`] so interrupted runs resume instead of
//! recomputing.

//!
//! Sharded execution (DESIGN.md §14): tasks can additionally cross a
//! [`Transport`] boundary as checksummed [`TaskEnvelope`]s, are scheduled
//! by a work-stealing wave scheduler, and exhausted tasks park in a
//! [`DlqStore`] dead-letter queue while a [`JobManifest`] records
//! per-phase completion for job-level resume.

mod checkpoint;
mod cluster;
mod dlq;
mod dmtd;
mod manifest;
mod mapreduce;
mod scheduler;
mod transport;

pub use checkpoint::{CheckpointError, CheckpointStore, Fingerprint};
pub use cluster::{ClusterModel, FailureModel, PhaseCost};
pub use dlq::{DlqEntry, DlqStore};
pub use dmtd::{
    d_m2td, d_m2td_fault_tolerant, d_m2td_resumable, d_m2td_with_phase3, DistDecomposition,
    DistError, FaultConfig, JobRecovery, Phase3Strategy, PhaseStats, ResumeReport, PHASE1_JOB,
    PHASE2_JOB, PHASE3_JOB,
};
pub use manifest::{JobManifest, ManifestStore, PhaseManifest};
pub use mapreduce::{MapReduce, ShuffleStats};
pub use transport::{
    ChannelTransport, DirectTransport, TaskEnvelope, Transport, TransportError, TransportKind,
};
