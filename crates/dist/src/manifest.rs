//! Job manifest: per-phase task completion for job-level resume.
//!
//! A [`JobManifest`] records, for each D-M2TD phase, which reduce tasks
//! have completed (with their serialized outputs) and which are dead
//! (parked in the dead-letter queue). A killed process restarted over
//! the same inputs loads the manifest, replays completed tasks from
//! their stored outputs, skips dead tasks that were not requeued, and
//! re-runs only the remainder. Map tasks are never recorded — a map
//! re-run is cheap, deterministic, and required anyway to rebuild the
//! shuffle groups the surviving reduce tasks consume.
//!
//! The manifest is persisted as a format-v2 record (`manifest.json`:
//! version, input fingerprint, checksum, atomic unique-temp write) in
//! the checkpoint directory. A record whose checksum fails or whose
//! fingerprint does not match the current inputs is treated as absent:
//! resuming over different inputs silently degrades to a full run
//! rather than stitching outputs from two different jobs.

use crate::checkpoint::Fingerprint;
use crate::checkpoint::{open_record, seal_record, write_atomic};
use m2td_json::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Completion bookkeeping for one phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseManifest {
    /// Total reduce tasks the phase schedules.
    pub total: u64,
    /// Completed reduce tasks, keyed by task id, with serialized outputs.
    pub completed: BTreeMap<u64, Json>,
    /// Reduce tasks whose retry budget was exhausted (parked in the DLQ).
    pub dead: BTreeSet<u64>,
}

impl ToJson for PhaseManifest {
    fn to_json(&self) -> Json {
        let completed = self
            .completed
            .iter()
            .map(|(task, out)| (task.to_string(), out.clone()))
            .collect();
        Json::Obj(vec![
            ("total".to_string(), self.total.to_json()),
            ("completed".to_string(), Json::Obj(completed)),
            (
                "dead".to_string(),
                Json::Arr(self.dead.iter().map(|t| t.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for PhaseManifest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let completed = match json.require("completed")? {
            Json::Obj(entries) => entries
                .iter()
                .map(|(k, v)| {
                    k.parse::<u64>()
                        .map(|task| (task, v.clone()))
                        .map_err(|_| JsonError::Invalid(format!("bad task id key {k:?}")))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            other => {
                return Err(JsonError::Invalid(format!(
                    "completed must be an object, got {other:?}"
                )))
            }
        };
        Ok(Self {
            total: u64::from_json(json.require("total")?)?,
            completed,
            dead: Vec::<u64>::from_json(json.require("dead")?)?
                .into_iter()
                .collect(),
        })
    }
}

/// Per-phase completion state of one job over one set of inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobManifest {
    /// Phase number (1–3) to its bookkeeping.
    pub phases: BTreeMap<u8, PhaseManifest>,
}

impl JobManifest {
    /// Ensures a phase entry exists with the given task total and returns
    /// it. A total that changed (different chunking) resets the phase —
    /// its recorded task ids no longer mean the same work.
    pub fn begin_phase(&mut self, phase: u8, total: u64) -> &mut PhaseManifest {
        let entry = self.phases.entry(phase).or_default();
        if entry.total != total {
            *entry = PhaseManifest {
                total,
                ..PhaseManifest::default()
            };
        }
        entry
    }

    /// The recorded output of a completed task, if any.
    pub fn completed_output(&self, phase: u8, task: u64) -> Option<&Json> {
        self.phases.get(&phase)?.completed.get(&task)
    }

    /// Whether the task is recorded dead.
    pub fn is_dead(&self, phase: u8, task: u64) -> bool {
        self.phases
            .get(&phase)
            .is_some_and(|p| p.dead.contains(&task))
    }

    /// Records a completed task with its serialized output, clearing any
    /// stale dead mark (a drained requeue).
    pub fn record_complete(&mut self, phase: u8, task: u64, output: Json) {
        let entry = self.phases.entry(phase).or_default();
        entry.dead.remove(&task);
        entry.completed.insert(task, output);
    }

    /// Records a task whose retry budget was exhausted.
    pub fn record_dead(&mut self, phase: u8, task: u64) {
        let entry = self.phases.entry(phase).or_default();
        entry.completed.remove(&task);
        entry.dead.insert(task);
    }
}

impl ToJson for JobManifest {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.phases
                .iter()
                .map(|(phase, p)| (phase.to_string(), p.to_json()))
                .collect(),
        )
    }
}

impl FromJson for JobManifest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Obj(entries) => Ok(Self {
                phases: entries
                    .iter()
                    .map(|(k, v)| {
                        let phase = k
                            .parse::<u8>()
                            .map_err(|_| JsonError::Invalid(format!("bad phase key {k:?}")))?;
                        Ok((phase, PhaseManifest::from_json(v)?))
                    })
                    .collect::<Result<BTreeMap<_, _>, JsonError>>()?,
            }),
            other => Err(JsonError::Invalid(format!(
                "manifest must be an object, got {other:?}"
            ))),
        }
    }
}

/// Loads and saves the manifest of a checkpoint directory.
#[derive(Debug, Clone)]
pub struct ManifestStore {
    dir: PathBuf,
}

impl ManifestStore {
    /// File name of the manifest inside a checkpoint directory.
    pub const FILE_NAME: &'static str = "manifest.json";

    /// Opens the store rooted at `dir`, creating the directory if needed.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path(&self) -> PathBuf {
        self.dir.join(Self::FILE_NAME)
    }

    /// Loads the manifest if one exists for exactly these inputs. A
    /// missing file, parse failure, checksum mismatch, stale version, or
    /// fingerprint for different inputs all yield `None`.
    pub fn load(&self, fingerprint: &Fingerprint) -> Option<JobManifest> {
        let text = std::fs::read_to_string(self.path()).ok()?;
        let doc = Json::parse(&text).ok()?;
        let (stored_fp, payload) = open_record(&doc)?;
        if *stored_fp != fingerprint.to_json() {
            m2td_obs::counter_add("manifest.fingerprint_mismatches", 1);
            return None;
        }
        JobManifest::from_json(payload).ok()
    }

    /// Atomically persists the manifest, sealed to the input fingerprint.
    pub fn save(&self, fingerprint: &Fingerprint, manifest: &JobManifest) -> Result<(), String> {
        let doc = seal_record(&fingerprint.to_json(), manifest.to_json());
        write_atomic(&self.path(), &doc.to_compact())
    }

    /// Removes the manifest file, if present.
    pub fn clear(&self) {
        let _ = std::fs::remove_file(self.path());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_core::M2tdOptions;
    use m2td_tensor::SparseTensor;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("m2td_manifest_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fp(k: usize) -> Fingerprint {
        let x1 =
            SparseTensor::from_entries(&[3, 2], &[(vec![0, 0], 1.0), (vec![2, 1], -0.5)]).unwrap();
        let x2 = SparseTensor::from_entries(&[3, 2], &[(vec![1, 1], 2.0)]).unwrap();
        Fingerprint::new(&x1, &x2, k, &[2, 2, 2], &M2tdOptions::default())
    }

    fn sample() -> JobManifest {
        let mut m = JobManifest::default();
        m.begin_phase(1, 3);
        m.record_complete(1, 0, Json::Str("out0".to_string()));
        m.record_complete(1, 2, Json::Str("out2".to_string()));
        m.record_dead(1, 1);
        m.begin_phase(3, 5);
        m.record_complete(3, 4, Json::Int(9));
        m
    }

    #[test]
    fn manifest_round_trips_by_fingerprint() {
        let store = ManifestStore::open(tmp_dir("roundtrip")).unwrap();
        let m = sample();
        store.save(&fp(7), &m).unwrap();
        assert_eq!(store.load(&fp(7)), Some(m));
        // A different input fingerprint must not resume from this state.
        assert_eq!(store.load(&fp(8)), None);
    }

    #[test]
    fn completion_clears_dead_and_vice_versa() {
        let mut m = sample();
        assert!(m.is_dead(1, 1));
        m.record_complete(1, 1, Json::Null);
        assert!(!m.is_dead(1, 1));
        assert!(m.completed_output(1, 1).is_some());
        m.record_dead(1, 1);
        assert!(m.completed_output(1, 1).is_none());
    }

    #[test]
    fn changed_totals_reset_a_phase() {
        let mut m = sample();
        assert_eq!(m.begin_phase(1, 3).completed.len(), 2);
        let entry = m.begin_phase(1, 4);
        assert_eq!(entry.total, 4);
        assert!(entry.completed.is_empty() && entry.dead.is_empty());
    }

    #[test]
    fn damaged_records_are_treated_as_absent() {
        let store = ManifestStore::open(tmp_dir("damaged")).unwrap();
        store.save(&fp(7), &sample()).unwrap();
        let path = store.path();
        let good = std::fs::read_to_string(&path).unwrap();

        std::fs::write(&path, good.replacen("out0", "out!", 1)).unwrap();
        assert_eq!(store.load(&fp(7)), None, "checksum must catch bit damage");

        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(store.load(&fp(7)), None, "truncation");

        store.clear();
        assert_eq!(store.load(&fp(7)), None);
    }
}
