//! A small, real MapReduce engine on the shared `m2td-par` worker pool.
//!
//! Deterministic: whatever the worker count, the reduce phase sees each
//! key's values in map-input order and keys are processed in sorted order,
//! so results are identical to a serial run.
//!
//! The *logical* worker count `W` (what [`MapReduce::new`] is given) keeps
//! its cluster semantics — input chunking and the cost model both depend
//! on it — but the *physical* thread count is additionally capped by
//! [`m2td_par::max_threads`], so `M2TD_THREADS` (or `--threads`) is the
//! one knob that governs all parallelism in the process.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Statistics of one MapReduce job, consumed by the cluster cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShuffleStats {
    /// Number of map input records.
    pub map_records: usize,
    /// Number of key/value pairs emitted by the map phase (these cross the
    /// network in a real deployment).
    pub shuffled_pairs: usize,
    /// Number of distinct reduce keys.
    pub reduce_groups: usize,
}

/// An in-process MapReduce engine with a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct MapReduce {
    workers: usize,
}

impl MapReduce {
    /// Creates an engine with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a job: `map` turns each input into key/value pairs; values are
    /// grouped by key (shuffle); `reduce` folds each group. Returns the
    /// reduce outputs in ascending key order plus shuffle statistics.
    ///
    /// ```
    /// use m2td_dist::MapReduce;
    ///
    /// let engine = MapReduce::new(4);
    /// let (sums, stats) = engine.run(
    ///     vec![1u32, 2, 3, 4, 5],
    ///     |x| vec![(x % 2, x)],                    // key by parity
    ///     |key, values| (*key, values.iter().sum::<u32>()),
    /// );
    /// assert_eq!(sums, vec![(0, 6), (1, 9)]);
    /// assert_eq!(stats.reduce_groups, 2);
    /// ```
    pub fn run<I, K, V, R, M, F>(&self, inputs: Vec<I>, map: M, reduce: F) -> (Vec<R>, ShuffleStats)
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        R: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        F: Fn(&K, Vec<V>) -> R + Sync,
    {
        let map_records = inputs.len();

        // ---- Map phase: chunk inputs across workers. ----
        // Each worker keeps (chunk_id, pairs) so the shuffle can restore
        // the original input order before grouping (determinism).
        let chunk_size = map_records.div_ceil(self.workers).max(1);
        let chunks: Vec<(usize, Vec<I>)> = {
            let mut out = Vec::new();
            let mut it = inputs.into_iter();
            let mut id = 0;
            loop {
                let chunk: Vec<I> = it.by_ref().take(chunk_size).collect();
                if chunk.is_empty() {
                    break;
                }
                out.push((id, chunk));
                id += 1;
            }
            out
        };

        type MappedChunks<K, V> = Mutex<Vec<(usize, Vec<(K, V)>)>>;
        let mapped: MappedChunks<K, V> = Mutex::new(Vec::new());
        let queue: Mutex<std::vec::IntoIter<(usize, Vec<I>)>> = Mutex::new(chunks.into_iter());
        m2td_par::run_workers(self.workers, || loop {
            let next = queue.lock().unwrap().next();
            match next {
                Some((id, chunk)) => {
                    let mut pairs = Vec::new();
                    for item in chunk {
                        pairs.extend(map(item));
                    }
                    mapped.lock().unwrap().push((id, pairs));
                }
                None => break,
            }
        });

        // ---- Shuffle: restore input order, group by key. ----
        let mut by_chunk = mapped.into_inner().unwrap();
        by_chunk.sort_by_key(|&(id, _)| id);
        let mut shuffled_pairs = 0;
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (_, pairs) in by_chunk {
            for (k, v) in pairs {
                shuffled_pairs += 1;
                groups.entry(k).or_default().push(v);
            }
        }
        let reduce_groups = groups.len();

        // ---- Reduce phase: distribute groups across workers. ----
        let indexed: Vec<(usize, K, Vec<V>)> = groups
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| (i, k, v))
            .collect();
        let reduced: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
        let rqueue: Mutex<std::vec::IntoIter<(usize, K, Vec<V>)>> = Mutex::new(indexed.into_iter());
        m2td_par::run_workers(self.workers, || loop {
            let next = rqueue.lock().unwrap().next();
            match next {
                Some((i, k, vs)) => {
                    let r = reduce(&k, vs);
                    reduced.lock().unwrap().push((i, r));
                }
                None => break,
            }
        });

        let mut results = reduced.into_inner().unwrap();
        results.sort_by_key(|&(i, _)| i);
        (
            results.into_iter().map(|(_, r)| r).collect(),
            ShuffleStats {
                map_records,
                shuffled_pairs,
                reduce_groups,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_style_job() {
        let engine = MapReduce::new(4);
        let docs = vec!["a b a", "b c", "a"];
        let (counts, stats) = engine.run(
            docs,
            |doc: &str| doc.split(' ').map(|w| (w.to_string(), 1usize)).collect(),
            |k, vs| (k.clone(), vs.len()),
        );
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
        assert_eq!(stats.map_records, 3);
        assert_eq!(stats.shuffled_pairs, 6);
        assert_eq!(stats.reduce_groups, 3);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let inputs: Vec<u64> = (0..500).collect();
        let job = |w: usize| {
            MapReduce::new(w).run(
                inputs.clone(),
                |x: u64| vec![(x % 7, x)],
                |k, vs| (*k, vs.iter().sum::<u64>(), vs.len()),
            )
        };
        let (serial, s_stats) = job(1);
        for w in [2, 3, 8, 32] {
            let (parallel, p_stats) = job(w);
            assert_eq!(serial, parallel, "worker count {w} changed results");
            assert_eq!(s_stats, p_stats);
        }
    }

    #[test]
    fn results_identical_under_global_thread_cap() {
        // The pool cap changes physical threads, never results.
        let inputs: Vec<u64> = (0..300).collect();
        let job = || {
            MapReduce::new(4).run(
                inputs.clone(),
                |x: u64| vec![(x % 5, x * x)],
                |k, vs| (*k, vs.iter().sum::<u64>()),
            )
        };
        m2td_par::set_max_threads(1);
        let capped = job();
        m2td_par::set_max_threads(8);
        let wide = job();
        m2td_par::set_max_threads(0);
        assert_eq!(capped, wide);
    }

    #[test]
    fn value_order_within_group_is_input_order() {
        let engine = MapReduce::new(5);
        let inputs: Vec<usize> = (0..100).collect();
        let (groups, _) = engine.run(inputs, |x: usize| vec![(x % 3, x)], |_k, vs| vs);
        for g in &groups {
            assert!(
                g.windows(2).all(|w| w[0] < w[1]),
                "group not in input order"
            );
        }
    }

    #[test]
    fn empty_input() {
        let engine = MapReduce::new(3);
        let (out, stats) = engine.run(
            Vec::<u32>::new(),
            |x: u32| vec![(x, x)],
            |_k, vs: Vec<u32>| vs.len(),
        );
        assert!(out.is_empty());
        assert_eq!(stats.map_records, 0);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let engine = MapReduce::new(0);
        assert_eq!(engine.workers(), 1);
        let (out, _) = engine.run(vec![1u8, 2], |x: u8| vec![((), x)], |_, vs: Vec<u8>| vs);
        assert_eq!(out, vec![vec![1, 2]]);
    }

    #[test]
    fn map_can_emit_multiple_keys() {
        let engine = MapReduce::new(2);
        let (out, stats) = engine.run(
            vec![10u32, 20],
            |x: u32| vec![(0u8, x), (1u8, x * 2)],
            |k, vs: Vec<u32>| (*k, vs.iter().sum::<u32>()),
        );
        assert_eq!(out, vec![(0, 30), (1, 60)]);
        assert_eq!(stats.shuffled_pairs, 4);
    }
}
