//! A small, real MapReduce engine on the shared `m2td-par` worker pool.
//!
//! Deterministic: whatever the worker count, the reduce phase sees each
//! key's values in map-input order and keys are processed in sorted order,
//! so results are identical to a serial run.
//!
//! The *logical* worker count `W` (what [`MapReduce::new`] is given) keeps
//! its cluster semantics — input chunking and the cost model both depend
//! on it — but the *physical* thread count is additionally capped by
//! [`m2td_par::max_threads`], so `M2TD_THREADS` (or `--threads`) is the
//! one knob that governs all parallelism in the process.
//!
//! ## Fault tolerance
//!
//! [`MapReduce::run_with_faults`] executes the same job under a seeded
//! [`FaultPlan`]: task attempts can be **killed** (output discarded, task
//! retried with deterministic virtual backoff, bounded by the
//! [`RetryPolicy`]) or can **straggle** (charged a virtual delay; delays
//! beyond the policy's speculation threshold launch a backup copy whose
//! identical result is used instead). Because map and reduce closures are
//! pure, any fault schedule that eventually succeeds yields outputs
//! bitwise identical to the fault-free run — faults only change the
//! [`TaskCounters`] and virtual time. A task killed on every allowed
//! attempt fails the job with [`FaultError::RetryExhausted`].

use m2td_fault::{FaultDecision, FaultError, FaultPlan, RetryPolicy, TaskCounters, TaskKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Statistics of one MapReduce job, consumed by the cluster cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShuffleStats {
    /// Number of map input records.
    pub map_records: usize,
    /// Number of key/value pairs emitted by the map phase (these cross the
    /// network in a real deployment).
    pub shuffled_pairs: usize,
    /// Number of distinct reduce keys.
    pub reduce_groups: usize,
}

/// An in-process MapReduce engine with a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct MapReduce {
    workers: usize,
}

/// Runs one task under the fault plan: retries kills with virtual backoff
/// until the policy's attempt budget is exhausted, charges (speculation-
/// capped) straggler delays, and reports what happened via a fresh
/// [`TaskCounters`]. `exec` must be pure — it is re-invoked on retry and
/// its output discarded for killed attempts.
fn attempt_task<T>(
    job: u64,
    kind: TaskKind,
    task: u64,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    exec: impl Fn() -> T,
) -> Result<(T, TaskCounters), FaultError> {
    let mut c = TaskCounters::default();
    let (attempts, kills) = match kind {
        TaskKind::Map => (&mut c.map_attempts, &mut c.map_kills),
        _ => (&mut c.reduce_attempts, &mut c.reduce_kills),
    };
    for attempt in 0..policy.max_attempts {
        match plan.decide(job, kind, task, attempt) {
            FaultDecision::Kill => {
                // The attempt ran partway before dying: execute and
                // discard, then back off in virtual time before retrying.
                let _ = exec();
                *attempts += 1;
                *kills += 1;
                if attempt + 1 == policy.max_attempts {
                    return Err(FaultError::RetryExhausted {
                        job,
                        kind,
                        task,
                        attempts: policy.max_attempts,
                    });
                }
                c.virtual_lost_secs += policy.backoff_secs(attempt + 1);
            }
            FaultDecision::Straggle(delay) => {
                let out = exec();
                *attempts += 1;
                c.stragglers += 1;
                if policy.speculates(delay) {
                    // The backup copy re-executes the pure task; its
                    // identical output wins, capping the injected delay.
                    let _ = exec();
                    *attempts += 1;
                    c.speculative_launches += 1;
                }
                c.virtual_lost_secs += policy.charged_straggle_secs(delay);
                return Ok((out, c));
            }
            FaultDecision::Ok => {
                let out = exec();
                *attempts += 1;
                return Ok((out, c));
            }
        }
    }
    unreachable!("attempt loop always returns within the policy budget")
}

/// Per-worker fold state shared across the task queue of one phase:
/// `(task_id, output)` pairs plus counter deltas keyed by task id so the
/// final merge is independent of scheduling order.
struct PhaseState<T> {
    outputs: Vec<(usize, T)>,
    counters: Vec<(usize, TaskCounters)>,
    error: Option<FaultError>,
}

impl<T> PhaseState<T> {
    fn new() -> Self {
        Self {
            outputs: Vec::new(),
            counters: Vec::new(),
            error: None,
        }
    }
}

impl MapReduce {
    /// Creates an engine with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a job: `map` turns each input into key/value pairs; values are
    /// grouped by key (shuffle); `reduce` folds each group. Returns the
    /// reduce outputs in ascending key order plus shuffle statistics.
    ///
    /// ```
    /// use m2td_dist::MapReduce;
    ///
    /// let engine = MapReduce::new(4);
    /// let (sums, stats) = engine.run(
    ///     vec![1u32, 2, 3, 4, 5],
    ///     |x| vec![(x % 2, x)],                    // key by parity
    ///     |key, values| (*key, values.iter().sum::<u32>()),
    /// );
    /// assert_eq!(sums, vec![(0, 6), (1, 9)]);
    /// assert_eq!(stats.reduce_groups, 2);
    /// ```
    pub fn run<I, K, V, R, M, F>(&self, inputs: Vec<I>, map: M, reduce: F) -> (Vec<R>, ShuffleStats)
    where
        I: Send + Clone,
        K: Ord + Send,
        V: Send + Clone,
        R: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        F: Fn(&K, Vec<V>) -> R + Sync,
    {
        let (out, stats, _) = self
            .run_with_faults(
                0,
                inputs,
                map,
                reduce,
                &FaultPlan::none(),
                &RetryPolicy::default(),
            )
            .expect("a fault-free job cannot exhaust its retry budget");
        (out, stats)
    }

    /// [`MapReduce::run`] under a fault plan: map chunks and reduce groups
    /// are the retryable task units, identified as `(job, kind, index)`.
    /// Returns the reduce outputs, shuffle statistics, and the execution
    /// counters accumulated across both task phases; fails with
    /// [`FaultError::RetryExhausted`] when a task is killed on every
    /// attempt the `policy` allows.
    ///
    /// Counters are deterministic for a given `(plan, policy, job, W)` —
    /// fault decisions depend only on task identity, and per-task deltas
    /// are merged in task order, so the physical thread count never shows
    /// through.
    pub fn run_with_faults<I, K, V, R, M, F>(
        &self,
        job: u64,
        inputs: Vec<I>,
        map: M,
        reduce: F,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<(Vec<R>, ShuffleStats, TaskCounters), FaultError>
    where
        I: Send + Clone,
        K: Ord + Send,
        V: Send + Clone,
        R: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        F: Fn(&K, Vec<V>) -> R + Sync,
    {
        let _span = m2td_obs::span!("mapreduce.job", job = job);
        let map_records = inputs.len();
        let mut totals = TaskCounters::default();

        // ---- Map phase: chunk inputs across workers. ----
        // Each worker keeps (chunk_id, pairs) so the shuffle can restore
        // the original input order before grouping (determinism).
        let chunk_size = map_records.div_ceil(self.workers).max(1);
        let chunks: Vec<(usize, Vec<I>)> = {
            let mut out = Vec::new();
            let mut it = inputs.into_iter();
            let mut id = 0;
            loop {
                let chunk: Vec<I> = it.by_ref().take(chunk_size).collect();
                if chunk.is_empty() {
                    break;
                }
                out.push((id, chunk));
                id += 1;
            }
            out
        };

        let state: Mutex<PhaseState<Vec<(K, V)>>> = Mutex::new(PhaseState::new());
        let failed = AtomicBool::new(false);
        let queue: Mutex<std::vec::IntoIter<(usize, Vec<I>)>> = Mutex::new(chunks.into_iter());
        m2td_par::run_workers(self.workers, || loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let next = queue.lock().unwrap().next();
            match next {
                Some((id, chunk)) => {
                    let result = attempt_task(job, TaskKind::Map, id as u64, plan, policy, || {
                        let mut pairs = Vec::new();
                        for item in chunk.iter().cloned() {
                            pairs.extend(map(item));
                        }
                        pairs
                    });
                    let mut s = state.lock().unwrap();
                    match result {
                        Ok((pairs, c)) => {
                            s.outputs.push((id, pairs));
                            s.counters.push((id, c));
                        }
                        Err(e) => {
                            s.error = Some(e);
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                }
                None => break,
            }
        });
        let map_state = state.into_inner().unwrap();
        if let Some(e) = map_state.error {
            return Err(e);
        }
        let mut deltas = map_state.counters;
        deltas.sort_by_key(|&(id, _)| id);
        for (_, c) in &deltas {
            totals.absorb(c);
        }

        // ---- Shuffle: restore input order, group by key. ----
        let mut by_chunk = map_state.outputs;
        by_chunk.sort_by_key(|&(id, _)| id);
        let mut shuffled_pairs = 0;
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (_, pairs) in by_chunk {
            for (k, v) in pairs {
                shuffled_pairs += 1;
                groups.entry(k).or_default().push(v);
            }
        }
        let reduce_groups = groups.len();

        // ---- Reduce phase: distribute groups across workers. ----
        let indexed: Vec<(usize, K, Vec<V>)> = groups
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| (i, k, v))
            .collect();
        let state: Mutex<PhaseState<R>> = Mutex::new(PhaseState::new());
        let failed = AtomicBool::new(false);
        let rqueue: Mutex<std::vec::IntoIter<(usize, K, Vec<V>)>> = Mutex::new(indexed.into_iter());
        m2td_par::run_workers(self.workers, || loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let next = rqueue.lock().unwrap().next();
            match next {
                Some((i, k, vs)) => {
                    let result =
                        attempt_task(job, TaskKind::Reduce, i as u64, plan, policy, || {
                            reduce(&k, vs.clone())
                        });
                    let mut s = state.lock().unwrap();
                    match result {
                        Ok((r, c)) => {
                            s.outputs.push((i, r));
                            s.counters.push((i, c));
                        }
                        Err(e) => {
                            s.error = Some(e);
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                }
                None => break,
            }
        });
        let reduce_state = state.into_inner().unwrap();
        if let Some(e) = reduce_state.error {
            return Err(e);
        }
        let mut deltas = reduce_state.counters;
        deltas.sort_by_key(|&(id, _)| id);
        for (_, c) in &deltas {
            totals.absorb(c);
        }

        // Mirror the job's task counters into the telemetry registry so a
        // metrics snapshot reports the same numbers the caller receives.
        if m2td_obs::installed() {
            m2td_obs::counter_add("mr.map_attempts", totals.map_attempts as u64);
            m2td_obs::counter_add("mr.map_kills", totals.map_kills as u64);
            m2td_obs::counter_add("mr.reduce_attempts", totals.reduce_attempts as u64);
            m2td_obs::counter_add("mr.reduce_kills", totals.reduce_kills as u64);
            m2td_obs::counter_add("mr.retries", totals.kills() as u64);
            m2td_obs::counter_add("mr.stragglers", totals.stragglers as u64);
            m2td_obs::counter_add(
                "mr.speculative_launches",
                totals.speculative_launches as u64,
            );
            m2td_obs::gauge_add("mr.virtual_lost_secs", totals.virtual_lost_secs);
        }

        let mut results = reduce_state.outputs;
        results.sort_by_key(|&(i, _)| i);
        Ok((
            results.into_iter().map(|(_, r)| r).collect(),
            ShuffleStats {
                map_records,
                shuffled_pairs,
                reduce_groups,
            },
            totals,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_style_job() {
        let engine = MapReduce::new(4);
        let docs = vec!["a b a", "b c", "a"];
        let (counts, stats) = engine.run(
            docs,
            |doc: &str| doc.split(' ').map(|w| (w.to_string(), 1usize)).collect(),
            |k, vs| (k.clone(), vs.len()),
        );
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
        assert_eq!(stats.map_records, 3);
        assert_eq!(stats.shuffled_pairs, 6);
        assert_eq!(stats.reduce_groups, 3);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let inputs: Vec<u64> = (0..500).collect();
        let job = |w: usize| {
            MapReduce::new(w).run(
                inputs.clone(),
                |x: u64| vec![(x % 7, x)],
                |k, vs| (*k, vs.iter().sum::<u64>(), vs.len()),
            )
        };
        let (serial, s_stats) = job(1);
        for w in [2, 3, 8, 32] {
            let (parallel, p_stats) = job(w);
            assert_eq!(serial, parallel, "worker count {w} changed results");
            assert_eq!(s_stats, p_stats);
        }
    }

    #[test]
    fn results_identical_under_global_thread_cap() {
        // The pool cap changes physical threads, never results.
        let inputs: Vec<u64> = (0..300).collect();
        let job = || {
            MapReduce::new(4).run(
                inputs.clone(),
                |x: u64| vec![(x % 5, x * x)],
                |k, vs| (*k, vs.iter().sum::<u64>()),
            )
        };
        m2td_par::set_max_threads(1);
        let capped = job();
        m2td_par::set_max_threads(8);
        let wide = job();
        m2td_par::set_max_threads(0);
        assert_eq!(capped, wide);
    }

    #[test]
    fn value_order_within_group_is_input_order() {
        let engine = MapReduce::new(5);
        let inputs: Vec<usize> = (0..100).collect();
        let (groups, _) = engine.run(inputs, |x: usize| vec![(x % 3, x)], |_k, vs| vs);
        for g in &groups {
            assert!(
                g.windows(2).all(|w| w[0] < w[1]),
                "group not in input order"
            );
        }
    }

    #[test]
    fn empty_input() {
        let engine = MapReduce::new(3);
        let (out, stats) = engine.run(
            Vec::<u32>::new(),
            |x: u32| vec![(x, x)],
            |_k, vs: Vec<u32>| vs.len(),
        );
        assert!(out.is_empty());
        assert_eq!(stats.map_records, 0);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let engine = MapReduce::new(0);
        assert_eq!(engine.workers(), 1);
        let (out, _) = engine.run(vec![1u8, 2], |x: u8| vec![((), x)], |_, vs: Vec<u8>| vs);
        assert_eq!(out, vec![vec![1, 2]]);
    }

    #[test]
    fn map_can_emit_multiple_keys() {
        let engine = MapReduce::new(2);
        let (out, stats) = engine.run(
            vec![10u32, 20],
            |x: u32| vec![(0u8, x), (1u8, x * 2)],
            |k, vs: Vec<u32>| (*k, vs.iter().sum::<u32>()),
        );
        assert_eq!(out, vec![(0, 30), (1, 60)]);
        assert_eq!(stats.shuffled_pairs, 4);
    }

    type SummingRun = (Vec<(u64, u64)>, ShuffleStats, TaskCounters);

    fn summing_job(
        engine: &MapReduce,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<SummingRun, FaultError> {
        engine.run_with_faults(
            7,
            (0..400u64).collect(),
            |x: u64| vec![(x % 5, x)],
            |k, vs| (*k, vs.iter().sum::<u64>()),
            plan,
            policy,
        )
    }

    #[test]
    fn faulty_run_matches_fault_free_run() {
        let engine = MapReduce::new(4);
        let (clean, clean_stats, clean_counters) =
            summing_job(&engine, &FaultPlan::none(), &RetryPolicy::default()).unwrap();
        assert_eq!(clean_counters.kills(), 0);
        for seed in [1, 2, 3] {
            let plan = FaultPlan::new(seed, 0.4, 0.3, 20.0);
            let (faulty, stats, counters) =
                summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
            assert_eq!(clean, faulty, "seed {seed} changed results");
            assert_eq!(clean_stats, stats);
            assert!(counters.attempts() >= clean_counters.attempts());
        }
    }

    #[test]
    fn counters_are_deterministic_across_thread_caps() {
        let engine = MapReduce::new(4);
        let plan = FaultPlan::new(5, 0.5, 0.4, 30.0);
        m2td_par::set_max_threads(1);
        let serial = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        m2td_par::set_max_threads(8);
        let wide = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        m2td_par::set_max_threads(0);
        assert_eq!(serial, wide);
        assert!(serial.2.kills() > 0, "plan injected no kills");
    }

    #[test]
    fn kills_are_retried_and_counted() {
        let engine = MapReduce::new(2);
        // Kill every first attempt; the cap lets attempt 1 through.
        let plan = FaultPlan::new(1, 1.0, 0.0, 0.0).with_kill_cap(1);
        let (out, _, counters) = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        assert_eq!(out.len(), 5);
        // 2 map chunks + 5 reduce groups, each killed exactly once.
        assert_eq!(counters.map_kills, 2);
        assert_eq!(counters.reduce_kills, 5);
        assert_eq!(counters.map_attempts, 4);
        assert_eq!(counters.reduce_attempts, 10);
        assert!(counters.virtual_lost_secs > 0.0);
    }

    #[test]
    fn exhausted_retry_budget_is_an_error() {
        let engine = MapReduce::new(2);
        let plan = FaultPlan::new(1, 1.0, 0.0, 0.0).with_kill_cap(u32::MAX);
        let err = summing_job(&engine, &plan, &RetryPolicy::with_max_attempts(3)).unwrap_err();
        match err {
            FaultError::RetryExhausted { attempts, .. } => assert_eq!(attempts, 3),
        }
    }

    #[test]
    fn stragglers_trigger_speculation() {
        let engine = MapReduce::new(2);
        // Every attempt straggles 60s; default policy speculates after 5s.
        let plan = FaultPlan::new(2, 0.0, 1.0, 60.0);
        let (out, _, counters) = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(counters.stragglers, 7); // 2 map + 5 reduce tasks
        assert_eq!(counters.speculative_launches, 7);
        // Charged delay is capped at the speculation threshold.
        assert!((counters.virtual_lost_secs - 7.0 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn scoped_plan_leaves_other_jobs_alone() {
        let engine = MapReduce::new(2);
        let plan = FaultPlan::new(3, 1.0, 0.0, 0.0).in_job(99);
        // Job 7 is untouched even though the kill rate is 1.
        let (_, _, counters) = summing_job(&engine, &plan, &RetryPolicy::no_retries()).unwrap();
        assert_eq!(counters.kills(), 0);
    }
}
