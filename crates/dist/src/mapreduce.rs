//! A small, real MapReduce engine on the shared `m2td-par` worker pool.
//!
//! Deterministic: whatever the worker count, the reduce phase sees each
//! key's values in map-input order and keys are processed in sorted order,
//! so results are identical to a serial run.
//!
//! The *logical* worker count `W` (what [`MapReduce::new`] is given) keeps
//! its cluster semantics — input chunking and the cost model both depend
//! on it — but the *physical* thread count is additionally capped by
//! [`m2td_par::max_threads`], so `M2TD_THREADS` (or `--threads`) is the
//! one knob that governs all parallelism in the process.
//!
//! Tasks are executed by the work-stealing wave scheduler
//! ([`crate::scheduler`]): map chunks and reduce groups are dealt onto
//! per-worker deques and idle workers steal from busy ones, so a
//! straggling worker no longer strands the tail of its share. Outputs and
//! counters are merged in task-id order, keeping the determinism contract
//! independent of who ran what.
//!
//! ## Fault tolerance
//!
//! [`MapReduce::run_with_faults`] executes the same job under a seeded
//! [`FaultPlan`]: task attempts can be **killed** (output discarded, task
//! retried with deterministic virtual backoff, bounded by the
//! [`RetryPolicy`]) or can **straggle** (charged a virtual delay; delays
//! beyond the policy's speculation threshold launch a backup copy whose
//! identical result is used instead). Because map and reduce closures are
//! pure, any fault schedule that eventually succeeds yields outputs
//! bitwise identical to the fault-free run — faults only change the
//! [`TaskCounters`] and virtual time. A task killed on every allowed
//! attempt fails the job with [`FaultError::RetryExhausted`].
//!
//! ## Sharded execution
//!
//! [`MapReduce::run_sharded`] additionally moves every task's inputs and
//! outputs across the configured [`TransportKind`] as checksummed
//! [`TaskEnvelope`]s (a dropped or corrupted envelope counts as a failed
//! attempt and retries), consults a [`WaveRecovery`] hook so completed
//! reduce tasks resume from recorded outputs, and *parks* exhausted
//! reduce tasks instead of failing — the caller routes them to the
//! dead-letter queue and decides whether coverage allows a degraded
//! result.

use crate::scheduler::{run_wave, DeadTask, WaveSpec};
use crate::transport::{ChannelTransport, TaskEnvelope, Transport, TransportError, TransportKind};
use m2td_fault::{FaultError, FaultPlan, RetryPolicy, TaskCounters, TaskKind};
use m2td_json::{FromJson, Json, ToJson};
use std::collections::{BTreeMap, BTreeSet};

/// Statistics of one MapReduce job, consumed by the cluster cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShuffleStats {
    /// Number of map input records.
    pub map_records: usize,
    /// Number of key/value pairs emitted by the map phase (these cross the
    /// network in a real deployment).
    pub shuffled_pairs: usize,
    /// Number of distinct reduce keys.
    pub reduce_groups: usize,
}

/// An in-process MapReduce engine with a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct MapReduce {
    workers: usize,
    transport: TransportKind,
}

/// What a previous run already decided about one reduce task.
pub(crate) enum TaskState {
    /// Never attempted (or unknown): run it.
    Fresh,
    /// Completed earlier; the serialized output to resume from.
    Completed(Json),
    /// Retry budget exhausted earlier. `requeued` tasks get a fresh run;
    /// the rest are skipped and the phase completes without them.
    Dead { requeued: bool },
}

/// Resume/dead-letter hooks consulted by [`MapReduce::run_sharded`] for
/// the reduce wave of one phase. Implementations persist to the job
/// manifest and dead-letter queue; callbacks may arrive from any worker
/// thread, but at most once per task and only for accepted results.
pub(crate) trait WaveRecovery: Sync {
    /// The phase is about to schedule `total` reduce tasks.
    fn begin_phase(&self, total: u64);
    /// What a previous run recorded for this task.
    fn task_state(&self, task: u64) -> TaskState;
    /// The task completed; `output` is its serialized result.
    fn record_complete(&self, task: u64, output: &Json);
    /// The task exhausted its budget; `envelope` carries its identity and
    /// serialized input for the dead-letter queue.
    fn record_dead(&self, dead: &DeadTask, envelope: &TaskEnvelope);
    /// A previously-dead, requeued task just completed.
    fn record_revived(&self, task: u64);
}

/// Parameters of one sharded run.
pub(crate) struct ShardedRun<'a> {
    /// Job id (fault-plan scope and envelope identity).
    pub job: u64,
    /// D-M2TD phase number stamped into envelopes.
    pub phase: u8,
    /// Fault plan injected into every attempt and into the wire.
    pub plan: &'a FaultPlan,
    /// Retry/backoff/speculation policy.
    pub policy: &'a RetryPolicy,
    /// Resume and dead-letter hooks; `None` restores fail-fast behavior.
    pub recovery: Option<&'a dyn WaveRecovery>,
}

/// What a sharded run produced.
#[derive(Debug)]
pub(crate) struct ShardedOutput<R> {
    /// `(task, output)` for every surviving reduce task — freshly run or
    /// resumed from the manifest — ascending by task id.
    pub outputs: Vec<(u64, R)>,
    /// Shuffle statistics (always reflect the full job, resumed or not).
    pub stats: ShuffleStats,
    /// Execution counters for the tasks that actually ran.
    pub counters: TaskCounters,
    /// Reduce tasks that exhausted their budget in *this* run.
    pub dead: Vec<DeadTask>,
    /// Reduce tasks recorded dead by a previous run and not requeued.
    pub skipped_dead: Vec<u64>,
    /// Reduce tasks replayed from recorded outputs instead of re-running.
    pub resumed: usize,
    /// Total reduce tasks the phase scheduled.
    pub reduce_tasks: u64,
}

/// Serializes `value` into an envelope, pushes it across the transport,
/// and decodes the survivor. The checksum guarantees wire damage surfaces
/// here as an error (a retryable failed attempt), never as silent data
/// corruption downstream.
#[allow(clippy::too_many_arguments)] // the envelope identity header, spelled out
fn ship<T: ToJson, U: FromJson>(
    transport: &ChannelTransport,
    job: u64,
    phase: u8,
    kind: TaskKind,
    task: u64,
    attempt: u32,
    leg: u32,
    value: &T,
) -> Result<U, TransportError> {
    let envelope = TaskEnvelope::new(
        job,
        phase,
        kind,
        task,
        attempt,
        value.to_json().to_compact(),
    );
    let delivered = transport.deliver(&envelope, leg)?;
    let doc = Json::parse(&delivered.payload)
        .map_err(|e| TransportError::Malformed(format!("payload parse: {e}")))?;
    U::from_json(&doc).map_err(|e| TransportError::Malformed(format!("payload decode: {e}")))
}

/// Splits inputs into at most `workers` contiguous chunks in input order.
fn chunk_inputs<I>(inputs: Vec<I>, workers: usize) -> Vec<Vec<I>> {
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    let mut out = Vec::new();
    let mut it = inputs.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        out.push(chunk);
    }
    out
}

/// Mirrors a job's task counters into the telemetry registry so a metrics
/// snapshot reports the same numbers the caller receives.
fn mirror_counters(totals: &TaskCounters) {
    if !m2td_obs::installed() {
        return;
    }
    m2td_obs::counter_add("mr.map_attempts", totals.map_attempts as u64);
    m2td_obs::counter_add("mr.map_kills", totals.map_kills as u64);
    m2td_obs::counter_add("mr.reduce_attempts", totals.reduce_attempts as u64);
    m2td_obs::counter_add("mr.reduce_kills", totals.reduce_kills as u64);
    m2td_obs::counter_add("mr.retries", totals.kills() as u64);
    m2td_obs::counter_add("mr.stragglers", totals.stragglers as u64);
    m2td_obs::counter_add(
        "mr.speculative_launches",
        totals.speculative_launches as u64,
    );
    m2td_obs::counter_add("mr.xport_corruptions", totals.xport_corruptions as u64);
    m2td_obs::gauge_add("mr.virtual_lost_secs", totals.virtual_lost_secs);
}

impl MapReduce {
    /// Creates an engine with `workers` threads (at least 1). The
    /// transport defaults to the `M2TD_TRANSPORT` environment variable
    /// (in-process direct calls unless it says `channel`).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            transport: TransportKind::from_env(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Selects how sharded tasks cross the worker boundary.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// The configured transport.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// Runs a job: `map` turns each input into key/value pairs; values are
    /// grouped by key (shuffle); `reduce` folds each group. Returns the
    /// reduce outputs in ascending key order plus shuffle statistics.
    ///
    /// ```
    /// use m2td_dist::MapReduce;
    ///
    /// let engine = MapReduce::new(4);
    /// let (sums, stats) = engine.run(
    ///     vec![1u32, 2, 3, 4, 5],
    ///     |x| vec![(x % 2, x)],                    // key by parity
    ///     |key, values| (*key, values.iter().sum::<u32>()),
    /// );
    /// assert_eq!(sums, vec![(0, 6), (1, 9)]);
    /// assert_eq!(stats.reduce_groups, 2);
    /// ```
    pub fn run<I, K, V, R, M, F>(&self, inputs: Vec<I>, map: M, reduce: F) -> (Vec<R>, ShuffleStats)
    where
        I: Send + Sync + Clone,
        K: Ord + Send + Sync,
        V: Send + Sync + Clone,
        R: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        F: Fn(&K, Vec<V>) -> R + Sync,
    {
        let (out, stats, _) = self
            .run_with_faults(
                0,
                inputs,
                map,
                reduce,
                &FaultPlan::none(),
                &RetryPolicy::default(),
            )
            .expect("a fault-free job cannot exhaust its retry budget");
        (out, stats)
    }

    /// [`MapReduce::run`] under a fault plan: map chunks and reduce groups
    /// are the retryable task units, identified as `(job, kind, index)`.
    /// Returns the reduce outputs, shuffle statistics, and the execution
    /// counters accumulated across both task phases; fails with
    /// [`FaultError::RetryExhausted`] when a task is killed on every
    /// attempt the `policy` allows.
    ///
    /// Counters are deterministic for a given `(plan, policy, job, W)` —
    /// fault decisions depend only on task identity, and per-task deltas
    /// are merged in task order, so the physical thread count never shows
    /// through.
    pub fn run_with_faults<I, K, V, R, M, F>(
        &self,
        job: u64,
        inputs: Vec<I>,
        map: M,
        reduce: F,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<(Vec<R>, ShuffleStats, TaskCounters), FaultError>
    where
        I: Send + Sync + Clone,
        K: Ord + Send + Sync,
        V: Send + Sync + Clone,
        R: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        F: Fn(&K, Vec<V>) -> R + Sync,
    {
        let _span = m2td_obs::span!("mapreduce.job", job = job);
        let map_records = inputs.len();
        let mut totals = TaskCounters::default();

        // ---- Map phase: chunk inputs, one task per chunk. ----
        let chunks = chunk_inputs(inputs, self.workers);
        let map_tasks: Vec<u64> = (0..chunks.len() as u64).collect();
        let map_wave = run_wave(
            &WaveSpec {
                job,
                kind: TaskKind::Map,
                workers: self.workers,
                plan,
                policy,
                park_exhausted: false,
            },
            &map_tasks,
            |t, _attempt| {
                let mut pairs = Vec::new();
                for item in chunks[t as usize].iter().cloned() {
                    pairs.extend(map(item));
                }
                Ok::<_, TransportError>(pairs)
            },
            |_, _| {},
        )?;
        totals.absorb(&map_wave.counters);

        // ---- Shuffle: chunk order = input order, group by key. ----
        let mut shuffled_pairs = 0;
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (_, pairs) in map_wave.outputs {
            for (k, v) in pairs {
                shuffled_pairs += 1;
                groups.entry(k).or_default().push(v);
            }
        }
        let reduce_groups = groups.len();

        // ---- Reduce phase: one task per key group, in key order. ----
        let indexed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
        let reduce_tasks: Vec<u64> = (0..indexed.len() as u64).collect();
        let reduce_wave = run_wave(
            &WaveSpec {
                job,
                kind: TaskKind::Reduce,
                workers: self.workers,
                plan,
                policy,
                park_exhausted: false,
            },
            &reduce_tasks,
            |t, _attempt| {
                let (k, vs) = &indexed[t as usize];
                Ok::<_, TransportError>(reduce(k, vs.clone()))
            },
            |_, _| {},
        )?;
        totals.absorb(&reduce_wave.counters);
        mirror_counters(&totals);

        Ok((
            reduce_wave.outputs.into_iter().map(|(_, r)| r).collect(),
            ShuffleStats {
                map_records,
                shuffled_pairs,
                reduce_groups,
            },
            totals,
        ))
    }

    /// [`MapReduce::run_with_faults`] with the full distribution story:
    /// task inputs and outputs cross the configured transport as
    /// checksummed envelopes (both legs of every attempt), completed
    /// reduce tasks resume from the recovery hook's recorded outputs,
    /// and exhausted reduce tasks are parked for the dead-letter queue
    /// instead of failing the job (map exhaustion still fails — without
    /// its pairs the shuffle groups are wrong for every reducer).
    pub(crate) fn run_sharded<I, K, V, R, M, F>(
        &self,
        run: &ShardedRun<'_>,
        inputs: Vec<I>,
        map: M,
        reduce: F,
    ) -> Result<ShardedOutput<R>, FaultError>
    where
        I: Send + Sync + Clone + ToJson + FromJson,
        K: Ord + Send + Sync + Clone + ToJson + FromJson,
        V: Send + Sync + Clone + ToJson + FromJson,
        R: Send + ToJson + FromJson,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        F: Fn(&K, Vec<V>) -> R + Sync,
    {
        // Same span label as run_with_faults: telemetry consumers see one
        // job taxonomy whichever execution path ran.
        let _span = m2td_obs::span!("mapreduce.job", job = run.job);
        let map_records = inputs.len();
        let mut totals = TaskCounters::default();
        let transport = match self.transport {
            TransportKind::Channel => Some(ChannelTransport::new(*run.plan)),
            TransportKind::Direct => None,
        };

        // ---- Map phase (never parked, never resumed). ----
        let chunks = chunk_inputs(inputs, self.workers);
        let map_tasks: Vec<u64> = (0..chunks.len() as u64).collect();
        let map_wave = run_wave(
            &WaveSpec {
                job: run.job,
                kind: TaskKind::Map,
                workers: self.workers,
                plan: run.plan,
                policy: run.policy,
                park_exhausted: false,
            },
            &map_tasks,
            |t, attempt| {
                let chunk = &chunks[t as usize];
                let input: Vec<I> = match &transport {
                    Some(ch) => ship(ch, run.job, run.phase, TaskKind::Map, t, attempt, 0, chunk)?,
                    None => chunk.clone(),
                };
                let mut pairs: Vec<(K, V)> = Vec::new();
                for item in input {
                    pairs.extend(map(item));
                }
                match &transport {
                    Some(ch) => ship(ch, run.job, run.phase, TaskKind::Map, t, attempt, 1, &pairs),
                    None => Ok(pairs),
                }
            },
            |_, _| {},
        )?;
        totals.absorb(&map_wave.counters);

        // ---- Shuffle. ----
        let mut shuffled_pairs = 0;
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (_, pairs) in map_wave.outputs {
            for (k, v) in pairs {
                shuffled_pairs += 1;
                groups.entry(k).or_default().push(v);
            }
        }
        let stats = ShuffleStats {
            map_records,
            shuffled_pairs,
            reduce_groups: groups.len(),
        };

        // ---- Triage reduce tasks against the previous run's record. ----
        let indexed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
        let total = indexed.len() as u64;
        if let Some(rec) = run.recovery {
            rec.begin_phase(total);
        }
        let mut to_run: Vec<u64> = Vec::new();
        let mut resumed_outputs: Vec<(u64, R)> = Vec::new();
        let mut skipped_dead: Vec<u64> = Vec::new();
        let mut revived: BTreeSet<u64> = BTreeSet::new();
        for t in 0..total {
            match run.recovery.map(|r| r.task_state(t)) {
                None | Some(TaskState::Fresh) => to_run.push(t),
                Some(TaskState::Completed(doc)) => match R::from_json(&doc) {
                    Ok(r) => resumed_outputs.push((t, r)),
                    // An undecodable recorded output is recomputed, not
                    // trusted.
                    Err(_) => to_run.push(t),
                },
                Some(TaskState::Dead { requeued: true }) => {
                    revived.insert(t);
                    to_run.push(t);
                }
                Some(TaskState::Dead { requeued: false }) => skipped_dead.push(t),
            }
        }
        let resumed = resumed_outputs.len();
        if resumed > 0 {
            m2td_obs::counter_add("manifest.tasks_resumed", resumed as u64);
        }

        // ---- Reduce phase: parked when a recovery layer is attached. ----
        let revived_ref = &revived;
        let reduce_wave = run_wave(
            &WaveSpec {
                job: run.job,
                kind: TaskKind::Reduce,
                workers: self.workers,
                plan: run.plan,
                policy: run.policy,
                park_exhausted: run.recovery.is_some(),
            },
            &to_run,
            |t, attempt| {
                let (k, vs) = &indexed[t as usize];
                let (k, vs): (K, Vec<V>) = match &transport {
                    Some(ch) => {
                        let input = (k.clone(), vs.clone());
                        ship(
                            ch,
                            run.job,
                            run.phase,
                            TaskKind::Reduce,
                            t,
                            attempt,
                            0,
                            &input,
                        )?
                    }
                    None => (k.clone(), vs.clone()),
                };
                let r = reduce(&k, vs);
                match &transport {
                    Some(ch) => ship(ch, run.job, run.phase, TaskKind::Reduce, t, attempt, 1, &r),
                    None => Ok(r),
                }
            },
            |t, out: &R| {
                if let Some(rec) = run.recovery {
                    rec.record_complete(t, &out.to_json());
                    if revived_ref.contains(&t) {
                        rec.record_revived(t);
                    }
                }
            },
        )?;
        totals.absorb(&reduce_wave.counters);
        mirror_counters(&totals);

        // ---- Park this run's corpses. ----
        if let Some(rec) = run.recovery {
            for d in &reduce_wave.dead {
                let (k, vs) = &indexed[d.task as usize];
                let payload = (k.clone(), vs.clone()).to_json().to_compact();
                let envelope = TaskEnvelope::new(
                    run.job,
                    run.phase,
                    TaskKind::Reduce,
                    d.task,
                    d.attempts,
                    payload,
                );
                rec.record_dead(d, &envelope);
            }
        }

        let mut outputs = reduce_wave.outputs;
        outputs.extend(resumed_outputs);
        outputs.sort_by_key(|&(t, _)| t);
        Ok(ShardedOutput {
            outputs,
            stats,
            counters: totals,
            dead: reduce_wave.dead,
            skipped_dead,
            resumed,
            reduce_tasks: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn word_count_style_job() {
        let engine = MapReduce::new(4);
        let docs = vec!["a b a", "b c", "a"];
        let (counts, stats) = engine.run(
            docs,
            |doc: &str| doc.split(' ').map(|w| (w.to_string(), 1usize)).collect(),
            |k, vs| (k.clone(), vs.len()),
        );
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
        assert_eq!(stats.map_records, 3);
        assert_eq!(stats.shuffled_pairs, 6);
        assert_eq!(stats.reduce_groups, 3);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let inputs: Vec<u64> = (0..500).collect();
        let job = |w: usize| {
            MapReduce::new(w).run(
                inputs.clone(),
                |x: u64| vec![(x % 7, x)],
                |k, vs| (*k, vs.iter().sum::<u64>(), vs.len()),
            )
        };
        let (serial, s_stats) = job(1);
        for w in [2, 3, 8, 32] {
            let (parallel, p_stats) = job(w);
            assert_eq!(serial, parallel, "worker count {w} changed results");
            assert_eq!(s_stats, p_stats);
        }
    }

    #[test]
    fn results_identical_under_global_thread_cap() {
        // The pool cap changes physical threads, never results.
        let inputs: Vec<u64> = (0..300).collect();
        let job = || {
            MapReduce::new(4).run(
                inputs.clone(),
                |x: u64| vec![(x % 5, x * x)],
                |k, vs| (*k, vs.iter().sum::<u64>()),
            )
        };
        m2td_par::set_max_threads(1);
        let capped = job();
        m2td_par::set_max_threads(8);
        let wide = job();
        m2td_par::set_max_threads(0);
        assert_eq!(capped, wide);
    }

    #[test]
    fn value_order_within_group_is_input_order() {
        let engine = MapReduce::new(5);
        let inputs: Vec<usize> = (0..100).collect();
        let (groups, _) = engine.run(inputs, |x: usize| vec![(x % 3, x)], |_k, vs| vs);
        for g in &groups {
            assert!(
                g.windows(2).all(|w| w[0] < w[1]),
                "group not in input order"
            );
        }
    }

    #[test]
    fn empty_input() {
        let engine = MapReduce::new(3);
        let (out, stats) = engine.run(
            Vec::<u32>::new(),
            |x: u32| vec![(x, x)],
            |_k, vs: Vec<u32>| vs.len(),
        );
        assert!(out.is_empty());
        assert_eq!(stats.map_records, 0);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let engine = MapReduce::new(0);
        assert_eq!(engine.workers(), 1);
        let (out, _) = engine.run(vec![1u8, 2], |x: u8| vec![((), x)], |_, vs: Vec<u8>| vs);
        assert_eq!(out, vec![vec![1, 2]]);
    }

    #[test]
    fn map_can_emit_multiple_keys() {
        let engine = MapReduce::new(2);
        let (out, stats) = engine.run(
            vec![10u32, 20],
            |x: u32| vec![(0u8, x), (1u8, x * 2)],
            |k, vs: Vec<u32>| (*k, vs.iter().sum::<u32>()),
        );
        assert_eq!(out, vec![(0, 30), (1, 60)]);
        assert_eq!(stats.shuffled_pairs, 4);
    }

    type SummingRun = (Vec<(u64, u64)>, ShuffleStats, TaskCounters);

    fn summing_job(
        engine: &MapReduce,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<SummingRun, FaultError> {
        engine.run_with_faults(
            7,
            (0..400u64).collect(),
            |x: u64| vec![(x % 5, x)],
            |k, vs| (*k, vs.iter().sum::<u64>()),
            plan,
            policy,
        )
    }

    #[test]
    fn faulty_run_matches_fault_free_run() {
        let engine = MapReduce::new(4);
        let (clean, clean_stats, clean_counters) =
            summing_job(&engine, &FaultPlan::none(), &RetryPolicy::default()).unwrap();
        assert_eq!(clean_counters.kills(), 0);
        for seed in [1, 2, 3] {
            let plan = FaultPlan::new(seed, 0.4, 0.3, 20.0);
            let (faulty, stats, counters) =
                summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
            assert_eq!(clean, faulty, "seed {seed} changed results");
            assert_eq!(clean_stats, stats);
            assert!(counters.attempts() >= clean_counters.attempts());
        }
    }

    #[test]
    fn counters_are_deterministic_across_thread_caps() {
        let engine = MapReduce::new(4);
        let plan = FaultPlan::new(5, 0.5, 0.4, 30.0);
        m2td_par::set_max_threads(1);
        let serial = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        m2td_par::set_max_threads(8);
        let wide = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        m2td_par::set_max_threads(0);
        assert_eq!(serial, wide);
        assert!(serial.2.kills() > 0, "plan injected no kills");
    }

    #[test]
    fn kills_are_retried_and_counted() {
        let engine = MapReduce::new(2);
        // Kill every first attempt; the cap lets attempt 1 through.
        let plan = FaultPlan::new(1, 1.0, 0.0, 0.0).with_kill_cap(1);
        let (out, _, counters) = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        assert_eq!(out.len(), 5);
        // 2 map chunks + 5 reduce groups, each killed exactly once.
        assert_eq!(counters.map_kills, 2);
        assert_eq!(counters.reduce_kills, 5);
        assert_eq!(counters.map_attempts, 4);
        assert_eq!(counters.reduce_attempts, 10);
        assert!(counters.virtual_lost_secs > 0.0);
    }

    #[test]
    fn exhausted_retry_budget_is_an_error() {
        let engine = MapReduce::new(2);
        let plan = FaultPlan::new(1, 1.0, 0.0, 0.0).with_kill_cap(u32::MAX);
        let err = summing_job(&engine, &plan, &RetryPolicy::with_max_attempts(3)).unwrap_err();
        match err {
            FaultError::RetryExhausted { attempts, .. } => assert_eq!(attempts, 3),
        }
    }

    #[test]
    fn stragglers_trigger_speculation() {
        let engine = MapReduce::new(2);
        // Every attempt straggles 60s; default policy speculates after 5s.
        let plan = FaultPlan::new(2, 0.0, 1.0, 60.0);
        let (out, _, counters) = summing_job(&engine, &plan, &RetryPolicy::default()).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(counters.stragglers, 7); // 2 map + 5 reduce tasks
        assert_eq!(counters.speculative_launches, 7);
        // Charged delay is capped at the speculation threshold.
        assert!((counters.virtual_lost_secs - 7.0 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn scoped_plan_leaves_other_jobs_alone() {
        let engine = MapReduce::new(2);
        let plan = FaultPlan::new(3, 1.0, 0.0, 0.0).in_job(99);
        // Job 7 is untouched even though the kill rate is 1.
        let (_, _, counters) = summing_job(&engine, &plan, &RetryPolicy::no_retries()).unwrap();
        assert_eq!(counters.kills(), 0);
    }

    // ---- Sharded path. ----

    fn sharded_summing(
        engine: &MapReduce,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        recovery: Option<&dyn WaveRecovery>,
    ) -> Result<ShardedOutput<(u64, u64)>, FaultError> {
        engine.run_sharded(
            &ShardedRun {
                job: 7,
                phase: 1,
                plan,
                policy,
                recovery,
            },
            (0..400u64).collect(),
            |x: u64| vec![(x % 5, x)],
            |k, vs| (*k, vs.iter().sum::<u64>()),
        )
    }

    #[test]
    fn channel_transport_matches_direct_bitwise() {
        let direct = MapReduce::new(3).with_transport(TransportKind::Direct);
        let channel = MapReduce::new(3).with_transport(TransportKind::Channel);
        let plan = FaultPlan::new(9, 0.3, 0.2, 20.0);
        let a = sharded_summing(&direct, &plan, &RetryPolicy::default(), None).unwrap();
        let b = sharded_summing(&channel, &plan, &RetryPolicy::default(), None).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn wire_corruption_is_retried_without_changing_results() {
        let channel = MapReduce::new(2).with_transport(TransportKind::Channel);
        let clean =
            sharded_summing(&channel, &FaultPlan::none(), &RetryPolicy::default(), None).unwrap();
        let noisy_plan = FaultPlan::none().with_xport_corrupt_rate(0.4);
        let noisy = sharded_summing(&channel, &noisy_plan, &RetryPolicy::default(), None).unwrap();
        assert_eq!(clean.outputs, noisy.outputs);
        assert!(
            noisy.counters.xport_corruptions > 0,
            "plan injected no wire damage"
        );
        assert!(noisy.counters.attempts() > clean.counters.attempts());
    }

    /// In-memory recovery: the manifest/DLQ wiring without the disk.
    #[derive(Default)]
    struct MemRecovery {
        state: Mutex<MemState>,
    }

    #[derive(Default)]
    struct MemState {
        total: u64,
        completed: BTreeMap<u64, Json>,
        dead: BTreeMap<u64, bool>, // task -> requeued
        parked: Vec<u64>,
        revived: Vec<u64>,
    }

    impl WaveRecovery for MemRecovery {
        fn begin_phase(&self, total: u64) {
            self.state.lock().unwrap().total = total;
        }
        fn task_state(&self, task: u64) -> TaskState {
            let s = self.state.lock().unwrap();
            if let Some(doc) = s.completed.get(&task) {
                return TaskState::Completed(doc.clone());
            }
            if let Some(&requeued) = s.dead.get(&task) {
                return TaskState::Dead { requeued };
            }
            TaskState::Fresh
        }
        fn record_complete(&self, task: u64, output: &Json) {
            let mut s = self.state.lock().unwrap();
            s.dead.remove(&task);
            s.completed.insert(task, output.clone());
        }
        fn record_dead(&self, dead: &DeadTask, envelope: &TaskEnvelope) {
            assert_eq!(dead.task, envelope.task);
            let mut s = self.state.lock().unwrap();
            s.completed.remove(&dead.task);
            s.dead.insert(dead.task, false);
            s.parked.push(dead.task);
        }
        fn record_revived(&self, task: u64) {
            self.state.lock().unwrap().revived.push(task);
        }
    }

    #[test]
    fn doomed_tasks_park_then_requeue_then_drain() {
        let engine = MapReduce::new(2);
        let policy = RetryPolicy::default();
        let recovery = MemRecovery::default();

        // Run 1: task 2's every attempt is killed — parked, not fatal.
        let doomed = FaultPlan::none().in_job(7).with_doom_mask(1 << 2);
        let out = sharded_summing(&engine, &doomed, &policy, Some(&recovery)).unwrap();
        assert_eq!(out.reduce_tasks, 5);
        assert_eq!(out.dead.len(), 1);
        assert_eq!(out.dead[0].task, 2);
        assert_eq!(out.dead[0].attempts, policy.max_attempts);
        assert_eq!(
            out.outputs.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![0, 1, 3, 4]
        );
        assert_eq!(recovery.state.lock().unwrap().parked, vec![2]);

        // Run 2: task 2 still dead and not requeued — skipped, others
        // resumed from their recorded outputs without re-running.
        let reduce_calls = AtomicUsize::new(0);
        let out2 = engine
            .run_sharded(
                &ShardedRun {
                    job: 7,
                    phase: 1,
                    plan: &FaultPlan::none(),
                    policy: &policy,
                    recovery: Some(&recovery),
                },
                (0..400u64).collect(),
                |x: u64| vec![(x % 5, x)],
                |k, vs| {
                    reduce_calls.fetch_add(1, Ordering::Relaxed);
                    (*k, vs.iter().sum::<u64>())
                },
            )
            .unwrap();
        assert_eq!(out2.resumed, 4);
        assert_eq!(out2.skipped_dead, vec![2]);
        assert_eq!(reduce_calls.load(Ordering::Relaxed), 0);
        assert_eq!(out2.outputs, out.outputs);

        // Run 3: requeued and no longer doomed — revived and drained.
        recovery.state.lock().unwrap().dead.insert(2, true);
        let out3 = sharded_summing(&engine, &FaultPlan::none(), &policy, Some(&recovery)).unwrap();
        assert_eq!(out3.resumed, 4);
        assert!(out3.skipped_dead.is_empty() && out3.dead.is_empty());
        assert_eq!(out3.outputs.len(), 5);
        assert_eq!(recovery.state.lock().unwrap().revived, vec![2]);

        // The full set matches a fresh, fault-free run bitwise.
        let fresh = sharded_summing(&engine, &FaultPlan::none(), &policy, None).unwrap();
        assert_eq!(out3.outputs, fresh.outputs);
    }

    #[test]
    fn map_exhaustion_still_fails_even_with_recovery() {
        let engine = MapReduce::new(2);
        let plan = FaultPlan::new(1, 1.0, 0.0, 0.0)
            .with_kill_cap(u32::MAX)
            .in_job(7);
        let recovery = MemRecovery::default();
        let err = sharded_summing(
            &engine,
            &plan,
            &RetryPolicy::with_max_attempts(2),
            Some(&recovery),
        )
        .unwrap_err();
        let FaultError::RetryExhausted { kind, .. } = err;
        assert_eq!(kind, TaskKind::Map);
    }
}
