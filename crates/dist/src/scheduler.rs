//! Work-stealing wave scheduler for fault-aware task execution.
//!
//! A *wave* is one homogeneous batch of tasks (all map chunks of a phase,
//! or all its reduce groups). Tasks are dealt round-robin onto per-worker
//! deques; each worker pops its own deque from the front and, when empty,
//! scans the other deques in a fixed order (`me+1, me+2, …` mod `W`) and
//! steals from the back. Replacing the fixed chunk-per-worker split of the
//! original engine, a straggling worker no longer strands the tail of its
//! chunk — idle workers steal it.
//!
//! ## Determinism
//!
//! Which worker executes which task *is* scheduling-dependent (steal
//! counts in `steal.*` are telemetry, not contract). The results are not:
//! every task is pure and identified by a stable id, fault decisions
//! depend only on `(job, kind, task, attempt)`, and outputs and counter
//! deltas are merged in task-id order after the wave. Any schedule
//! therefore produces bitwise-identical outputs and identical counters —
//! the property `tests/fault_determinism.rs` pins across worker counts.
//!
//! ## Failure handling
//!
//! Each task runs the retry loop: killed attempts are re-executed after a
//! (jittered, clamped) virtual backoff; stragglers are charged capped
//! delay and may launch a speculative backup; attempts whose envelope is
//! dropped by the transport (checksum mismatch, torn frame) count as
//! `xport_corruptions` and retry like kills. A task that exhausts its
//! budget either fails the wave ([`FaultError::RetryExhausted`], the
//! legacy behavior) or — when the wave parks exhausted tasks — is
//! recorded as a [`DeadTask`] with its full attempt log, and the wave
//! completes without it (the caller decides whether coverage allows a
//! degraded result, and routes the corpse to the dead-letter queue).

use crate::transport::TransportError;
use m2td_fault::{FaultDecision, FaultError, FaultPlan, RetryPolicy, TaskCounters, TaskKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shared parameters of one wave.
pub(crate) struct WaveSpec<'a> {
    /// Job the tasks belong to.
    pub job: u64,
    /// Map or reduce (decides which counters attempts land in).
    pub kind: TaskKind,
    /// Logical worker count: number of deques, and the cap passed to the
    /// thread pool (physical threads may be fewer; stealing drains the
    /// unowned deques).
    pub workers: usize,
    /// Fault plan injected into every attempt.
    pub plan: &'a FaultPlan,
    /// Retry/backoff/speculation policy.
    pub policy: &'a RetryPolicy,
    /// `true`: exhausted tasks are parked as [`DeadTask`]s and the wave
    /// completes. `false`: the first exhausted task fails the wave.
    pub park_exhausted: bool,
}

/// A task that exhausted its retry budget in a parking wave.
#[derive(Debug, Clone)]
pub(crate) struct DeadTask {
    /// Task id within the job.
    pub task: u64,
    /// Attempts consumed (= the policy budget).
    pub attempts: u32,
    /// One line per attempt: what the fault plan and transport did.
    pub log: Vec<String>,
    /// The terminal error.
    pub error: FaultError,
}

/// What a wave produced.
#[derive(Debug)]
pub(crate) struct WaveOutcome<Out> {
    /// `(task, output)` for every surviving task, ascending by task id.
    pub outputs: Vec<(u64, Out)>,
    /// Counter deltas summed in task-id order (scheduling-invariant).
    pub counters: TaskCounters,
    /// Parked tasks, ascending by task id (empty unless parking).
    pub dead: Vec<DeadTask>,
}

/// The retry loop for one task. `exec` is invoked per attempt and must be
/// pure up to transport faults: re-invocations return bitwise-identical
/// outputs whenever they succeed.
#[allow(clippy::result_large_err)] // the Err path is cold: a task is only dead after retry exhaustion
fn run_attempts<Out>(
    spec: &WaveSpec<'_>,
    task: u64,
    exec: &(impl Fn(u64, u32) -> Result<Out, TransportError> + Sync),
) -> Result<(Out, TaskCounters), (TaskCounters, DeadTask)> {
    let mut c = TaskCounters::default();
    let mut log = Vec::new();
    let bump = |c: &mut TaskCounters, killed: bool| {
        if spec.kind == TaskKind::Map {
            c.map_attempts += 1;
            c.map_kills += killed as usize;
        } else {
            c.reduce_attempts += 1;
            c.reduce_kills += killed as usize;
        }
    };
    let policy = spec.policy;
    let exhausted = |c: TaskCounters, log: Vec<String>| {
        let error = FaultError::RetryExhausted {
            job: spec.job,
            kind: spec.kind,
            task,
            attempts: policy.max_attempts,
        };
        (
            c,
            DeadTask {
                task,
                attempts: policy.max_attempts,
                log,
                error,
            },
        )
    };
    for attempt in 0..policy.max_attempts {
        match spec.plan.decide(spec.job, spec.kind, task, attempt) {
            FaultDecision::Kill => {
                // The attempt ran partway before dying: execute and
                // discard, then back off in virtual time before retrying.
                let _ = exec(task, attempt);
                bump(&mut c, true);
                log.push(format!("attempt {attempt}: killed by fault plan"));
                if attempt + 1 == policy.max_attempts {
                    return Err(exhausted(c, log));
                }
                c.virtual_lost_secs += policy.backoff_secs_jittered(spec.job, task, attempt + 1);
            }
            FaultDecision::Straggle(delay) => match exec(task, attempt) {
                Ok(out) => {
                    bump(&mut c, false);
                    c.stragglers += 1;
                    if policy.speculates(delay) {
                        // The backup re-executes the pure task; transport
                        // draws are per-attempt, so it cannot diverge from
                        // the primary that just succeeded.
                        let _ = exec(task, attempt);
                        bump(&mut c, false);
                        c.speculative_launches += 1;
                    }
                    c.virtual_lost_secs += policy.charged_straggle_secs(delay);
                    return Ok((out, c));
                }
                Err(e) => {
                    bump(&mut c, false);
                    c.xport_corruptions += 1;
                    log.push(format!("attempt {attempt}: dropped in transit ({e})"));
                    if attempt + 1 == policy.max_attempts {
                        return Err(exhausted(c, log));
                    }
                    c.virtual_lost_secs +=
                        policy.backoff_secs_jittered(spec.job, task, attempt + 1);
                }
            },
            FaultDecision::Ok => match exec(task, attempt) {
                Ok(out) => {
                    bump(&mut c, false);
                    return Ok((out, c));
                }
                Err(e) => {
                    bump(&mut c, false);
                    c.xport_corruptions += 1;
                    log.push(format!("attempt {attempt}: dropped in transit ({e})"));
                    if attempt + 1 == policy.max_attempts {
                        return Err(exhausted(c, log));
                    }
                    c.virtual_lost_secs +=
                        policy.backoff_secs_jittered(spec.job, task, attempt + 1);
                }
            },
        }
    }
    unreachable!("attempt loop always returns within the policy budget")
}

struct WaveState<Out> {
    outputs: Vec<(u64, Out)>,
    counters: Vec<(u64, TaskCounters)>,
    dead: Vec<DeadTask>,
    error: Option<FaultError>,
}

/// Runs one wave of `tasks` over the work-stealing deques. `on_accept`
/// fires once per task whose result the wave accepts — after the retry
/// loop, never for killed/discarded attempts — and is where callers
/// persist task completion (the job manifest).
pub(crate) fn run_wave<Out: Send>(
    spec: &WaveSpec<'_>,
    tasks: &[u64],
    exec: impl Fn(u64, u32) -> Result<Out, TransportError> + Sync,
    on_accept: impl Fn(u64, &Out) + Sync,
) -> Result<WaveOutcome<Out>, FaultError> {
    let workers = spec.workers.max(1);
    let deques: Vec<Mutex<VecDeque<u64>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, &t) in tasks.iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back(t);
    }
    // `run_workers` closures carry no worker index: each physical thread
    // claims one by ticket. Physical threads never exceed `workers`, so
    // ids are unique; deques of unclaimed ids are drained by stealing.
    let ticket = AtomicUsize::new(0);
    let state: Mutex<WaveState<Out>> = Mutex::new(WaveState {
        outputs: Vec::new(),
        counters: Vec::new(),
        dead: Vec::new(),
        error: None,
    });
    let failed = AtomicBool::new(false);
    m2td_par::run_workers(workers, || {
        let me = ticket.fetch_add(1, Ordering::Relaxed) % workers;
        let (mut local_pops, mut steals) = (0u64, 0u64);
        loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let mut task = deques[me].lock().unwrap().pop_front();
            if task.is_some() {
                local_pops += 1;
            } else {
                // Deterministic victim order; steal from the back so the
                // owner's front stays hot.
                for d in 1..workers {
                    let victim = (me + d) % workers;
                    task = deques[victim].lock().unwrap().pop_back();
                    if task.is_some() {
                        steals += 1;
                        break;
                    }
                }
            }
            let Some(task) = task else { break };
            match run_attempts(spec, task, &exec) {
                Ok((out, c)) => {
                    on_accept(task, &out);
                    let mut s = state.lock().unwrap();
                    s.outputs.push((task, out));
                    s.counters.push((task, c));
                }
                Err((c, dead)) => {
                    let mut s = state.lock().unwrap();
                    if spec.park_exhausted {
                        s.counters.push((task, c));
                        s.dead.push(dead);
                    } else {
                        if s.error.is_none() {
                            s.error = Some(dead.error);
                        }
                        failed.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
        if local_pops + steals > 0 {
            m2td_obs::counter_add("steal.local_pops", local_pops);
            m2td_obs::counter_add("steal.steals", steals);
        }
    });
    let s = state.into_inner().unwrap();
    if let Some(e) = s.error {
        return Err(e);
    }
    let mut outputs = s.outputs;
    outputs.sort_by_key(|&(t, _)| t);
    let mut deltas = s.counters;
    deltas.sort_by_key(|&(t, _)| t);
    let mut counters = TaskCounters::default();
    for (_, c) in &deltas {
        counters.absorb(c);
    }
    let mut dead = s.dead;
    dead.sort_by_key(|d| d.task);
    Ok(WaveOutcome {
        outputs,
        counters,
        dead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(
        plan: &'a FaultPlan,
        policy: &'a RetryPolicy,
        workers: usize,
        park: bool,
    ) -> WaveSpec<'a> {
        WaveSpec {
            job: 7,
            kind: TaskKind::Reduce,
            workers,
            plan,
            policy,
            park_exhausted: park,
        }
    }

    #[test]
    fn outputs_and_counters_are_identical_across_worker_counts() {
        let plan = FaultPlan::new(11, 0.4, 0.3, 20.0);
        let policy = RetryPolicy::default();
        let tasks: Vec<u64> = (0..40).collect();
        let run = |w: usize| {
            let outcome = run_wave(
                &spec(&plan, &policy, w, false),
                &tasks,
                |t, _| Ok::<u64, TransportError>(t * t),
                |_, _| {},
            )
            .unwrap();
            (outcome.outputs, outcome.counters)
        };
        let serial = run(1);
        for w in [2, 3, 8] {
            assert_eq!(run(w), serial, "worker count {w} changed the wave");
        }
        assert_eq!(serial.0.len(), 40);
        assert!(serial.0.windows(2).all(|p| p[0].0 < p[1].0));
    }

    #[test]
    fn transport_failures_are_retried_and_counted() {
        let plan = FaultPlan::none();
        let policy = RetryPolicy::default();
        // Fail every first attempt in transit; succeed afterwards.
        let outcome = run_wave(
            &spec(&plan, &policy, 3, false),
            &[0, 1, 2, 3, 4],
            |t, attempt| {
                if attempt == 0 {
                    Err(TransportError::Malformed("torn frame".to_string()))
                } else {
                    Ok(t + 100)
                }
            },
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome.outputs.len(), 5);
        assert_eq!(outcome.counters.xport_corruptions, 5);
        assert_eq!(outcome.counters.reduce_attempts, 10);
        assert!(outcome.counters.virtual_lost_secs > 0.0);
    }

    #[test]
    fn parked_waves_complete_with_dead_tasks() {
        let plan = FaultPlan::none().with_doom_mask(0b10010).in_job(7);
        let policy = RetryPolicy::default();
        let outcome = run_wave(
            &spec(&plan, &policy, 2, true),
            &[0, 1, 2, 3, 4],
            |t, _| Ok::<u64, TransportError>(t),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(
            outcome.outputs.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert_eq!(
            outcome.dead.iter().map(|d| d.task).collect::<Vec<_>>(),
            vec![1, 4]
        );
        for d in &outcome.dead {
            assert_eq!(d.attempts, policy.max_attempts);
            assert_eq!(d.log.len(), policy.max_attempts as usize);
            assert!(matches!(d.error, FaultError::RetryExhausted { task, .. } if task == d.task));
        }
        // Dead attempts still count (deterministically, by task order).
        assert_eq!(
            outcome.counters.reduce_kills,
            2 * policy.max_attempts as usize
        );
    }

    #[test]
    fn non_parking_waves_fail_on_exhaustion() {
        let plan = FaultPlan::none().with_doom_mask(0b1).in_job(7);
        let policy = RetryPolicy::with_max_attempts(2);
        let err = run_wave(
            &spec(&plan, &policy, 2, false),
            &[0, 1],
            |t, _| Ok::<u64, TransportError>(t),
            |_, _| {},
        )
        .unwrap_err();
        assert!(matches!(
            err,
            FaultError::RetryExhausted {
                task: 0,
                attempts: 2,
                ..
            }
        ));
    }

    #[test]
    fn on_accept_fires_once_per_surviving_task() {
        let plan = FaultPlan::new(3, 0.5, 0.0, 0.0)
            .with_doom_mask(0b100)
            .in_job(7);
        let policy = RetryPolicy::default();
        let accepted = Mutex::new(Vec::new());
        let outcome = run_wave(
            &spec(&plan, &policy, 4, true),
            &[0, 1, 2, 3, 4, 5],
            |t, _| Ok::<u64, TransportError>(t),
            |t, _| accepted.lock().unwrap().push(t),
        )
        .unwrap();
        let mut accepted = accepted.into_inner().unwrap();
        accepted.sort_unstable();
        assert_eq!(accepted, vec![0, 1, 3, 4, 5]);
        assert_eq!(outcome.dead.len(), 1);
    }

    #[test]
    fn more_logical_workers_than_tasks_still_drains() {
        let plan = FaultPlan::none();
        let policy = RetryPolicy::default();
        let outcome = run_wave(
            &spec(&plan, &policy, 16, false),
            &[0, 1],
            |t, _| Ok::<u64, TransportError>(t),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome.outputs.len(), 2);
    }
}
