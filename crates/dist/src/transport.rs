//! Transport abstraction: how tasks and sub-tensor shards cross the
//! boundary between the D-M2TD driver and its workers.
//!
//! Everything that crosses a transport is a [`TaskEnvelope`] — an
//! `m2td-json` document carrying the task identity (job, phase, kind,
//! task id, attempt) plus an opaque serialized payload, sealed with the
//! same FNV-1a-64 checksum the checkpoint-v2 store uses. The checksum
//! covers the *whole* envelope (identity and payload), so a bit-flip or
//! truncation anywhere in flight is detected on receive, counted in
//! `xport.corrupt_dropped`, and surfaces as a [`TransportError`] the
//! scheduler retries — corrupt bytes are never deserialized into the
//! pipeline.
//!
//! Two implementations exist today:
//!
//! * [`DirectTransport`] — a pass-through used as a reference; and
//! * [`ChannelTransport`] — serializes every envelope, pushes the bytes
//!   through an in-process `std::sync::mpsc` channel hop, optionally
//!   injects deterministic wire corruption from the [`FaultPlan`] wire
//!   stream, and re-parses on the far side.
//!
//! The channel implementation is deliberately shaped like a future
//! socket/process transport: nothing crosses it except bytes, so swapping
//! the hop for a TCP stream changes no caller.

use crate::checkpoint::fnv1a64;
use m2td_fault::{CorruptionKind, FaultPlan, TaskKind};
use m2td_json::{Json, ToJson};
use std::fmt;

/// Which transport implementation an engine routes its tasks through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Tasks are executed by direct function call; nothing is serialized.
    #[default]
    Direct,
    /// Tasks and results cross an in-process channel as serialized
    /// envelopes (checksummed, corruptible, retryable).
    Channel,
}

impl TransportKind {
    /// Reads `M2TD_TRANSPORT` (`direct` | `channel`); unset or
    /// unrecognized values fall back to [`TransportKind::Direct`].
    pub fn from_env() -> Self {
        match std::env::var("M2TD_TRANSPORT").as_deref() {
            Ok("channel") => TransportKind::Channel,
            _ => TransportKind::Direct,
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "direct" => Ok(TransportKind::Direct),
            "channel" => Ok(TransportKind::Channel),
            other => Err(format!(
                "unknown transport '{other}' (expected direct | channel)"
            )),
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Direct => write!(f, "direct"),
            TransportKind::Channel => write!(f, "channel"),
        }
    }
}

/// Why a delivery failed. Both variants are *retryable*: the sender still
/// holds the task and can re-dispatch a fresh attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The received bytes did not parse as an envelope (torn write,
    /// truncation, or a structural bit-flip).
    Malformed(String),
    /// The envelope parsed but its checksum did not match its contents.
    ChecksumMismatch {
        /// Checksum the envelope claimed.
        stored: u64,
        /// Checksum recomputed from the received contents.
        computed: u64,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Malformed(why) => write!(f, "malformed envelope: {why}"),
            TransportError::ChecksumMismatch { stored, computed } => write!(
                f,
                "envelope checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// Parses the `kind` field of an envelope back into a [`TaskKind`].
fn parse_kind(s: &str) -> Option<TaskKind> {
    match s {
        "map" => Some(TaskKind::Map),
        "reduce" => Some(TaskKind::Reduce),
        "simulation" => Some(TaskKind::Simulation),
        _ => None,
    }
}

/// One unit of work (or one result) in transit: task identity plus an
/// opaque serialized payload, sealed under an FNV-1a-64 checksum.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskEnvelope {
    /// Job the task belongs to (D-M2TD uses one job id per phase).
    pub job: u64,
    /// D-M2TD phase number (1–3), for DLQ forensics.
    pub phase: u8,
    /// Map / reduce / simulation.
    pub kind: TaskKind,
    /// Task index within the job.
    pub task: u64,
    /// Attempt number this envelope was dispatched for.
    pub attempt: u32,
    /// FNV-1a-64 over the identity fields and the payload (see
    /// [`TaskEnvelope::checksum_of`]).
    pub checksum: u64,
    /// The serialized task input or output.
    pub payload: String,
}

impl TaskEnvelope {
    /// Seals a new envelope around `payload`.
    pub fn new(
        job: u64,
        phase: u8,
        kind: TaskKind,
        task: u64,
        attempt: u32,
        payload: String,
    ) -> Self {
        let checksum = Self::checksum_of(job, phase, kind, task, attempt, &payload);
        Self {
            job,
            phase,
            kind,
            task,
            attempt,
            checksum,
            payload,
        }
    }

    /// The envelope checksum: FNV-1a-64 over a canonical serialization of
    /// the identity fields followed by the payload bytes. Covering the
    /// identity too means a bit-flip in (say) the task id cannot slip
    /// through just because the payload survived.
    fn checksum_of(
        job: u64,
        phase: u8,
        kind: TaskKind,
        task: u64,
        attempt: u32,
        payload: &str,
    ) -> u64 {
        let header = format!("{job}/{phase}/{kind}/{task}/{attempt}/");
        fnv1a64(&[header.as_bytes(), payload.as_bytes()])
    }

    /// Serializes the envelope to compact JSON (the only form that ever
    /// crosses a transport).
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            ("job".to_string(), self.job.to_json()),
            ("phase".to_string(), self.phase.to_json()),
            ("kind".to_string(), self.kind.to_string().to_json()),
            ("task".to_string(), self.task.to_json()),
            ("attempt".to_string(), self.attempt.to_json()),
            // Bit-cast through i64 like every other 64-bit hash on disk.
            ("checksum".to_string(), Json::Int(self.checksum as i64)),
            ("payload".to_string(), self.payload.to_json()),
        ])
        .to_compact()
    }

    /// Parses and *verifies* received bytes. Malformed documents and
    /// checksum mismatches are rejected — the caller retries the attempt,
    /// it never sees the damaged payload.
    pub fn decode(text: &str) -> Result<Self, TransportError> {
        let doc =
            Json::parse(text).map_err(|e| TransportError::Malformed(format!("parse: {e}")))?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| TransportError::Malformed(format!("missing field '{name}'")))
        };
        let as_u64 = |name: &str| {
            field(name)?
                .as_u64()
                .map_err(|e| TransportError::Malformed(format!("field '{name}': {e}")))
        };
        let job = as_u64("job")?;
        let phase = as_u64("phase")?;
        let phase = u8::try_from(phase)
            .map_err(|_| TransportError::Malformed(format!("phase {phase} out of range")))?;
        let kind = field("kind")?
            .as_str()
            .ok()
            .and_then(parse_kind)
            .ok_or_else(|| TransportError::Malformed("unrecognized task kind".to_string()))?;
        let task = as_u64("task")?;
        let attempt = as_u64("attempt")?;
        let attempt = u32::try_from(attempt)
            .map_err(|_| TransportError::Malformed(format!("attempt {attempt} out of range")))?;
        let checksum = match field("checksum")? {
            Json::Int(c) => *c as u64,
            other => {
                return Err(TransportError::Malformed(format!(
                    "checksum must be an integer, found {}",
                    other.type_name()
                )))
            }
        };
        let payload = field("payload")?
            .as_str()
            .map_err(|e| TransportError::Malformed(format!("field 'payload': {e}")))?
            .to_string();
        let computed = Self::checksum_of(job, phase, kind, task, attempt, &payload);
        if computed != checksum {
            return Err(TransportError::ChecksumMismatch {
                stored: checksum,
                computed,
            });
        }
        Ok(Self {
            job,
            phase,
            kind,
            task,
            attempt,
            checksum,
            payload,
        })
    }
}

/// How envelopes cross from driver to worker (and back). `leg` identifies
/// the crossing within one attempt: `0` = task dispatch, `1` = result
/// return — the wire-corruption stream draws independently per leg.
pub trait Transport: Sync {
    /// Delivers one envelope, returning it as the far side sees it.
    fn deliver(&self, envelope: &TaskEnvelope, leg: u32) -> Result<TaskEnvelope, TransportError>;

    /// Which implementation this is.
    fn kind(&self) -> TransportKind;
}

/// Pass-through transport: no serialization, no loss. The reference
/// implementation the channel transport must agree with bitwise.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectTransport;

impl Transport for DirectTransport {
    fn deliver(&self, envelope: &TaskEnvelope, _leg: u32) -> Result<TaskEnvelope, TransportError> {
        Ok(envelope.clone())
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Direct
    }
}

/// In-process channel transport: every delivery serializes the envelope,
/// optionally damages the bytes per the [`FaultPlan`] wire stream, pushes
/// them through an `mpsc` channel hop, and re-parses with checksum
/// verification on the receiving side.
#[derive(Debug, Clone, Copy)]
pub struct ChannelTransport {
    plan: FaultPlan,
}

impl ChannelTransport {
    /// A channel transport injecting wire corruption from `plan` (use
    /// [`FaultPlan::none`] for a loss-free channel).
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// Applies one wire mutation to serialized envelope bytes.
    fn damage(text: String, kind: CorruptionKind) -> String {
        let mut bytes = text.into_bytes();
        match kind {
            CorruptionKind::BitFlip => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
            }
            // Stale-version corruption has no meaning on the wire;
            // envelopes carry no format version. Model it as a torn frame.
            CorruptionKind::Truncate | CorruptionKind::StaleVersion => {
                bytes.truncate(bytes.len() / 2);
            }
        }
        // The mutation may have broken UTF-8; replace invalid sequences
        // (the parser rejects the replacement character anyway).
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Transport for ChannelTransport {
    fn deliver(&self, envelope: &TaskEnvelope, leg: u32) -> Result<TaskEnvelope, TransportError> {
        let mut text = envelope.encode();
        if let Some(kind) =
            self.plan
                .wire_corruption(envelope.job, envelope.task, envelope.attempt, leg)
        {
            text = Self::damage(text, kind);
        }
        // The channel hop: only bytes cross. A socket transport would
        // replace these two lines with a write + read.
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        tx.send(text).expect("receiver alive in scope");
        let received = rx.recv().expect("sender alive in scope");
        m2td_obs::counter_add("xport.envelopes", 1);
        m2td_obs::counter_add("xport.bytes", received.len() as u64);
        TaskEnvelope::decode(&received).inspect_err(|_| {
            m2td_obs::counter_add("xport.corrupt_dropped", 1);
        })
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope() -> TaskEnvelope {
        TaskEnvelope::new(
            3,
            2,
            TaskKind::Reduce,
            17,
            1,
            "[[0,4,1.5],[1,9,-0.25]]".to_string(),
        )
    }

    #[test]
    fn envelope_round_trips_bitwise() {
        let env = envelope();
        let back = TaskEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
        // Payload floats survive textually (bitwise by the m2td-json
        // float contract).
        assert_eq!(back.payload, env.payload);
    }

    #[test]
    fn every_field_is_covered_by_the_checksum() {
        let env = envelope();
        let text = env.encode();
        // Flip one character in each field region and require detection.
        for (needle, replacement) in [
            ("\"job\":3", "\"job\":5"),
            ("\"phase\":2", "\"phase\":1"),
            ("\"kind\":\"reduce\"", "\"kind\":\"map\""),
            ("\"task\":17", "\"task\":16"),
            ("\"attempt\":1", "\"attempt\":2"),
            ("1.5", "1.25"),
        ] {
            let tampered = text.replacen(needle, replacement, 1);
            assert_ne!(tampered, text, "needle {needle:?} not found");
            assert!(
                matches!(
                    TaskEnvelope::decode(&tampered),
                    Err(TransportError::ChecksumMismatch { .. })
                ),
                "tampering {needle:?} went undetected"
            );
        }
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        for bad in ["", "{", "[1,2]", "{\"job\":1}", "not json at all"] {
            assert!(
                matches!(TaskEnvelope::decode(bad), Err(TransportError::Malformed(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn clean_channel_agrees_with_direct() {
        let env = envelope();
        let direct = DirectTransport.deliver(&env, 0).unwrap();
        let channel = ChannelTransport::new(FaultPlan::none())
            .deliver(&env, 0)
            .unwrap();
        assert_eq!(direct, channel);
        assert_eq!(DirectTransport.kind(), TransportKind::Direct);
        assert_eq!(
            ChannelTransport::new(FaultPlan::none()).kind(),
            TransportKind::Channel
        );
    }

    #[test]
    fn wire_corruption_is_always_detected_never_passed_through() {
        let plan = FaultPlan {
            seed: 23,
            ..FaultPlan::none().with_xport_corrupt_rate(1.0)
        };
        let transport = ChannelTransport::new(plan);
        let mut rejected = 0;
        for task in 0..50u64 {
            let env = TaskEnvelope::new(1, 1, TaskKind::Map, task, 0, format!("[[{task},0,0.5]]"));
            match transport.deliver(&env, 0) {
                Err(_) => rejected += 1,
                Ok(received) => assert_eq!(received, env, "damaged envelope accepted"),
            }
        }
        assert_eq!(rejected, 50, "rate-1 wire stream must reject everything");
    }

    #[test]
    fn transport_kind_parses_and_reads_env() {
        assert_eq!("direct".parse::<TransportKind>(), Ok(TransportKind::Direct));
        assert_eq!(
            "channel".parse::<TransportKind>(),
            Ok(TransportKind::Channel)
        );
        assert!("tcp".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::Channel.to_string(), "channel");
    }

    #[test]
    fn both_damage_kinds_fail_decode() {
        let env = envelope();
        for kind in [CorruptionKind::BitFlip, CorruptionKind::Truncate] {
            let damaged = ChannelTransport::damage(env.encode(), kind);
            assert!(
                TaskEnvelope::decode(&damaged).is_err(),
                "{kind} survived decode"
            );
        }
    }
}
