//! # m2td-fault — deterministic fault injection and retry policies
//!
//! Real ensemble campaigns lose work: simulation runs diverge or time out,
//! and MapReduce workers die or straggle mid-phase. This crate is the
//! workspace's *failure model*: a seeded, fully deterministic description
//! of which task attempts are killed, which straggle and by how much, and
//! which simulation runs fail — plus the [`RetryPolicy`] that governs how
//! the execution engines respond (bounded attempts, deterministic backoff
//! in virtual time, speculative re-execution of stragglers).
//!
//! ## Determinism contract
//!
//! Every fault decision is a pure function of `(seed, scope, task, attempt)`
//! via a splitmix-style hash — no wall clock, no OS entropy, no ordering
//! sensitivity. Two processes evaluating the same [`FaultPlan`] therefore
//! agree on every injected fault, regardless of thread count or scheduling.
//! Because the tasks the engines retry are themselves pure, any fault
//! schedule that eventually succeeds yields results bitwise identical to
//! the fault-free run; faults can only change *virtual time* and the
//! execution counters, never the numerics.
//!
//! Time here is **virtual**: a killed attempt charges its backoff delay and
//! a straggler charges its injected delay to an accumulator, but nothing
//! ever sleeps. This keeps fault-injection tests instantaneous while still
//! exercising the scheduling mathematics the cluster cost model consumes.

use std::fmt;

/// Which execution scope a fault decision applies to. The engines name
/// their jobs (D-M2TD uses one job id per phase), so a plan can target a
/// single phase or the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Faults apply to every job.
    AllJobs,
    /// Faults apply only to the job with this id.
    Job(u64),
}

/// The kind of task a fault decision is being made for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task (one input chunk).
    Map,
    /// A reduce task (one key group).
    Reduce,
    /// A simulation run (one parameter configuration).
    Simulation,
}

impl TaskKind {
    fn stream(self) -> u64 {
        match self {
            TaskKind::Map => 0x6d61_7000,
            TaskKind::Reduce => 0x7265_6400,
            TaskKind::Simulation => 0x7369_6d00,
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Map => write!(f, "map"),
            TaskKind::Reduce => write!(f, "reduce"),
            TaskKind::Simulation => write!(f, "simulation"),
        }
    }
}

/// A checkpoint mutation injected by the corruption stream. Each kind
/// models a distinct real-world failure: a flipped bit on disk, a torn
/// (partial) write that survived a crash, and a record written by an older
/// incompatible format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Flip one bit somewhere in the record body.
    BitFlip,
    /// Truncate the record (a torn write).
    Truncate,
    /// Rewrite the record claiming an older format version.
    StaleVersion,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionKind::BitFlip => write!(f, "bit-flip"),
            CorruptionKind::Truncate => write!(f, "truncate"),
            CorruptionKind::StaleVersion => write!(f, "stale-version"),
        }
    }
}

/// A serve-engine operation the crash stream can kill the process at.
/// Kill points are keyed by `(op, sequence)`: the `sequence` is the
/// engine's running count of that operation, so "crash at the 3rd WAL
/// append" is a deterministic, replayable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashOp {
    /// Entry into an absorb, before its WAL record is written (the write
    /// is lost entirely — durability is never promised for it).
    Absorb,
    /// Entry into a model refresh (absorbed state is durable; the refresh
    /// must be re-derived on recovery).
    Refresh,
    /// Immediately after a WAL record reaches the log but before it is
    /// applied in memory (durable-but-unapplied; replay must apply it).
    WalAppend,
    /// Between a snapshot's temp-file write and its rename into place
    /// (the snapshot must never be observed half-published).
    SnapshotWrite,
}

impl CrashOp {
    /// Every kill point, in the order the crash-matrix sweeps them.
    pub const ALL: [CrashOp; 4] = [
        CrashOp::Absorb,
        CrashOp::Refresh,
        CrashOp::WalAppend,
        CrashOp::SnapshotWrite,
    ];

    fn stream(self) -> u64 {
        match self {
            CrashOp::Absorb => 0x6162_7300,
            CrashOp::Refresh => 0x7266_7300,
            CrashOp::WalAppend => 0x7761_6c00,
            CrashOp::SnapshotWrite => 0x736e_7000,
        }
    }
}

impl fmt::Display for CrashOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashOp::Absorb => write!(f, "absorb"),
            CrashOp::Refresh => write!(f, "refresh"),
            CrashOp::WalAppend => write!(f, "wal-append"),
            CrashOp::SnapshotWrite => write!(f, "snapshot-write"),
        }
    }
}

impl std::str::FromStr for CrashOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "absorb" => Ok(CrashOp::Absorb),
            "refresh" => Ok(CrashOp::Refresh),
            "wal-append" => Ok(CrashOp::WalAppend),
            "snapshot-write" => Ok(CrashOp::SnapshotWrite),
            other => Err(format!(
                "unknown crash op '{other}' (expected absorb|refresh|wal-append|snapshot-write)"
            )),
        }
    }
}

/// The outcome a [`FaultPlan`] injects for one task attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// The attempt runs to completion normally.
    Ok,
    /// The attempt is killed; its output (if any) must be discarded and
    /// the task retried under the [`RetryPolicy`].
    Kill,
    /// The attempt completes but is delayed by this many virtual seconds
    /// (a straggler). Speculative re-execution may rescue it.
    Straggle(f64),
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates are per-*attempt* probabilities evaluated on independent hash
/// streams, so a task killed on attempt 0 gets a fresh draw on attempt 1.
/// `kill_cap` bounds the number of consecutive kills injected into any one
/// task (modelling a scheduler that blacklists bad nodes); with a cap below
/// the retry budget, every fault schedule eventually succeeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of every hash stream.
    pub seed: u64,
    /// Probability that a map/reduce task attempt is killed.
    pub kill_rate: f64,
    /// Probability that a map/reduce task attempt straggles.
    pub straggle_rate: f64,
    /// Virtual delay injected into a straggling attempt, in seconds.
    pub straggle_secs: f64,
    /// Probability that one simulation *attempt* fails (run diverged,
    /// solver timed out). Evaluated per attempt like `kill_rate`.
    pub sim_fail_rate: f64,
    /// Upper bound on consecutive kills injected into one task;
    /// `u32::MAX` disables the cap (useful to force retry exhaustion).
    pub kill_cap: u32,
    /// Probability that a freshly written phase checkpoint is corrupted
    /// on "disk" (the corruption stream; see [`FaultPlan::ckpt_corruption`]).
    pub ckpt_corrupt_rate: f64,
    /// Probability that one simulated cell value is replaced by NaN before
    /// decomposition (models a diverged solver writing garbage output that
    /// passes the scheduler but poisons the numerics).
    pub nan_cell_rate: f64,
    /// Probability that a serialized [`TaskEnvelope`] crossing the
    /// transport is corrupted in flight (the wire stream; see
    /// [`FaultPlan::wire_corruption`]). Wire corruption is detected by the
    /// envelope checksum and retried, so it costs attempts, never numerics.
    pub xport_corrupt_rate: f64,
    /// Probability that the crash stream kills the process at one serve
    /// kill point (see [`FaultPlan::crash_at`]). Draws are keyed by
    /// `(op, sequence)`, so the same plan crashes the same run at the
    /// same operation count every time.
    pub crash_rate: f64,
    /// Bitmask of *reduce*-task ids (bit `t` = task `t`, ids ≥ 64 never
    /// doomed) whose every attempt is killed in scoped jobs, regardless of
    /// `kill_cap`. Dooming a task forces [`FaultError::RetryExhausted`]
    /// deterministically — the hook CI uses to drive tasks into the
    /// dead-letter queue. Map tasks are never doomed: a dead map task has
    /// no degraded completion (its records feed every reduce group).
    pub doom_mask: u64,
    /// Which jobs the map/reduce faults apply to.
    pub scope: FaultScope,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            kill_rate: 0.0,
            straggle_rate: 0.0,
            straggle_secs: 0.0,
            sim_fail_rate: 0.0,
            kill_cap: 2,
            ckpt_corrupt_rate: 0.0,
            nan_cell_rate: 0.0,
            xport_corrupt_rate: 0.0,
            crash_rate: 0.0,
            doom_mask: 0,
            scope: FaultScope::AllJobs,
        }
    }

    /// A seeded plan killing and straggling task attempts at the given
    /// rates (stragglers delayed by `straggle_secs` virtual seconds).
    pub fn new(seed: u64, kill_rate: f64, straggle_rate: f64, straggle_secs: f64) -> Self {
        Self {
            seed,
            kill_rate,
            straggle_rate,
            straggle_secs,
            ..Self::none()
        }
    }

    /// A plan that fails simulation attempts at `rate`.
    pub fn sim_failures(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            sim_fail_rate: rate,
            ..Self::none()
        }
    }

    /// Restricts map/reduce faults to the job with id `job`.
    pub fn in_job(mut self, job: u64) -> Self {
        self.scope = FaultScope::Job(job);
        self
    }

    /// Replaces the consecutive-kill cap.
    pub fn with_kill_cap(mut self, cap: u32) -> Self {
        self.kill_cap = cap;
        self
    }

    /// Sets the checkpoint-corruption rate of the corruption stream.
    pub fn with_ckpt_corrupt_rate(mut self, rate: f64) -> Self {
        self.ckpt_corrupt_rate = rate;
        self
    }

    /// Sets the NaN-cell injection rate of the corruption stream.
    pub fn with_nan_cell_rate(mut self, rate: f64) -> Self {
        self.nan_cell_rate = rate;
        self
    }

    /// Sets the in-flight envelope corruption rate of the wire stream.
    pub fn with_xport_corrupt_rate(mut self, rate: f64) -> Self {
        self.xport_corrupt_rate = rate;
        self
    }

    /// Sets the kill-point probability of the crash stream.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Dooms the tasks whose bits are set in `mask`: every attempt of a
    /// doomed task in a scoped job is killed, ignoring `kill_cap`.
    pub fn with_doom_mask(mut self, mask: u64) -> Self {
        self.doom_mask = mask;
        self
    }

    /// True if task `task` of job `job` is doomed to exhaust its retries.
    pub fn dooms_task(&self, job: u64, task: u64) -> bool {
        self.targets_job(job) && task < 64 && (self.doom_mask >> task) & 1 == 1
    }

    /// True if the plan can inject map/reduce faults into `job`.
    pub fn targets_job(&self, job: u64) -> bool {
        match self.scope {
            FaultScope::AllJobs => true,
            FaultScope::Job(j) => j == job,
        }
    }

    /// The injected outcome for attempt `attempt` of task `task` of kind
    /// `kind` in job `job`. Pure in all arguments; when an `m2td-obs`
    /// subscriber is installed, injected faults additionally bump the
    /// `fault.kills_injected` / `fault.straggles_injected` counters
    /// (telemetry only — the returned decision is unaffected).
    pub fn decide(&self, job: u64, kind: TaskKind, task: u64, attempt: u32) -> FaultDecision {
        if !self.targets_job(job) {
            return FaultDecision::Ok;
        }
        if kind == TaskKind::Reduce && self.dooms_task(job, task) {
            m2td_obs::counter_add("fault.kills_injected", 1);
            return FaultDecision::Kill;
        }
        if attempt < self.kill_cap
            && uniform(self.seed, job ^ kind.stream(), task, attempt, SALT_KILL) < self.kill_rate
        {
            m2td_obs::counter_add("fault.kills_injected", 1);
            return FaultDecision::Kill;
        }
        if uniform(self.seed, job ^ kind.stream(), task, attempt, SALT_STRAGGLE)
            < self.straggle_rate
        {
            m2td_obs::counter_add("fault.straggles_injected", 1);
            return FaultDecision::Straggle(self.straggle_secs);
        }
        FaultDecision::Ok
    }

    /// Whether simulation attempt `attempt` for parameter configuration
    /// `config` fails. Uses its own hash stream; unaffected by `scope`.
    /// Failed attempts bump the `fault.sim_failures` counter when an
    /// `m2td-obs` subscriber is installed.
    pub fn sim_attempt_fails(&self, config: u64, attempt: u32) -> bool {
        let fails = uniform(
            self.seed,
            TaskKind::Simulation.stream(),
            config,
            attempt,
            SALT_KILL,
        ) < self.sim_fail_rate;
        if fails {
            m2td_obs::counter_add("fault.sim_failures", 1);
        }
        fails
    }

    /// The corruption (if any) the stream injects into the checkpoint of
    /// phase `phase`. Pure in its arguments: the first draw decides *if*
    /// the record is corrupted at `ckpt_corrupt_rate`, a second independent
    /// draw picks *which* [`CorruptionKind`]. Injections bump the
    /// `fault.ckpt_corruptions_injected` counter when an `m2td-obs`
    /// subscriber is installed.
    pub fn ckpt_corruption(&self, phase: u64) -> Option<CorruptionKind> {
        if uniform(self.seed, STREAM_CKPT, phase, 0, SALT_CORRUPT) >= self.ckpt_corrupt_rate {
            return None;
        }
        let pick = uniform(self.seed, STREAM_CKPT, phase, 1, SALT_CORRUPT);
        let kind = if pick < 1.0 / 3.0 {
            CorruptionKind::BitFlip
        } else if pick < 2.0 / 3.0 {
            CorruptionKind::Truncate
        } else {
            CorruptionKind::StaleVersion
        };
        m2td_obs::counter_add("fault.ckpt_corruptions_injected", 1);
        Some(kind)
    }

    /// The corruption (if any) the wire stream injects into a serialized
    /// task envelope in flight. `leg` distinguishes the two crossings of
    /// one attempt (0 = task dispatch, 1 = result return) so they draw
    /// independently. Pure in its arguments; only [`CorruptionKind::BitFlip`]
    /// and [`CorruptionKind::Truncate`] occur (envelopes carry no format
    /// version). Injections bump the `fault.xport_corruptions_injected`
    /// counter when an `m2td-obs` subscriber is installed.
    pub fn wire_corruption(
        &self,
        job: u64,
        task: u64,
        attempt: u32,
        leg: u32,
    ) -> Option<CorruptionKind> {
        if !self.targets_job(job) {
            return None;
        }
        let stream = job ^ STREAM_XPORT ^ ((leg as u64) << 32);
        if uniform(self.seed, stream, task, attempt, SALT_CORRUPT) >= self.xport_corrupt_rate {
            return None;
        }
        let pick = uniform(
            self.seed,
            stream,
            task,
            attempt.wrapping_add(1 << 16),
            SALT_CORRUPT,
        );
        let kind = if pick < 0.5 {
            CorruptionKind::BitFlip
        } else {
            CorruptionKind::Truncate
        };
        m2td_obs::counter_add("fault.xport_corruptions_injected", 1);
        Some(kind)
    }

    /// Whether the crash stream kills the process at occurrence number
    /// `sequence` of kill point `op`. Pure in its arguments — a restarted
    /// run that replays fewer operations (because some are already
    /// durable) naturally stops drawing the already-consumed sequences.
    /// Injections bump the `fault.crashes_injected` counter when an
    /// `m2td-obs` subscriber is installed.
    pub fn crash_at(&self, op: CrashOp, sequence: u64) -> bool {
        let hit = uniform(self.seed, op.stream(), sequence, 0, SALT_CRASH) < self.crash_rate;
        if hit {
            m2td_obs::counter_add("fault.crashes_injected", 1);
        }
        hit
    }

    /// Whether the corruption stream replaces simulated cell `cell` of
    /// stream `stream` (e.g. a subsystem index) with NaN. Injections bump
    /// the `fault.nan_cells_injected` counter when an `m2td-obs` subscriber
    /// is installed.
    pub fn cell_goes_nan(&self, stream: u64, cell: u64) -> bool {
        let hit = uniform(self.seed, stream, cell, 0, SALT_NANCELL) < self.nan_cell_rate;
        if hit {
            m2td_obs::counter_add("fault.nan_cells_injected", 1);
        }
        hit
    }

    /// Whether a simulation run for `config` survives a budget of
    /// `max_attempts` attempts; also returns the attempts consumed.
    pub fn sim_survives(&self, config: u64, max_attempts: u32) -> (bool, u32) {
        for attempt in 0..max_attempts {
            if !self.sim_attempt_fails(config, attempt) {
                return (true, attempt + 1);
            }
        }
        (false, max_attempts)
    }
}

/// Hash-stream salt separating kill decisions from straggle decisions.
const SALT_KILL: u64 = 0x4b49_4c4c;
/// See [`SALT_KILL`].
const SALT_STRAGGLE: u64 = 0x5354_5247;
/// Salt of the checkpoint-corruption stream ("CRPT").
const SALT_CORRUPT: u64 = 0x4352_5054;
/// Salt of the NaN-cell injection stream ("NANC").
const SALT_NANCELL: u64 = 0x4e41_4e43;
/// Stream id for checkpoint-corruption draws (not tied to any job).
const STREAM_CKPT: u64 = 0x636b_7074;
/// Stream id for in-flight envelope corruption draws ("xprt").
const STREAM_XPORT: u64 = 0x7870_7274;
/// Salt of the retry-jitter stream ("JTTR").
const SALT_JITTER: u64 = 0x4a54_5452;
/// Salt of the serve crash stream ("CRSH").
const SALT_CRASH: u64 = 0x4352_5348;

/// Deterministic uniform draw in `[0, 1)` keyed by the full task identity.
fn uniform(seed: u64, stream: u64, task: u64, attempt: u32, salt: u64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ task.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ (attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ salt;
    // splitmix64 finalizer.
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// How an engine responds to injected faults: bounded retries with a
/// deterministic backoff schedule in virtual time, plus speculative
/// re-execution of stragglers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (including the first); exhausting this
    /// budget fails the job with [`FaultError::RetryExhausted`].
    pub max_attempts: u32,
    /// Virtual backoff before retry `1` (after the first failure).
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_factor: f64,
    /// A straggling attempt delayed beyond this many virtual seconds gets
    /// a speculative backup copy; the backup's (identical) result is used
    /// and the straggler's excess delay is not charged.
    pub speculate_after_secs: f64,
    /// Ceiling on any single backoff delay: the geometric schedule is
    /// clamped here so deep retries cannot grow without bound.
    pub max_backoff_secs: f64,
    /// Fraction of the backoff randomized away by deterministic jitter in
    /// [`RetryPolicy::backoff_secs_jittered`] (0 disables jitter and keeps
    /// the plain schedule bitwise).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_secs: 0.5,
            backoff_factor: 2.0,
            speculate_after_secs: 5.0,
            max_backoff_secs: 60.0,
            jitter_frac: 0.0,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing exactly one attempt (no retries).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A policy with the given attempt budget and default backoff.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }

    /// Replaces the backoff ceiling.
    pub fn with_max_backoff_secs(mut self, secs: f64) -> Self {
        self.max_backoff_secs = secs;
        self
    }

    /// Enables deterministic jitter over `frac` of each backoff delay
    /// (clamped to `[0, 1]`).
    pub fn with_jitter_frac(mut self, frac: f64) -> Self {
        self.jitter_frac = frac.clamp(0.0, 1.0);
        self
    }

    /// Virtual backoff charged before retry number `retry` (1-based:
    /// `retry = 1` is the first re-execution). Deterministic geometric
    /// schedule `base · factor^(retry−1)`, clamped to `max_backoff_secs`.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        (self.backoff_base_secs * self.backoff_factor.powi(retry as i32 - 1))
            .min(self.max_backoff_secs)
    }

    /// Like [`RetryPolicy::backoff_secs`] but with deterministic jitter
    /// seeded from `(job, task, retry)`, so that tasks killed in the same
    /// wave back off at different times instead of retrying in lockstep.
    /// The jittered delay lies in `[(1 − jitter_frac)·b, b]` for base
    /// delay `b`; with `jitter_frac == 0` it equals `backoff_secs` exactly.
    pub fn backoff_secs_jittered(&self, job: u64, task: u64, retry: u32) -> f64 {
        let base = self.backoff_secs(retry);
        if self.jitter_frac <= 0.0 || base == 0.0 {
            return base;
        }
        let draw = uniform(job, STREAM_XPORT ^ SALT_JITTER, task, retry, SALT_JITTER);
        base * (1.0 - self.jitter_frac.clamp(0.0, 1.0) * draw)
    }

    /// The virtual delay actually charged for a straggler of `delay`
    /// seconds: speculation caps it at `speculate_after_secs`.
    pub fn charged_straggle_secs(&self, delay: f64) -> f64 {
        delay.min(self.speculate_after_secs)
    }

    /// Whether a straggler of `delay` seconds triggers a speculative copy.
    pub fn speculates(&self, delay: f64) -> bool {
        delay > self.speculate_after_secs
    }
}

/// Execution counters accumulated by a fault-aware engine while running
/// one job (or one D-M2TD phase). These are the observable trace of the
/// failure model: tests pin checkpoint resumes and speculation on them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskCounters {
    /// Map-task attempts actually executed (including killed ones).
    pub map_attempts: usize,
    /// Map-task attempts killed by the fault plan.
    pub map_kills: usize,
    /// Reduce-task attempts actually executed (including killed ones).
    pub reduce_attempts: usize,
    /// Reduce-task attempts killed by the fault plan.
    pub reduce_kills: usize,
    /// Straggling attempts injected.
    pub stragglers: usize,
    /// Speculative backup copies launched.
    pub speculative_launches: usize,
    /// Envelopes dropped by the transport for failing their checksum
    /// (each one costs a retried attempt, never a wrong result).
    pub xport_corruptions: usize,
    /// Virtual seconds lost to backoff and (capped) straggler delays.
    pub virtual_lost_secs: f64,
}

impl TaskCounters {
    /// Sums another counter set into this one.
    pub fn absorb(&mut self, other: &TaskCounters) {
        self.map_attempts += other.map_attempts;
        self.map_kills += other.map_kills;
        self.reduce_attempts += other.reduce_attempts;
        self.reduce_kills += other.reduce_kills;
        self.stragglers += other.stragglers;
        self.speculative_launches += other.speculative_launches;
        self.xport_corruptions += other.xport_corruptions;
        self.virtual_lost_secs += other.virtual_lost_secs;
    }

    /// Total task attempts (map + reduce).
    pub fn attempts(&self) -> usize {
        self.map_attempts + self.reduce_attempts
    }

    /// Total kills (map + reduce).
    pub fn kills(&self) -> usize {
        self.map_kills + self.reduce_kills
    }
}

/// Errors surfaced by fault-aware execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A task was killed on every attempt the [`RetryPolicy`] allowed.
    RetryExhausted {
        /// Job id the task belonged to.
        job: u64,
        /// What kind of task it was.
        kind: TaskKind,
        /// Task index within the job.
        task: u64,
        /// Attempts consumed (= the policy's budget).
        attempts: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RetryExhausted {
                job,
                kind,
                task,
                attempts,
            } => write!(
                f,
                "retry budget exhausted: {kind} task {task} of job {job} was killed on all {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(42, 0.3, 0.2, 4.0);
        for job in 0..3u64 {
            for task in 0..50u64 {
                for attempt in 0..4u32 {
                    let a = plan.decide(job, TaskKind::Map, task, attempt);
                    let b = plan.decide(job, TaskKind::Map, task, attempt);
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn no_fault_plan_injects_nothing() {
        let plan = FaultPlan::none();
        for task in 0..100u64 {
            assert_eq!(plan.decide(1, TaskKind::Reduce, task, 0), FaultDecision::Ok);
            assert!(!plan.sim_attempt_fails(task, 0));
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(7, 0.25, 0.0, 0.0);
        let kills = (0..10_000u64)
            .filter(|&t| plan.decide(0, TaskKind::Map, t, 0) == FaultDecision::Kill)
            .count();
        let frac = kills as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "kill fraction {frac}");
    }

    #[test]
    fn job_scope_limits_faults() {
        let plan = FaultPlan::new(3, 1.0, 0.0, 0.0).in_job(2);
        assert_eq!(plan.decide(1, TaskKind::Map, 0, 0), FaultDecision::Ok);
        assert_eq!(plan.decide(2, TaskKind::Map, 0, 0), FaultDecision::Kill);
        assert!(plan.targets_job(2) && !plan.targets_job(1));
    }

    #[test]
    fn kill_cap_guarantees_eventual_success() {
        let plan = FaultPlan::new(9, 1.0, 0.0, 0.0).with_kill_cap(2);
        for task in 0..20u64 {
            assert_eq!(plan.decide(0, TaskKind::Map, task, 0), FaultDecision::Kill);
            assert_eq!(plan.decide(0, TaskKind::Map, task, 1), FaultDecision::Kill);
            assert_eq!(plan.decide(0, TaskKind::Map, task, 2), FaultDecision::Ok);
        }
    }

    #[test]
    fn kill_and_straggle_streams_are_independent() {
        // With kill_rate 0 but straggle_rate 1 every attempt straggles.
        let plan = FaultPlan::new(5, 0.0, 1.0, 2.5);
        assert_eq!(
            plan.decide(0, TaskKind::Reduce, 3, 0),
            FaultDecision::Straggle(2.5)
        );
    }

    #[test]
    fn backoff_schedule_is_geometric() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
            speculate_after_secs: 10.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_secs(0), 0.0);
        assert_eq!(p.backoff_secs(1), 1.0);
        assert_eq!(p.backoff_secs(2), 2.0);
        assert_eq!(p.backoff_secs(3), 4.0);
    }

    #[test]
    fn backoff_is_clamped_to_the_ceiling() {
        let p = RetryPolicy {
            backoff_base_secs: 1.0,
            backoff_factor: 10.0,
            max_backoff_secs: 30.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_secs(1), 1.0);
        assert_eq!(p.backoff_secs(2), 10.0);
        assert_eq!(p.backoff_secs(3), 30.0);
        assert_eq!(p.backoff_secs(20), 30.0);
        // The builder form clamps too.
        let q = RetryPolicy::default().with_max_backoff_secs(0.25);
        assert_eq!(q.backoff_secs(3), 0.25);
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_desynchronized() {
        let p = RetryPolicy::default().with_jitter_frac(0.5);
        let base = p.backoff_secs(2);
        let mut distinct = std::collections::HashSet::new();
        for task in 0..32u64 {
            let j = p.backoff_secs_jittered(7, task, 2);
            assert_eq!(
                j,
                p.backoff_secs_jittered(7, task, 2),
                "jitter must be pure"
            );
            assert!(
                j <= base && j >= base * 0.5,
                "jitter {j} outside [{}, {base}]",
                base * 0.5
            );
            distinct.insert(j.to_bits());
        }
        assert!(distinct.len() > 16, "tasks retry in lockstep: {distinct:?}");
        // Zero jitter degenerates to the plain schedule, bitwise.
        let plain = RetryPolicy::default();
        assert_eq!(plain.backoff_secs_jittered(7, 3, 2), plain.backoff_secs(2));
    }

    #[test]
    fn wire_stream_is_deterministic_scoped_and_honours_rate() {
        let plan = FaultPlan {
            seed: 19,
            ..FaultPlan::none().with_xport_corrupt_rate(0.5)
        };
        let mut hits = 0usize;
        let mut kinds = std::collections::HashSet::new();
        for task in 0..2_000u64 {
            let a = plan.wire_corruption(1, task, 0, 0);
            assert_eq!(
                a,
                plan.wire_corruption(1, task, 0, 0),
                "wire draws must be pure"
            );
            if let Some(kind) = a {
                hits += 1;
                kinds.insert(kind);
            }
        }
        let frac = hits as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "wire corruption fraction {frac}");
        assert_eq!(
            kinds.len(),
            2,
            "expected bit-flips and truncations: {kinds:?}"
        );
        // The two legs of one attempt draw independently.
        assert!((0..500u64)
            .any(|t| plan.wire_corruption(1, t, 0, 0) != plan.wire_corruption(1, t, 0, 1)));
        // Scope and zero rates are honoured.
        assert_eq!(plan.in_job(2).wire_corruption(1, 0, 0, 0), None);
        assert_eq!(FaultPlan::none().wire_corruption(1, 0, 0, 0), None);
    }

    #[test]
    fn doomed_tasks_are_killed_on_every_attempt() {
        let plan = FaultPlan::none().with_doom_mask(0b101).in_job(3);
        for attempt in 0..64u32 {
            assert_eq!(
                plan.decide(3, TaskKind::Reduce, 0, attempt),
                FaultDecision::Kill
            );
            assert_eq!(
                plan.decide(3, TaskKind::Reduce, 2, attempt),
                FaultDecision::Kill
            );
        }
        // Undoomed task, map tasks, out-of-scope jobs, and ids ≥ 64 run fine.
        assert_eq!(plan.decide(3, TaskKind::Reduce, 1, 0), FaultDecision::Ok);
        assert_eq!(plan.decide(3, TaskKind::Map, 0, 0), FaultDecision::Ok);
        assert_eq!(plan.decide(1, TaskKind::Reduce, 0, 0), FaultDecision::Ok);
        assert!(!plan.dooms_task(3, 64));
    }

    #[test]
    fn speculation_caps_straggler_delay() {
        let p = RetryPolicy {
            speculate_after_secs: 3.0,
            ..RetryPolicy::default()
        };
        assert!(!p.speculates(2.0));
        assert!(p.speculates(8.0));
        assert_eq!(p.charged_straggle_secs(2.0), 2.0);
        assert_eq!(p.charged_straggle_secs(8.0), 3.0);
    }

    #[test]
    fn sim_survival_consumes_attempts() {
        let plan = FaultPlan::sim_failures(11, 0.5);
        let mut failed = 0;
        let mut total_attempts = 0u32;
        for config in 0..2_000u64 {
            let (ok, used) = plan.sim_survives(config, 3);
            assert!((1..=3).contains(&used));
            total_attempts += used;
            if !ok {
                failed += 1;
            }
        }
        // P(all 3 attempts fail) = 0.125.
        let frac = failed as f64 / 2_000.0;
        assert!((frac - 0.125).abs() < 0.03, "exhaustion fraction {frac}");
        assert!(total_attempts > 2_000);
        // Deterministic.
        assert_eq!(plan.sim_survives(77, 3), plan.sim_survives(77, 3));
    }

    #[test]
    fn counters_absorb_sums_fields() {
        let mut a = TaskCounters {
            map_attempts: 1,
            map_kills: 1,
            virtual_lost_secs: 0.5,
            ..TaskCounters::default()
        };
        let b = TaskCounters {
            map_attempts: 2,
            reduce_attempts: 3,
            stragglers: 1,
            virtual_lost_secs: 1.5,
            ..TaskCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.map_attempts, 3);
        assert_eq!(a.reduce_attempts, 3);
        assert_eq!(a.attempts(), 6);
        assert_eq!(a.kills(), 1);
        assert_eq!(a.virtual_lost_secs, 2.0);
    }

    #[test]
    fn corruption_stream_is_deterministic_and_honours_rate() {
        let plan = FaultPlan::none().with_ckpt_corrupt_rate(0.5);
        let plan = FaultPlan { seed: 13, ..plan };
        let mut hits = 0usize;
        for phase in 0..2_000u64 {
            let a = plan.ckpt_corruption(phase);
            let b = plan.ckpt_corruption(phase);
            assert_eq!(a, b, "corruption draws must be pure");
            if a.is_some() {
                hits += 1;
            }
        }
        let frac = hits as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "corruption fraction {frac}");
        // All three kinds appear under a rate-1 stream.
        let all = FaultPlan {
            seed: 13,
            ..FaultPlan::none().with_ckpt_corrupt_rate(1.0)
        };
        let kinds: std::collections::HashSet<_> =
            (0..100u64).filter_map(|p| all.ckpt_corruption(p)).collect();
        assert_eq!(
            kinds.len(),
            3,
            "expected every CorruptionKind, got {kinds:?}"
        );
        // Zero-rate plans never corrupt.
        assert_eq!(FaultPlan::none().ckpt_corruption(1), None);
    }

    #[test]
    fn nan_cell_stream_is_deterministic_and_honours_rate() {
        let plan = FaultPlan {
            seed: 21,
            ..FaultPlan::none().with_nan_cell_rate(0.1)
        };
        let mut hits = 0usize;
        for cell in 0..5_000u64 {
            let a = plan.cell_goes_nan(3, cell);
            assert_eq!(a, plan.cell_goes_nan(3, cell));
            if a {
                hits += 1;
            }
        }
        let frac = hits as f64 / 5_000.0;
        assert!((frac - 0.1).abs() < 0.02, "nan fraction {frac}");
        // Streams are independent: same cells, different subsystem stream.
        assert!((0..5_000u64).any(|c| plan.cell_goes_nan(3, c) != plan.cell_goes_nan(4, c)));
        assert!(!FaultPlan::none().cell_goes_nan(0, 0));
    }

    #[test]
    fn crash_stream_is_deterministic_keyed_by_op_and_sequence() {
        let plan = FaultPlan {
            seed: 17,
            ..FaultPlan::none().with_crash_rate(0.5)
        };
        let mut hits = 0usize;
        for seq in 0..2_000u64 {
            let a = plan.crash_at(CrashOp::WalAppend, seq);
            assert_eq!(
                a,
                plan.crash_at(CrashOp::WalAppend, seq),
                "draws must be pure"
            );
            if a {
                hits += 1;
            }
        }
        let frac = hits as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "crash fraction {frac}");
        // Ops draw on independent streams: same sequences, different fates.
        assert!((0..200u64)
            .any(|s| plan.crash_at(CrashOp::Absorb, s) != plan.crash_at(CrashOp::Refresh, s)));
        // Zero-rate plans never crash.
        assert!(!FaultPlan::none().crash_at(CrashOp::SnapshotWrite, 0));
        // Op names round-trip through FromStr for the CLI's --crash-at.
        for op in CrashOp::ALL {
            assert_eq!(op.to_string().parse::<CrashOp>().unwrap(), op);
        }
        assert!("reboot".parse::<CrashOp>().is_err());
    }

    #[test]
    fn retry_exhausted_formats_usefully() {
        let e = FaultError::RetryExhausted {
            job: 3,
            kind: TaskKind::Reduce,
            task: 7,
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("retry budget exhausted"));
        assert!(msg.contains("reduce task 7"));
        assert!(msg.contains("job 3"));
        assert!(msg.contains("4 attempts"));
    }
}
