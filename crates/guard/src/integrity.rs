//! Shared record-integrity helpers (checkpoint format v2).
//!
//! Every durable artifact in the workspace — D-M2TD phase checkpoints,
//! the job manifest, the dead-letter queue, and the serve layer's
//! snapshots and write-ahead log — uses the same envelope: a JSON object
//! `{version, fingerprint, checksum, payload}` whose `checksum` is
//! FNV-1a-64 over the compact serialization of `fingerprint` followed by
//! that of `payload`. A bit-flip anywhere meaningful fails verification,
//! and verification failures degrade to "record absent" (plus a
//! quarantine rename at the call site), never to garbage deserialized
//! into the pipeline.
//!
//! This module hosts the helpers those stores share:
//!
//! * [`fnv1a64`] / [`record_checksum`] / [`seal_record`] / [`open_record`]
//!   — the envelope itself;
//! * [`write_atomic`] — uniquely named temp file + rename, so concurrent
//!   writers on one directory never tear each other's publishes;
//! * [`sequenced_files`] / [`sweep_retention`] — enumeration and
//!   keep-newest-N retention for `<prefix><seq>.json` file families
//!   (quarantined records, rolling snapshots).

use m2td_json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Current record format version. Records claiming any other version must
/// be treated as damaged (quarantined) by their store.
pub const FORMAT_VERSION: i64 = 2;

/// FNV-1a 64-bit hash over a byte stream, fed chunk by chunk.
pub fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Monotonic discriminator making temp-file names unique within this
/// process; combined with the pid it keeps concurrent writers (two stores
/// on one directory, or a restarted job racing its predecessor) from ever
/// clobbering each other's in-flight temp files.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Checksum binding a record's fingerprint and payload together: a
/// mutation of either (or of the stored checksum itself) fails
/// verification on load.
pub fn record_checksum(fingerprint: &Json, payload: &Json) -> u64 {
    fnv1a64(&[
        fingerprint.to_compact().as_bytes(),
        payload.to_compact().as_bytes(),
    ])
}

/// Wraps `payload` in a format-v2 record: `{version, fingerprint,
/// checksum, payload}` with the checksum covering both fingerprint and
/// payload.
pub fn seal_record(fingerprint: &Json, payload: Json) -> Json {
    let checksum = record_checksum(fingerprint, &payload);
    Json::Obj(vec![
        ("version".to_string(), Json::Int(FORMAT_VERSION)),
        ("fingerprint".to_string(), fingerprint.clone()),
        // Bit-cast through i64: the hash uses all 64 bits, and
        // `Json::Int` is an i64.
        ("checksum".to_string(), Json::Int(checksum as i64)),
        ("payload".to_string(), payload),
    ])
}

/// Verifies a format-v2 record (version and checksum) and returns its
/// fingerprint and payload; `None` means damaged or wrong version.
pub fn open_record(doc: &Json) -> Option<(&Json, &Json)> {
    match doc.get("version") {
        Some(Json::Int(v)) if *v == FORMAT_VERSION => {}
        _ => return None,
    }
    let stored = match doc.get("checksum") {
        Some(Json::Int(c)) => *c as u64,
        _ => return None,
    };
    let (fingerprint, payload) = match (doc.get("fingerprint"), doc.get("payload")) {
        (Some(f), Some(p)) => (f, p),
        _ => return None,
    };
    (record_checksum(fingerprint, payload) == stored).then_some((fingerprint, payload))
}

/// Atomically publishes `text` at `path`: write a uniquely named temp file
/// in the same directory, then rename into place. A crash mid-write leaves
/// only a `*.tmp.*` orphan, never a torn record at `path`.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("record");
    let tmp = path.with_file_name(format!("{name}.tmp.{}.{n}", std::process::id()));
    std::fs::write(&tmp, text).map_err(|e| format!("write temp {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("publish {}: {e}", path.display()))
}

/// Enumerates the `<prefix><seq>.json` files of `dir` as `(seq, path)`
/// pairs in arbitrary order. Higher sequence = newer. Files whose suffix
/// is not a bare `u64` are ignored — they belong to someone else.
pub fn sequenced_files(dir: &Path, prefix: &str) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(prefix) else {
                continue;
            };
            let Some(seq) = rest
                .strip_suffix(".json")
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((seq, entry.path()));
        }
    }
    out
}

/// Retention sweep over one `<prefix><seq>.json` family: keeps the newest
/// `keep` files, deletes older ones, and bumps `counter` in `m2td-obs`
/// once per successful removal. Returns how many files were removed.
/// Racing sweepers are safe: the remove only counts when it wins.
pub fn sweep_retention(dir: &Path, prefix: &str, keep: usize, counter: &str) -> usize {
    let mut files = sequenced_files(dir, prefix);
    if files.len() <= keep {
        return 0;
    }
    files.sort_by_key(|(seq, _)| *seq);
    let excess = files.len() - keep;
    let mut removed = 0;
    for (_, path) in files.into_iter().take(excess) {
        if std::fs::remove_file(&path).is_ok() {
            m2td_obs::counter_add(counter, 1);
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("m2td_integrity_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn seal_then_open_round_trips_and_detects_mutation() {
        let fp = Json::Obj(vec![("run".to_string(), Json::Int(7))]);
        let payload = Json::Arr(vec![Json::Float(1.5), Json::Int(-3)]);
        let doc = seal_record(&fp, payload.clone());
        let (f, p) = open_record(&doc).expect("sealed record verifies");
        assert_eq!(f, &fp);
        assert_eq!(p, &payload);

        // Any payload mutation breaks the stored checksum.
        let Json::Obj(mut fields) = doc else {
            panic!("sealed record is an object")
        };
        for (k, v) in fields.iter_mut() {
            if k == "payload" {
                *v = Json::Arr(vec![Json::Float(1.5), Json::Int(-4)]);
            }
        }
        assert!(open_record(&Json::Obj(fields)).is_none());
    }

    #[test]
    fn write_atomic_leaves_no_temp_files() {
        let dir = tmp_dir("atomic");
        let path = dir.join("rec.json");
        write_atomic(&path, "{\"ok\": true}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp orphans: {leftovers:?}");
    }

    /// One test covering both real call-site naming schemes: the dist
    /// checkpoint store's `phase<N>.quarantined.<seq>.json` family and the
    /// serve snapshot store's `snapshot.<seq>.json` family share this
    /// sweep.
    #[test]
    fn sweep_retention_keeps_newest_for_both_naming_schemes() {
        for prefix in ["phase1.quarantined.", "snapshot."] {
            let dir = tmp_dir(&format!("sweep_{}", prefix.trim_end_matches('.')));
            for seq in 1..=6u64 {
                std::fs::write(dir.join(format!("{prefix}{seq}.json")), "x").unwrap();
            }
            // A neighbor that merely shares the directory is untouched.
            std::fs::write(dir.join("other.2.json"), "y").unwrap();
            let removed = sweep_retention(&dir, prefix, 2, "guard.test_swept");
            assert_eq!(removed, 4, "prefix {prefix}");
            let mut kept: Vec<u64> = sequenced_files(&dir, prefix)
                .into_iter()
                .map(|(seq, _)| seq)
                .collect();
            kept.sort_unstable();
            assert_eq!(kept, vec![5, 6], "prefix {prefix}");
            assert!(dir.join("other.2.json").exists());
            // Already at/below the floor: nothing more to do.
            assert_eq!(sweep_retention(&dir, prefix, 2, "guard.test_swept"), 0);
        }
    }
}
