//! # m2td-guard — numerical guard rails for the M2TD pipeline
//!
//! A rank-deficient Gram matrix, a NaN leaking out of an ill-conditioned
//! eigensolve, or a corrupted checkpoint will silently poison the stitched
//! join tensor and the recovered core. This crate is the *validation*
//! layer: it detects those conditions where they arise and either repairs
//! them under a configured [`GuardPolicy`] or fails loudly with a
//! structured [`GuardError`] naming the detection site — never letting a
//! silent NaN/garbage core escape.
//!
//! Three families of checks:
//!
//! * **Spectrum guards** — [`gram_factor`] wraps every Gram → leading-
//!   eigenvector extraction with effective-rank and condition-number
//!   estimation. Deficient or ill-conditioned spectra are handled per the
//!   installed policy: `Fail` (structured error), `ClampRank` (truncate to
//!   the numerically supported rank), or `Regularize(λ)` (accept, with the
//!   ridge `λ` applied by downstream least-squares solves).
//! * **NaN/Inf sentinels** — [`check_cells`], [`check_matrix`] and
//!   [`check_dense`] scan phase-boundary artifacts (sub-tensor inputs,
//!   factors, join tensor, core) and report the offending site, mode and
//!   multi-index.
//! * **Error-budget acceptance** — [`budget_verdict`] bounds the relative
//!   reconstruction error of the recovered core against a configured
//!   budget before a run is marked healthy.
//!
//! ## Overhead contract (mirrors `m2td-obs`)
//!
//! Nothing is checked until [`install`] flips the global flag: while
//! uninstalled, every entry point is a single relaxed atomic load and the
//! numerical results are bitwise identical to the unguarded code paths.
//! Installing the guard never changes computed values either — unless a
//! policy explicitly repairs something (`ClampRank` truncating a factor),
//! in which case the repair is recorded in the `guard.*` counters of
//! `m2td-obs`.
//!
//! ## Detection counters
//!
//! Every detection is mirrored into `m2td-obs` (when its subscriber is
//! installed) under the `guard.*` namespace: `guard.nonfinite`,
//! `guard.rank_deficient`, `guard.rank_clamped`, `guard.ill_conditioned`,
//! `guard.regularized`, `guard.budget_exceeded`, and (bumped by
//! `m2td-dist`) `guard.ckpt_quarantined`.

pub mod integrity;

use m2td_linalg::{symmetric_eig, LinalgError, Matrix};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What to do when a spectrum guard detects a rank-deficient or
/// ill-conditioned Gram matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardPolicy {
    /// Surface a structured [`GuardError`] naming the detection site.
    Fail,
    /// Truncate the requested rank to the numerically supported one (at
    /// least 1). Downstream consumers must size themselves off the actual
    /// factor widths, not the requested ranks.
    ClampRank,
    /// Accept the requested rank; the ridge `λ` is applied by downstream
    /// least-squares solves (`U (UᵀU + λI)⁻¹`), bounding their
    /// conditioning. The extracted eigenvectors themselves are unchanged
    /// (adding `λI` to a Gram shifts eigenvalues, not eigenvectors).
    Regularize(f64),
}

impl std::str::FromStr for GuardPolicy {
    type Err = String;

    /// Parses `fail`, `clamp-rank`, `regularize` or `regularize:<λ>`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fail" => Ok(GuardPolicy::Fail),
            "clamp-rank" | "clamp" => Ok(GuardPolicy::ClampRank),
            "regularize" => Ok(GuardPolicy::Regularize(1e-8)),
            other => match other.strip_prefix("regularize:") {
                Some(lambda) => {
                    let l: f64 = lambda
                        .parse()
                        .map_err(|_| format!("invalid ridge '{lambda}' in guard policy"))?;
                    if !(l.is_finite() && l > 0.0) {
                        return Err(format!("ridge {l} must be a positive finite number"));
                    }
                    Ok(GuardPolicy::Regularize(l))
                }
                None => Err(format!(
                    "unknown guard policy '{other}' (expected fail | clamp-rank | regularize[:λ])"
                )),
            },
        }
    }
}

/// Configuration installed with [`install`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Response to deficient/ill-conditioned spectra.
    pub policy: GuardPolicy,
    /// Maximum accepted relative reconstruction error of the recovered
    /// core; `None` disables the acceptance check.
    pub error_budget: Option<f64>,
    /// Condition-number ceiling (`λ_max / λ_r`) for the leading block of a
    /// guarded spectrum.
    pub cond_threshold: f64,
    /// Relative eigenvalue floor defining the effective rank:
    /// `#{λ_i > rank_tolerance · λ_max}`.
    pub rank_tolerance: f64,
}

impl GuardConfig {
    /// Conservative defaults: `Fail` policy, no budget, condition ceiling
    /// `1e12`, rank tolerance `1e-12`.
    pub const DEFAULT: GuardConfig = GuardConfig {
        policy: GuardPolicy::Fail,
        error_budget: None,
        cond_threshold: 1e12,
        rank_tolerance: 1e-12,
    };

    /// [`Self::DEFAULT`] with the given policy.
    pub fn with_policy(policy: GuardPolicy) -> Self {
        Self {
            policy,
            ..Self::DEFAULT
        }
    }

    /// Sets the acceptance budget.
    pub fn with_error_budget(mut self, budget: f64) -> Self {
        self.error_budget = Some(budget);
        self
    }

    /// Sets the condition-number ceiling.
    pub fn with_cond_threshold(mut self, threshold: f64) -> Self {
        self.cond_threshold = threshold;
        self
    }
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Which non-finite value a sentinel caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteKind {
    /// Not-a-number.
    NaN,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
}

impl NonFiniteKind {
    /// Classifies a non-finite value; `None` for finite input.
    pub fn classify(v: f64) -> Option<NonFiniteKind> {
        if v.is_nan() {
            Some(NonFiniteKind::NaN)
        } else if v == f64::INFINITY {
            Some(NonFiniteKind::PosInf)
        } else if v == f64::NEG_INFINITY {
            Some(NonFiniteKind::NegInf)
        } else {
            None
        }
    }
}

impl fmt::Display for NonFiniteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonFiniteKind::NaN => write!(f, "NaN"),
            NonFiniteKind::PosInf => write!(f, "+inf"),
            NonFiniteKind::NegInf => write!(f, "-inf"),
        }
    }
}

/// A guard detection that the configured policy could not (or must not)
/// repair. Every variant names the detection site, so a failed run is
/// diagnosable without rerunning.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardError {
    /// A NaN/Inf crossed a phase boundary.
    NonFinite {
        /// Detection site (e.g. `"phase1.x1"`, `"phase3.core"`).
        site: &'static str,
        /// Mode the artifact belongs to, when meaningful.
        mode: Option<usize>,
        /// Multi-index (or `[row, col]`) of the offending value.
        index: Vec<usize>,
        /// Which non-finite value was found.
        kind: NonFiniteKind,
    },
    /// A Gram spectrum supports fewer directions than requested.
    RankDeficient {
        /// Detection site.
        site: &'static str,
        /// Mode of the Gram matrix, when known.
        mode: Option<usize>,
        /// The rank that was requested.
        requested: usize,
        /// The effective rank (`#{λ_i > tol · λ_max}`).
        effective: usize,
    },
    /// The leading block of a Gram spectrum exceeds the condition ceiling.
    IllConditioned {
        /// Detection site.
        site: &'static str,
        /// Mode of the Gram matrix, when known.
        mode: Option<usize>,
        /// Observed condition number `λ_max / λ_r`.
        cond: f64,
        /// The configured ceiling.
        threshold: f64,
    },
    /// The recovered core's relative reconstruction error exceeded the
    /// acceptance budget (only raised by callers that escalate an
    /// unhealthy [`GuardVerdict`]).
    BudgetExceeded {
        /// Observed relative reconstruction error.
        relative_error: f64,
        /// The configured budget.
        budget: f64,
    },
    /// An underlying linear-algebra kernel failed inside a guarded call.
    Linalg(LinalgError),
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_mode = |mode: &Option<usize>| match mode {
            Some(m) => format!(" (mode {m})"),
            None => String::new(),
        };
        match self {
            GuardError::NonFinite {
                site,
                mode,
                index,
                kind,
            } => write!(
                f,
                "non-finite value ({kind}) at {site}{} index {index:?}",
                fmt_mode(mode)
            ),
            GuardError::RankDeficient {
                site,
                mode,
                requested,
                effective,
            } => write!(
                f,
                "rank-deficient spectrum at {site}{}: requested rank {requested}, effective rank {effective}",
                fmt_mode(mode)
            ),
            GuardError::IllConditioned {
                site,
                mode,
                cond,
                threshold,
            } => write!(
                f,
                "ill-conditioned spectrum at {site}{}: condition {cond:.3e} exceeds threshold {threshold:.3e}",
                fmt_mode(mode)
            ),
            GuardError::BudgetExceeded {
                relative_error,
                budget,
            } => write!(
                f,
                "reconstruction error budget exceeded: relative error {relative_error:.3e} > budget {budget:.3e}"
            ),
            GuardError::Linalg(e) => write!(f, "linear algebra error in guarded call: {e}"),
        }
    }
}

impl std::error::Error for GuardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GuardError {
    fn from(e: LinalgError) -> Self {
        GuardError::Linalg(e)
    }
}

/// Outcome of the end-to-end acceptance check attached to a run report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardVerdict {
    /// True iff the relative reconstruction error is finite and within
    /// budget.
    pub healthy: bool,
    /// Observed relative reconstruction error of the recovered core over
    /// the observed (join) cells.
    pub relative_error: f64,
    /// The budget the error was checked against.
    pub budget: f64,
}

/// Global guard flag. Relaxed is enough: checking threads only need to
/// *eventually* observe installation (matching the `m2td-obs` contract),
/// and config readers get a happens-before edge from the config mutex.
static INSTALLED: AtomicBool = AtomicBool::new(false);

static CONFIG: Mutex<GuardConfig> = Mutex::new(GuardConfig::DEFAULT);

fn config_slot() -> MutexGuard<'static, GuardConfig> {
    CONFIG.lock().unwrap_or_else(|e| e.into_inner())
}

/// Enables guarding globally under `config`. Idempotent; a second call
/// replaces the configuration.
pub fn install(config: GuardConfig) {
    *config_slot() = config;
    INSTALLED.store(true, Ordering::SeqCst);
}

/// Disables guarding globally (the configuration is retained but unused).
pub fn uninstall() {
    INSTALLED.store(false, Ordering::SeqCst);
}

/// Whether the guard is installed. One relaxed load — this is the entire
/// overhead of every guard entry point while uninstalled.
#[inline]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// The installed configuration (the default when never installed).
pub fn config() -> GuardConfig {
    *config_slot()
}

/// The ridge to use in downstream least-squares solves:
/// `Some(λ)` iff the guard is installed with [`GuardPolicy::Regularize`].
pub fn ridge_lambda() -> Option<f64> {
    if !installed() {
        return None;
    }
    match config().policy {
        GuardPolicy::Regularize(l) => Some(l),
        _ => None,
    }
}

/// Effective rank of a descending eigenvalue spectrum:
/// `#{λ_i > tol · λ_max}` (0 when `λ_max ≤ 0`).
pub fn effective_rank(eigenvalues: &[f64], tol: f64) -> usize {
    let lambda_max = eigenvalues.first().copied().unwrap_or(0.0);
    if lambda_max <= 0.0 {
        return 0;
    }
    eigenvalues
        .iter()
        .filter(|&&l| l > tol * lambda_max)
        .count()
}

/// Condition number `λ_max / λ_r` of the leading `r` block of a
/// descending spectrum; infinite when `λ_r ≤ 0` or `r` exceeds the
/// spectrum length.
pub fn condition_number(eigenvalues: &[f64], r: usize) -> f64 {
    let lambda_max = eigenvalues.first().copied().unwrap_or(0.0);
    if r == 0 || r > eigenvalues.len() {
        return f64::INFINITY;
    }
    let lambda_r = eigenvalues[r - 1];
    if lambda_r <= 0.0 {
        return f64::INFINITY;
    }
    lambda_max / lambda_r
}

/// NaN/Inf sentinel over a matrix. No-op (one relaxed load) while
/// uninstalled. The error index is `[row, col]`.
pub fn check_matrix(site: &'static str, mode: Option<usize>, m: &Matrix) -> Result<(), GuardError> {
    if !installed() {
        return Ok(());
    }
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            if let Some(kind) = NonFiniteKind::classify(m.get(i, j)) {
                m2td_obs::counter_add("guard.nonfinite", 1);
                return Err(GuardError::NonFinite {
                    site,
                    mode,
                    index: vec![i, j],
                    kind,
                });
            }
        }
    }
    Ok(())
}

/// NaN/Inf sentinel over sparse cells `(multi_index, value)`. No-op (one
/// relaxed load) while uninstalled — the iterator is not consumed.
pub fn check_cells<I>(site: &'static str, cells: I) -> Result<(), GuardError>
where
    I: IntoIterator<Item = (Vec<usize>, f64)>,
{
    if !installed() {
        return Ok(());
    }
    for (index, v) in cells {
        if let Some(kind) = NonFiniteKind::classify(v) {
            m2td_obs::counter_add("guard.nonfinite", 1);
            return Err(GuardError::NonFinite {
                site,
                mode: None,
                index,
                kind,
            });
        }
    }
    Ok(())
}

/// NaN/Inf sentinel over a dense row-major buffer of shape `dims`. The
/// error index is the multi-index of the offending element.
pub fn check_dense(site: &'static str, dims: &[usize], data: &[f64]) -> Result<(), GuardError> {
    if !installed() {
        return Ok(());
    }
    for (lin, &v) in data.iter().enumerate() {
        if let Some(kind) = NonFiniteKind::classify(v) {
            m2td_obs::counter_add("guard.nonfinite", 1);
            return Err(GuardError::NonFinite {
                site,
                mode: None,
                index: multi_index(dims, lin),
                kind,
            });
        }
    }
    Ok(())
}

/// Row-major multi-index of linear position `lin` in shape `dims`.
fn multi_index(dims: &[usize], mut lin: usize) -> Vec<usize> {
    let mut idx = vec![0usize; dims.len()];
    for (slot, &d) in idx.iter_mut().zip(dims.iter()).rev() {
        if d > 0 {
            *slot = lin % d;
            lin /= d;
        }
    }
    idx
}

/// Leading-`r` eigenvectors of a Gram matrix, guarded.
///
/// While uninstalled this is exactly `symmetric_eig` + `leading_columns`
/// (plus one relaxed load) — results are bitwise identical to the
/// unguarded path. While installed, the Gram is first scanned for
/// non-finite entries and the spectrum is assessed:
///
/// * effective rank below `r` → [`GuardPolicy`] decides: fail, clamp to
///   the effective rank (≥ 1), or accept with regularization;
/// * leading-block condition number above the ceiling → fail, clamp to
///   the largest acceptable block, or accept with regularization.
///
/// Repairs never alter the retained columns — clamping only drops
/// trailing ones — so any two policies agree on the columns they both
/// keep.
pub fn gram_factor(
    site: &'static str,
    mode: Option<usize>,
    gram: &Matrix,
    r: usize,
) -> Result<Matrix, GuardError> {
    if !installed() {
        let eig = symmetric_eig(gram)?;
        return Ok(eig.eigenvectors.leading_columns(r)?);
    }
    check_matrix(site, mode, gram)?;
    let cfg = config();
    let eig = symmetric_eig(gram)?;
    let evs = &eig.eigenvalues; // descending
    let eff = effective_rank(evs, cfg.rank_tolerance);
    let r_used = if eff < r {
        m2td_obs::counter_add("guard.rank_deficient", 1);
        match cfg.policy {
            GuardPolicy::Fail => {
                return Err(GuardError::RankDeficient {
                    site,
                    mode,
                    requested: r,
                    effective: eff,
                })
            }
            GuardPolicy::ClampRank => {
                m2td_obs::counter_add("guard.rank_clamped", 1);
                eff.max(1)
            }
            GuardPolicy::Regularize(_) => {
                m2td_obs::counter_add("guard.regularized", 1);
                r
            }
        }
    } else {
        let cond = condition_number(evs, r);
        if cond > cfg.cond_threshold {
            m2td_obs::counter_add("guard.ill_conditioned", 1);
            match cfg.policy {
                GuardPolicy::Fail => {
                    return Err(GuardError::IllConditioned {
                        site,
                        mode,
                        cond,
                        threshold: cfg.cond_threshold,
                    })
                }
                GuardPolicy::ClampRank => {
                    m2td_obs::counter_add("guard.rank_clamped", 1);
                    let mut rp = r;
                    while rp > 1 && condition_number(evs, rp) > cfg.cond_threshold {
                        rp -= 1;
                    }
                    rp
                }
                GuardPolicy::Regularize(_) => {
                    m2td_obs::counter_add("guard.regularized", 1);
                    r
                }
            }
        } else {
            r
        }
    };
    Ok(eig.eigenvectors.leading_columns(r_used)?)
}

/// Outcome of a [`with_error_budget`] acceptance gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetGate {
    /// The measured error is finite and within the effective budget.
    Accepted,
    /// The measured error exceeded the effective budget (or was
    /// non-finite); the caller must fall back to its exact route.
    Rejected,
}

impl BudgetGate {
    /// Whether the approximate result may be used.
    pub fn accepted(self) -> bool {
        matches!(self, BudgetGate::Accepted)
    }
}

/// Gates an *approximate* computation behind an error budget.
///
/// `compute` runs unconditionally and must return its result together
/// with a **measured** relative error. The error is then checked against
/// the installed [`GuardConfig::error_budget`] when the guard is
/// installed and a budget is configured, and against `default_budget`
/// otherwise — approximate routes are never accepted *unmeasured*, even
/// with the guard uninstalled. A rejection does not bump any `guard.*`
/// counter (nothing corrupted the pipeline — the caller simply retries
/// exactly); callers record their own fallback counters.
pub fn with_error_budget<T>(
    default_budget: f64,
    compute: impl FnOnce() -> Result<(T, f64), GuardError>,
) -> Result<(T, f64, BudgetGate), GuardError> {
    let budget = if installed() {
        config().error_budget.unwrap_or(default_budget)
    } else {
        default_budget
    };
    let (value, relative_error) = compute()?;
    let gate = if relative_error.is_finite() && relative_error <= budget {
        BudgetGate::Accepted
    } else {
        BudgetGate::Rejected
    };
    Ok((value, relative_error, gate))
}

/// The end-to-end acceptance check: compares the observed relative
/// reconstruction error against the installed budget. Returns `None` when
/// the guard is uninstalled or no budget is configured; an unhealthy
/// verdict bumps `guard.budget_exceeded`.
pub fn budget_verdict(relative_error: f64) -> Option<GuardVerdict> {
    if !installed() {
        return None;
    }
    let budget = config().error_budget?;
    let healthy = relative_error.is_finite() && relative_error <= budget;
    if !healthy {
        m2td_obs::counter_add("guard.budget_exceeded", 1);
    }
    Some(GuardVerdict {
        healthy,
        relative_error,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Guard state is process-global; tests that install serialize here.
    static LOCK: TestMutex<()> = TestMutex::new(());

    fn with_guard<T>(cfg: GuardConfig, f: impl FnOnce() -> T) -> T {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(cfg);
        let out = f();
        uninstall();
        out
    }

    /// Gram of a matrix whose columns have the given singular values.
    fn diag_gram(values: &[f64]) -> Matrix {
        let n = values.len();
        Matrix::from_fn(n, n, |i, j| if i == j { values[i] } else { 0.0 })
    }

    #[test]
    fn uninstalled_checks_are_inert() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!installed());
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        // Sentinels pass without looking.
        assert!(check_matrix("t", None, &m).is_ok());
        assert!(check_cells("t", vec![(vec![0], f64::NAN)]).is_ok());
        assert!(check_dense("t", &[2], &[f64::NAN, 1.0]).is_ok());
        assert!(budget_verdict(9.9).is_none());
        assert!(ridge_lambda().is_none());
    }

    #[test]
    fn uninstalled_gram_factor_matches_plain_eig() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let gram = diag_gram(&[4.0, 2.0, 1.0]);
        let guarded = gram_factor("t", None, &gram, 2).unwrap();
        let eig = symmetric_eig(&gram).unwrap();
        let plain = eig.eigenvectors.leading_columns(2).unwrap();
        assert_eq!(guarded.as_slice(), plain.as_slice());
    }

    #[test]
    fn nonfinite_is_reported_with_site_and_index() {
        let cfg = GuardConfig::DEFAULT;
        with_guard(cfg, || {
            let mut m = Matrix::zeros(2, 3);
            m.set(1, 2, f64::INFINITY);
            match check_matrix("phase1.factor", Some(1), &m) {
                Err(GuardError::NonFinite {
                    site,
                    mode,
                    index,
                    kind,
                }) => {
                    assert_eq!(site, "phase1.factor");
                    assert_eq!(mode, Some(1));
                    assert_eq!(index, vec![1, 2]);
                    assert_eq!(kind, NonFiniteKind::PosInf);
                }
                other => panic!("expected NonFinite, got {other:?}"),
            }
            let cells = vec![(vec![0, 1], 1.0), (vec![2, 3], f64::NAN)];
            match check_cells("phase1.x1", cells) {
                Err(GuardError::NonFinite { index, kind, .. }) => {
                    assert_eq!(index, vec![2, 3]);
                    assert_eq!(kind, NonFiniteKind::NaN);
                }
                other => panic!("expected NonFinite, got {other:?}"),
            }
        });
    }

    #[test]
    fn dense_sentinel_reports_multi_index() {
        with_guard(GuardConfig::DEFAULT, || {
            let mut data = vec![0.0; 2 * 3 * 4];
            let lin = 12 + 2 * 4 + 3; // linearized index [1, 2, 3]
            data[lin] = f64::NEG_INFINITY;
            match check_dense("phase3.core", &[2, 3, 4], &data) {
                Err(GuardError::NonFinite { index, kind, .. }) => {
                    assert_eq!(index, vec![1, 2, 3]);
                    assert_eq!(kind, NonFiniteKind::NegInf);
                }
                other => panic!("expected NonFinite, got {other:?}"),
            }
        });
    }

    #[test]
    fn effective_rank_and_condition() {
        assert_eq!(effective_rank(&[4.0, 2.0, 0.0], 1e-12), 2);
        assert_eq!(effective_rank(&[0.0, 0.0], 1e-12), 0);
        assert_eq!(effective_rank(&[], 1e-12), 0);
        assert_eq!(condition_number(&[8.0, 2.0], 2), 4.0);
        assert!(condition_number(&[8.0, 0.0], 2).is_infinite());
        assert!(condition_number(&[8.0], 2).is_infinite());
    }

    #[test]
    fn fail_policy_rejects_deficient_rank() {
        let cfg = GuardConfig::with_policy(GuardPolicy::Fail);
        with_guard(cfg, || {
            let gram = diag_gram(&[4.0, 0.0, 0.0]);
            match gram_factor("phase1.factor", Some(0), &gram, 2) {
                Err(GuardError::RankDeficient {
                    requested,
                    effective,
                    mode,
                    ..
                }) => {
                    assert_eq!((requested, effective, mode), (2, 1, Some(0)));
                }
                other => panic!("expected RankDeficient, got {other:?}"),
            }
        });
    }

    #[test]
    fn clamp_policy_truncates_to_effective_rank() {
        let cfg = GuardConfig::with_policy(GuardPolicy::ClampRank);
        with_guard(cfg, || {
            let gram = diag_gram(&[4.0, 3.0, 0.0]);
            let u = gram_factor("t", None, &gram, 3).unwrap();
            assert_eq!(u.cols(), 2, "rank should clamp from 3 to 2");
            assert_eq!(u.rows(), 3);
        });
    }

    #[test]
    fn regularize_policy_accepts_full_rank_and_exposes_ridge() {
        let cfg = GuardConfig::with_policy(GuardPolicy::Regularize(1e-6));
        with_guard(cfg, || {
            let gram = diag_gram(&[4.0, 0.0]);
            let u = gram_factor("t", None, &gram, 2).unwrap();
            assert_eq!(u.cols(), 2);
            assert_eq!(ridge_lambda(), Some(1e-6));
        });
    }

    #[test]
    fn condition_ceiling_is_enforced() {
        let cfg = GuardConfig::with_policy(GuardPolicy::Fail).with_cond_threshold(1e6);
        with_guard(cfg, || {
            let gram = diag_gram(&[1.0, 1e-9, 1e-10]);
            match gram_factor("t", None, &gram, 2) {
                Err(GuardError::IllConditioned {
                    cond, threshold, ..
                }) => {
                    assert!(cond > threshold);
                }
                other => panic!("expected IllConditioned, got {other:?}"),
            }
        });
        let clamp = GuardConfig::with_policy(GuardPolicy::ClampRank).with_cond_threshold(1e6);
        with_guard(clamp, || {
            let gram = diag_gram(&[1.0, 1e-9, 1e-10]);
            let u = gram_factor("t", None, &gram, 3).unwrap();
            assert_eq!(u.cols(), 1, "only the leading direction is acceptable");
        });
    }

    #[test]
    fn healthy_spectrum_passes_every_policy_identically() {
        let gram = diag_gram(&[4.0, 2.0, 1.0]);
        let plain = {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            uninstall();
            gram_factor("t", None, &gram, 2).unwrap()
        };
        for policy in [
            GuardPolicy::Fail,
            GuardPolicy::ClampRank,
            GuardPolicy::Regularize(1e-8),
        ] {
            let u = with_guard(GuardConfig::with_policy(policy), || {
                gram_factor("t", None, &gram, 2).unwrap()
            });
            assert_eq!(
                u.as_slice(),
                plain.as_slice(),
                "{policy:?} altered a healthy factor"
            );
        }
    }

    #[test]
    fn budget_verdict_classifies_health() {
        let cfg = GuardConfig::DEFAULT.with_error_budget(0.25);
        with_guard(cfg, || {
            let ok = budget_verdict(0.1).unwrap();
            assert!(ok.healthy);
            assert_eq!(ok.budget, 0.25);
            let bad = budget_verdict(0.5).unwrap();
            assert!(!bad.healthy);
            let nan = budget_verdict(f64::NAN).unwrap();
            assert!(!nan.healthy, "non-finite error can never be healthy");
        });
        with_guard(GuardConfig::DEFAULT, || {
            assert!(budget_verdict(0.1).is_none(), "no budget, no verdict");
        });
    }

    #[test]
    fn detections_bump_guard_counters() {
        let cfg = GuardConfig::with_policy(GuardPolicy::ClampRank).with_error_budget(1e-9);
        with_guard(cfg, || {
            m2td_obs::install();
            m2td_obs::reset();
            let gram = diag_gram(&[4.0, 0.0]);
            let _ = gram_factor("t", None, &gram, 2).unwrap();
            let _ = budget_verdict(1.0).unwrap();
            let mut m = Matrix::zeros(1, 1);
            m.set(0, 0, f64::NAN);
            let _ = check_matrix("t", None, &m);
            let snap = m2td_obs::snapshot();
            assert_eq!(snap.counter("guard.rank_deficient"), Some(1));
            assert_eq!(snap.counter("guard.rank_clamped"), Some(1));
            assert_eq!(snap.counter("guard.budget_exceeded"), Some(1));
            assert_eq!(snap.counter("guard.nonfinite"), Some(1));
            m2td_obs::reset();
            m2td_obs::uninstall();
        });
    }

    #[test]
    fn with_error_budget_gates_on_installed_then_default_budget() {
        // Uninstalled: the default budget applies.
        {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            uninstall();
            let (v, err, gate) = with_error_budget(0.5, || Ok((7, 0.4))).unwrap();
            assert_eq!((v, err), (7, 0.4));
            assert!(gate.accepted());
            let (_, _, gate) = with_error_budget(0.5, || Ok(((), 0.6))).unwrap();
            assert_eq!(gate, BudgetGate::Rejected);
            let (_, _, gate) = with_error_budget(0.5, || Ok(((), f64::NAN))).unwrap();
            assert!(!gate.accepted(), "non-finite error can never be accepted");
        }
        // Installed with a budget: the installed budget wins.
        let cfg = GuardConfig::DEFAULT.with_error_budget(0.1);
        with_guard(cfg, || {
            let (_, _, gate) = with_error_budget(0.5, || Ok(((), 0.3))).unwrap();
            assert_eq!(gate, BudgetGate::Rejected, "installed budget must win");
        });
        // Installed without a budget: falls back to the default.
        with_guard(GuardConfig::DEFAULT, || {
            let (_, _, gate) = with_error_budget(0.5, || Ok(((), 0.3))).unwrap();
            assert!(gate.accepted());
        });
    }

    #[test]
    fn policy_parsing() {
        assert_eq!("fail".parse::<GuardPolicy>(), Ok(GuardPolicy::Fail));
        assert_eq!(
            "clamp-rank".parse::<GuardPolicy>(),
            Ok(GuardPolicy::ClampRank)
        );
        assert_eq!(
            "regularize".parse::<GuardPolicy>(),
            Ok(GuardPolicy::Regularize(1e-8))
        );
        assert_eq!(
            "regularize:0.001".parse::<GuardPolicy>(),
            Ok(GuardPolicy::Regularize(0.001))
        );
        assert!("regularize:-1".parse::<GuardPolicy>().is_err());
        assert!("bogus".parse::<GuardPolicy>().is_err());
    }

    #[test]
    fn errors_display_their_site() {
        let e = GuardError::NonFinite {
            site: "phase2.join",
            mode: None,
            index: vec![1, 2, 3],
            kind: NonFiniteKind::NaN,
        };
        let s = e.to_string();
        assert!(s.contains("phase2.join") && s.contains("NaN") && s.contains("[1, 2, 3]"));
        let e = GuardError::RankDeficient {
            site: "phase1.factor",
            mode: Some(2),
            requested: 4,
            effective: 1,
        };
        let s = e.to_string();
        assert!(s.contains("phase1.factor") && s.contains("mode 2"));
    }
}
