//! Minimal, dependency-free JSON support for the m2td workspace.
//!
//! The build environment is fully offline, so persistence (tensor/report
//! save + load) runs on this small crate instead of serde. It provides a
//! [`Json`] value type, a strict recursive-descent parser, compact and
//! pretty writers, and the [`ToJson`]/[`FromJson`] conversion traits the
//! rest of the workspace implements for its own types.
//!
//! Numbers keep the integer/float distinction: a literal without `.`,
//! `e`, or `E` that fits an `i64` parses as [`Json::Int`], everything
//! else as [`Json::Float`]. Floats are written with Rust's shortest
//! round-trip formatting; non-finite floats serialise as `null`, matching
//! serde_json's default behaviour.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

/// Errors produced by parsing or by typed extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Malformed JSON text, with a byte offset and message.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A value had the wrong JSON type for the requested conversion.
    Type {
        /// What the caller wanted.
        expected: &'static str,
        /// What the document held.
        found: &'static str,
    },
    /// A required object key was absent.
    MissingKey(String),
    /// Domain-level validation failed after structurally valid JSON.
    Invalid(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Type { expected, found } => {
                write!(f, "JSON type error: expected {expected}, found {found}")
            }
            JsonError::MissingKey(k) => write!(f, "JSON object missing key `{k}`"),
            JsonError::Invalid(m) => write!(f, "invalid JSON document: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document, requiring the whole input be consumed.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Name of this value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "number (int)",
            Json::Float(_) => "number (float)",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object key.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(_) => self
                .get(key)
                .ok_or_else(|| JsonError::MissingKey(key.to_string())),
            other => Err(JsonError::Type {
                expected: "object",
                found: other.type_name(),
            }),
        }
    }

    /// Numeric value as `f64` (ints widen).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(JsonError::Type {
                expected: "number",
                found: other.type_name(),
            }),
        }
    }

    /// Non-negative integer as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        match self {
            Json::Int(i) if *i >= 0 => Ok(*i as usize),
            other => Err(JsonError::Type {
                expected: "non-negative integer",
                found: other.type_name(),
            }),
        }
    }

    /// Non-negative integer as `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(JsonError::Type {
                expected: "non-negative integer",
                found: other.type_name(),
            }),
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::Type {
                expected: "string",
                found: other.type_name(),
            }),
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::Type {
                expected: "bool",
                found: other.type_name(),
            }),
        }
    }

    /// Array elements.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(JsonError::Type {
                expected: "array",
                found: other.type_name(),
            }),
        }
    }

    /// Object entries.
    pub fn as_object(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(v) => Ok(v),
            other => Err(JsonError::Type {
                expected: "object",
                found: other.type_name(),
            }),
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // `{}` prints integral floats without a fractional part; keep the
        // value a float on round trip.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so valid UTF-8).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let step = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b < 0xE0 => 2,
                        b if b < 0xF0 => 3,
                        _ => 4,
                    };
                    self.pos += step;
                    out.push_str(std::str::from_utf8(&rest[..step]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::Parse {
                offset: start,
                message: format!("malformed number `{text}`"),
            })
    }
}

/// Conversion of a Rust value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion of a [`Json`] tree back into a Rust value, with validation.
pub trait FromJson: Sized {
    /// Reads the value, failing on structural or domain errors.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for usize {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_usize()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for u64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
    }
}

impl ToJson for u8 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for u8 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let v = json.as_u64()?;
        u8::try_from(v).map_err(|_| JsonError::Invalid(format!("{v} does not fit in a u8")))
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for u32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let v = json.as_u64()?;
        u32::try_from(v).map_err(|_| JsonError::Invalid(format!("{v} does not fit in a u32")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.as_str()?.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json.as_array()?;
        if items.len() != 2 {
            return Err(JsonError::Invalid(format!(
                "expected a 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json.as_array()?;
        if items.len() != 3 {
            return Err(JsonError::Invalid(format!(
                "expected a 3-element array, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

impl<K: Into<String> + Clone, V: ToJson> ToJson for BTreeMap<K, V>
where
    K: Ord,
{
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.clone().into(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("m2td".into())),
            ("dims".into(), Json::Arr(vec![Json::Int(3), Json::Int(4)])),
            ("density".into(), Json::Float(0.125)),
            ("neg".into(), Json::Float(-1.5e-8)),
            ("big".into(), Json::Int(i64::MAX)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [
            0.1,
            1.0,
            -3.25,
            1e300,
            5e-324,
            f64::MAX,
            std::f64::consts::PI,
        ] {
            let text = Json::Float(v).to_compact();
            match Json::parse(&text).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), v.to_bits(), "text {text}"),
                other => panic!("float reparsed as {other:?}"),
            }
        }
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn integer_vs_float_distinction() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("7e0").unwrap(), Json::Float(7.0));
        // Ints widen through as_f64.
        assert_eq!(Json::Int(7).as_f64().unwrap(), 7.0);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"slash\\tab\tunicode\u{263A}";
        let text = Json::Str(s.into()).to_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.into()));
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "[1 2]",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "01a",
            "nul",
            "-",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn typed_accessors_enforce_types() {
        let doc = Json::parse(r#"{"a": 1, "b": "x"}"#).unwrap();
        assert_eq!(doc.require("a").unwrap().as_usize().unwrap(), 1);
        assert!(doc.require("b").unwrap().as_f64().is_err());
        assert!(matches!(doc.require("c"), Err(JsonError::MissingKey(_))));
        assert!(Json::Int(-1).as_usize().is_err());
    }

    #[test]
    fn tuple_and_vec_conversions() {
        let rows: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let json = rows.to_json();
        let back: Vec<(String, f64)> = FromJson::from_json(&json).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn triple_conversions_round_trip() {
        let cells: Vec<(u8, u64, f64)> = vec![(0, 17, 1.25), (1, u64::MAX >> 11, -0.5)];
        let json = cells.to_json();
        let back: Vec<(u8, u64, f64)> = FromJson::from_json(&json).unwrap();
        assert_eq!(back, cells);
        // Wrong arity is rejected, not silently truncated.
        let pair = Json::Arr(vec![Json::Int(1), Json::Int(2)]);
        assert!(<(u8, u8, u8)>::from_json(&pair).is_err());
    }

    #[test]
    fn small_ints_are_range_checked() {
        assert_eq!(u8::from_json(&Json::Int(255)).unwrap(), 255);
        assert!(u8::from_json(&Json::Int(256)).is_err());
        assert!(u8::from_json(&Json::Int(-1)).is_err());
        assert_eq!(u32::from_json(&Json::Int(1 << 30)).unwrap(), 1 << 30);
        assert!(u32::from_json(&Json::Int(1 << 40)).is_err());
    }
}
