//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used by the CP-ALS extension (normal-equation solves) and by tests as an
//! independent check of positive-definiteness.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// The lower-triangular factor.
    pub l: Matrix,
}

impl CholeskyFactor {
    /// Recomposes `L Lᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        self.l
            .matmul_transpose(&self.l)
            .expect("L is square by construction")
    }

    /// Solves `A x = b` (with `A = L Lᵀ`) by forward and back substitution.
    #[allow(clippy::needless_range_loop)] // `x` is read before being written at index k
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = crate::solve::solve_lower_triangular(&self.l, b)?;
        // Back substitution with Lᵀ without materializing the transpose.
        let n = self.l.rows();
        let mut x = y;
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * x[k];
            }
            let d = self.l.get(i, i);
            if d.abs() < f64::EPSILON {
                return Err(LinalgError::SingularPivot { pivot: i, value: d });
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

/// Computes the Cholesky factorisation of a symmetric positive-definite
/// matrix.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for a non-square input.
/// * [`LinalgError::EmptyInput`] for an empty input.
/// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
pub fn cholesky(a: &Matrix) -> Result<CholeskyFactor> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { shape: (m, n) });
    }
    if n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            let ljk = l.get(j, k);
            d -= ljk * ljk;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
        }
        let djj = d.sqrt();
        l.set(j, j, djj);
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, s / djj);
        }
    }
    Ok(CholeskyFactor { l })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = cholesky(&a).unwrap();
        assert!((ch.l.get(0, 0) - 2.0).abs() < 1e-14);
        assert!((ch.l.get(1, 0) - 1.0).abs() < 1e-14);
        assert!((ch.l.get(1, 1) - 2.0f64.sqrt()).abs() < 1e-14);
        assert_eq!(ch.l.get(0, 1), 0.0);
    }

    #[test]
    fn reconstruction_round_trip() {
        // Build an SPD matrix as BᵀB + I.
        let b = Matrix::from_fn(5, 5, |i, j| ((i * 5 + j) as f64).sin());
        let mut a = b.transpose_matmul(&b).unwrap();
        for i in 0..5 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let ch = cholesky(&a).unwrap();
        let err = ch.reconstruct().sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = cholesky(&a).unwrap().solve(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-12);
        assert!((x[1] - x_true[1]).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match cholesky(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot, value }) => {
                // Pivot 1's Schur complement is 1 - 2·2/1 = -3.
                assert_eq!(pivot, 1);
                assert!((value + 3.0).abs() < 1e-12);
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
        assert!(cholesky(&Matrix::zeros(0, 0)).is_err());
    }
}
