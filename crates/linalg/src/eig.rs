//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The M2TD pipeline obtains the leading left singular vectors of a (very
//! wide) matricization `X₍ₙ₎` from the eigendecomposition of the small Gram
//! matrix `X₍ₙ₎ X₍ₙ₎ᵀ` — mode sizes are the parameter resolutions (tens),
//! so an `O(I_n³)` dense Jacobi sweep is both simple and fast.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    /// Eigenvalues sorted in decreasing order.
    pub eigenvalues: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl SymmetricEig {
    /// Recomposes `V diag(λ) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let v = &self.eigenvectors;
        let mut scaled = v.clone();
        for i in 0..n {
            for j in 0..n {
                scaled.set(i, j, v.get(i, j) * self.eigenvalues[j]);
            }
        }
        scaled
            .matmul_transpose(v)
            .expect("shapes agree by construction")
    }
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix using cyclic Jacobi
/// rotations.
///
/// Symmetry is assumed; only the upper triangle of the rotated working copy
/// is consulted when testing convergence, and the caller is expected to pass
/// a numerically symmetric matrix (such as a Gram matrix).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if the input is not square.
/// * [`LinalgError::EmptyInput`] for an empty matrix.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not reach
///   machine-precision scale within the sweep budget (does not occur
///   for finite symmetric input in practice).
pub fn symmetric_eig(a: &Matrix) -> Result<SymmetricEig> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { shape: (m, n) });
    }
    if n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    let _span = m2td_obs::span!("linalg.eig");

    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let scale = a.max_abs().max(1.0);
    let tol = 1e-14 * scale;

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(w.get(p, q).abs());
            }
        }
        if off <= tol {
            return Ok(sort_eig(w, v));
        }
        let _ = sweep;

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w.get(p, q);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = w.get(p, p);
                let aqq = w.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation W <- JᵀWJ on rows/cols p and q.
                for k in 0..n {
                    let wkp = w.get(k, p);
                    let wkq = w.get(k, q);
                    w.set(k, p, c * wkp - s * wkq);
                    w.set(k, q, s * wkp + c * wkq);
                }
                for k in 0..n {
                    let wpk = w.get(p, k);
                    let wqk = w.get(q, k);
                    w.set(p, k, c * wpk - s * wqk);
                    w.set(q, k, s * wpk + c * wqk);
                }
                // Accumulate eigenvectors V <- VJ.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        kernel: "symmetric_eig",
        iterations: MAX_SWEEPS,
    })
}

/// Extracts the diagonal as eigenvalues and sorts (value, vector) pairs in
/// decreasing eigenvalue order.
fn sort_eig(w: Matrix, v: Matrix) -> SymmetricEig {
    let n = w.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w.get(i, i)).collect();
    idx.sort_by(|&a, &b| {
        diag[b]
            .partial_cmp(&diag[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let eigenvalues: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        for row in 0..n {
            eigenvectors.set(row, new_col, v.get(row, old_col));
        }
    }
    SymmetricEig {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]).unwrap();
        let e = symmetric_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 7.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_fn(6, 6, |i, j| {
            let x = ((i * 6 + j) as f64).sin();
            let y = ((j * 6 + i) as f64).sin();
            x + y // symmetric by construction
        });
        let e = symmetric_eig(&a).unwrap();
        let d = e.reconstruct().sub(&a).unwrap().frobenius_norm();
        assert!(d < 1e-10, "reconstruction error {d}");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(8, 8, |i, j| 1.0 / ((i + j + 1) as f64)); // Hilbert, symmetric
        let e = symmetric_eig(&a).unwrap();
        assert!(e.eigenvectors.orthonormality_defect() < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i + 1) * (j + 1)) as f64);
        let e = symmetric_eig(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn gram_matrix_eigenvalues_nonnegative() {
        let x = Matrix::from_fn(4, 9, |i, j| ((i * 9 + j) as f64).cos());
        let g = x.gram_rows();
        let e = symmetric_eig(&g).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-9, "Gram eigenvalue {l} should be >= 0");
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            symmetric_eig(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            symmetric_eig(&Matrix::zeros(0, 0)),
            Err(LinalgError::EmptyInput)
        ));
    }

    #[test]
    fn zero_matrix_has_zero_spectrum() {
        let e = symmetric_eig(&Matrix::zeros(3, 3)).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l == 0.0));
        assert!(e.eigenvectors.orthonormality_defect() < 1e-14);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let e = symmetric_eig(&a).unwrap();
        for j in 0..3 {
            let vj = e.eigenvectors.col(j);
            let av = a.matvec(&vj).unwrap();
            for i in 0..3 {
                assert!((av[i] - e.eigenvalues[j] * vj[i]).abs() < 1e-10);
            }
        }
    }
}
