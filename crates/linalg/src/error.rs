//! Error type shared by all linear-algebra kernels.

use std::fmt;

/// Errors produced by the linear-algebra kernels.
///
/// Library code never panics on malformed input; dimension mismatches and
/// numerically impossible requests are reported through this enum instead.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries `(rows_a, cols_a)` and
    /// `(rows_b, cols_b)` of the offending operands.
    DimensionMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Actual shape of the matrix.
        shape: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The requested `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// A requested rank/size exceeded what the input can provide.
    RankTooLarge {
        /// The requested rank.
        requested: usize,
        /// The maximum admissible rank.
        available: usize,
    },
    /// The matrix was not positive definite: a Cholesky pivot came out
    /// non-positive (or non-finite). Carries the offending pivot so callers
    /// can report *where* positive-definiteness broke down.
    NotPositiveDefinite {
        /// Index of the offending diagonal pivot.
        pivot: usize,
        /// Value of the Schur-complement diagonal at that pivot.
        value: f64,
    },
    /// A triangular or general solve hit a (near-)zero pivot. Carries the
    /// offending pivot index and value for diagnosis.
    SingularPivot {
        /// Index of the offending diagonal pivot.
        pivot: usize,
        /// Value of the diagonal at that pivot.
        value: f64,
    },
    /// A matrix was singular to working precision (no single pivot to blame,
    /// e.g. detected structurally rather than during elimination).
    SingularMatrix,
    /// An iterative kernel failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the kernel that failed.
        kernel: &'static str,
        /// Number of sweeps/iterations attempted.
        iterations: usize,
    },
    /// The input was empty where a non-empty matrix/vector is required.
    EmptyInput,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right, op } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::RankTooLarge {
                requested,
                available,
            } => write!(
                f,
                "requested rank {requested} exceeds available rank {available}"
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix is not positive definite: pivot {pivot} is {value:.6e}"
                )
            }
            LinalgError::SingularPivot { pivot, value } => write!(
                f,
                "matrix is singular to working precision: pivot {pivot} is {value:.6e}"
            ),
            LinalgError::SingularMatrix => write!(f, "matrix is singular to working precision"),
            LinalgError::NoConvergence { kernel, iterations } => {
                write!(f, "{kernel} failed to converge after {iterations} sweeps")
            }
            LinalgError::EmptyInput => write!(f, "input matrix or vector is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&LinalgError::SingularMatrix);
    }

    #[test]
    fn equality_and_clone() {
        let a = LinalgError::NotSquare { shape: (2, 3) };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
