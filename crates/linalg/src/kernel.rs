//! Cache-blocked, panel-packed GEMM backend (DESIGN.md §16).
//!
//! All four dense mult entry points on [`crate::Matrix`] route through
//! [`gemm`] once they clear [`BLOCKED_MIN_FLOPS`]. The driver follows the
//! classic GotoBLAS/BLIS decomposition: the output is cut into `NC × MC`
//! macro-tiles, each tile walks the shared dimension in `KC` blocks,
//! packing an `MC × KC` A-block into row micro-panels of height [`MR`] and
//! a `KC × NC` B-block into column micro-panels of width [`NR`], and an
//! unrolled `MR × NR` register micro-kernel accumulates each `KC` block
//! before flushing it into the output. Packing buffers come from a
//! process-wide pool (the `m2td-tensor` `Workspace` idea pushed down into
//! linalg) so steady-state GEMMs allocate nothing.
//!
//! # Determinism
//!
//! The accumulation order of every output element is a pure function of
//! the problem shape: `KC` blocks ascend, `k` ascends within a block, and
//! each block's contribution is added exactly once. Macro-tiles own
//! disjoint output ranges and are scheduled over `m2td_par::par_tiles`,
//! so which worker runs a tile can never change its arithmetic — results
//! are bitwise identical at every thread count by construction. Note the
//! blocked result is *not* required to be bitwise equal to the
//! row-streaming kernel's (the summation order differs); equality across
//! thread counts is the contract.

use m2td_par::UnsafeSlice;
use std::sync::Mutex;

/// Micro-kernel register tile height (rows of C per inner kernel).
pub const MR: usize = 4;
/// Micro-kernel register tile width (cols of C per inner kernel).
pub const NR: usize = 8;
/// Rows of A packed per macro-tile (L2-sized: `MC·KC` doubles ≈ 128 KiB).
pub const MC: usize = 64;
/// Shared-dimension depth per packed block (keeps an `MR·KC` A micro-panel
/// plus an `NR·KC` B micro-panel resident in L1).
pub const KC: usize = 256;
/// Columns of B packed per macro-tile.
pub const NC: usize = 512;

/// Minimum multiply-add count before the blocked path takes over; below
/// this the packing traffic costs more than it saves and the simple
/// row-streaming kernels in `matrix.rs` win.
pub const BLOCKED_MIN_FLOPS: usize = 128 * 1024;

/// Process-wide pool of packing buffers. A thread-local would not survive
/// `m2td-par`'s scoped per-call workers, so a mutexed free list is used
/// instead; each worker takes its two panels once per GEMM call, so the
/// lock is touched O(threads) times per product, not per tile.
static PANEL_POOL: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());

/// Bound on pooled buffers so pathological shapes cannot pin memory.
const MAX_POOLED: usize = 16;

fn pool_take() -> Vec<f64> {
    PANEL_POOL.lock().unwrap().pop().unwrap_or_default()
}

fn pool_put(mut v: Vec<f64>) {
    v.clear();
    let mut pool = PANEL_POOL.lock().unwrap();
    if pool.len() < MAX_POOLED {
        pool.push(v);
    } else if let Some(smallest) = pool
        .iter_mut()
        .min_by_key(|b| b.capacity())
        .filter(|b| b.capacity() < v.capacity())
    {
        *smallest = v;
    }
}

/// Per-worker packing scratch; panels return to the pool on drop.
struct Panels {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl Panels {
    fn take() -> Self {
        Panels {
            a: pool_take(),
            b: pool_take(),
        }
    }
}

impl Drop for Panels {
    fn drop(&mut self) {
        pool_put(std::mem::take(&mut self.a));
        pool_put(std::mem::take(&mut self.b));
    }
}

/// Number of pooled panel buffers currently idle (test/bench hook).
#[doc(hidden)]
pub fn pooled_panels() -> usize {
    PANEL_POOL.lock().unwrap().len()
}

/// Packs the `mt × kc` block of logical A starting at `(i0, pc)` into row
/// micro-panels of height `MR`: panel `p` holds rows `i0 + p·MR ..` laid
/// out `k`-major (`panel[p·kc·MR + l·MR + r]`), zero-padded in the row
/// direction (never in `k`) so edge tiles accumulate exactly the valid
/// products.
///
/// `a` is `m × k` row-major when `trans` is false, `k × m` row-major when
/// true (the logical operand is then the stored transpose).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    panel: &mut Vec<f64>,
    a: &[f64],
    trans: bool,
    m: usize,
    k: usize,
    i0: usize,
    mt: usize,
    pc: usize,
    kc: usize,
) {
    let mp = mt.div_ceil(MR);
    panel.clear();
    panel.reserve(mp * kc * MR);
    for p in 0..mp {
        let rbase = i0 + p * MR;
        if trans {
            // A(i, l) = a[l·m + i]: each l reads a contiguous row run.
            for l in pc..pc + kc {
                let row = &a[l * m..l * m + m];
                for r in 0..MR {
                    let i = rbase + r;
                    panel.push(if i < i0 + mt { row[i] } else { 0.0 });
                }
            }
        } else {
            // A(i, l) = a[i·k + l]: MR parallel streams, each contiguous.
            for l in pc..pc + kc {
                for r in 0..MR {
                    let i = rbase + r;
                    panel.push(if i < i0 + mt { a[i * k + l] } else { 0.0 });
                }
            }
        }
    }
}

/// Packs the `kc × nt` block of logical B starting at `(pc, j0)` into
/// column micro-panels of width `NR` (`panel[q·kc·NR + l·NR + c]`),
/// zero-padded in the column direction only.
///
/// `b` is `k × n` row-major when `trans` is false, `n × k` row-major when
/// true.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    panel: &mut Vec<f64>,
    b: &[f64],
    trans: bool,
    k: usize,
    n: usize,
    j0: usize,
    nt: usize,
    pc: usize,
    kc: usize,
) {
    let np = nt.div_ceil(NR);
    panel.clear();
    panel.reserve(np * kc * NR);
    for q in 0..np {
        let cbase = j0 + q * NR;
        if trans {
            // B(l, j) = b[j·k + l]: NR strided streams.
            for l in pc..pc + kc {
                for c in 0..NR {
                    let j = cbase + c;
                    panel.push(if j < j0 + nt { b[j * k + l] } else { 0.0 });
                }
            }
        } else {
            // B(l, j) = b[l·n + j]: each l reads a contiguous run.
            for l in pc..pc + kc {
                let row = &b[l * n..l * n + n];
                for c in 0..NR {
                    let j = cbase + c;
                    panel.push(if j < j0 + nt { row[j] } else { 0.0 });
                }
            }
        }
    }
}

/// Accumulator tile of the micro-kernel.
type Acc = [[f64; NR]; MR];

/// Selected micro-kernel implementation. `unsafe` only because the
/// target-feature variants require their ISA to be present; the dispatch
/// in [`micro_kernel_fn`] guarantees that.
type MicroFn = unsafe fn(usize, &[f64], &[f64], &mut Acc);

/// The `MR × NR` register micro-kernel body: a rank-`kc` update of the
/// accumulator from one A row-panel and one B column-panel. Fixed-size
/// arrays and the `k`-major panel layout let rustc keep `acc` in
/// registers and auto-vectorize the `NR`-wide inner loop; `inline(always)`
/// lets the target-feature wrappers below re-instantiate the same body
/// under wider ISAs (plain mul+add, never fused, so every wrapper computes
/// bit-identical results).
#[inline(always)]
fn micro_body(kc: usize, ap: &[f64], bp: &[f64], acc: &mut Acc) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        let av: &[f64; MR] = av.try_into().unwrap();
        let bv: &[f64; NR] = bv.try_into().unwrap();
        for (&ar, row) in av.iter().zip(acc.iter_mut()) {
            for (cell, &bc) in row.iter_mut().zip(bv.iter()) {
                *cell += ar * bc;
            }
        }
    }
}

unsafe fn micro_portable(kc: usize, ap: &[f64], bp: &[f64], acc: &mut Acc) {
    micro_body(kc, ap, bp, acc)
}

/// # Safety
/// Requires AVX2 (checked at dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_avx2(kc: usize, ap: &[f64], bp: &[f64], acc: &mut Acc) {
    micro_body(kc, ap, bp, acc)
}

/// # Safety
/// Requires AVX-512F (checked at dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_avx512(kc: usize, ap: &[f64], bp: &[f64], acc: &mut Acc) {
    micro_body(kc, ap, bp, acc)
}

/// Picks the widest micro-kernel the running CPU supports. The builds in
/// this workspace target baseline x86-64 (SSE2), so without this the
/// 4×8 accumulator spills out of the 16 xmm registers; the AVX2/AVX-512
/// re-instantiations keep it resident in ymm/zmm. All variants execute
/// the same unfused mul+add sequence, so the choice affects speed only —
/// never a bit of the result.
fn micro_kernel_fn() -> MicroFn {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return micro_avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return micro_avx2;
        }
    }
    micro_portable
}

/// One `MC × NC` macro-tile of `C += A·B`: walks the shared dimension in
/// `KC` blocks, packing both operand blocks and flushing the micro-kernel
/// accumulator into `c` after each block.
#[allow(clippy::too_many_arguments)]
fn run_tile(
    micro: MicroFn,
    panels: &mut Panels,
    a: &[f64],
    a_trans: bool,
    b: &[f64],
    b_trans: bool,
    c: &UnsafeSlice<'_, f64>,
    (m, k, n): (usize, usize, usize),
    (i0, mt): (usize, usize),
    (j0, nt): (usize, usize),
) {
    let mp = mt.div_ceil(MR);
    let np = nt.div_ceil(NR);
    let mut pc = 0;
    while pc < k {
        let kc = (k - pc).min(KC);
        pack_b(&mut panels.b, b, b_trans, k, n, j0, nt, pc, kc);
        pack_a(&mut panels.a, a, a_trans, m, k, i0, mt, pc, kc);
        for q in 0..np {
            let bp = &panels.b[q * kc * NR..(q + 1) * kc * NR];
            let nr = (nt - q * NR).min(NR);
            for p in 0..mp {
                let ap = &panels.a[p * kc * MR..(p + 1) * kc * MR];
                let mr = (mt - p * MR).min(MR);
                let mut acc = [[0.0f64; NR]; MR];
                // SAFETY: `micro` came from `micro_kernel_fn`, which only
                // selects a variant whose ISA the CPU was detected to have.
                unsafe { micro(kc, ap, bp, &mut acc) };
                for (r, row) in acc.iter().enumerate().take(mr) {
                    let base = (i0 + p * MR + r) * n + j0 + q * NR;
                    for (cc, &v) in row[..nr].iter().enumerate() {
                        // SAFETY: this macro-tile exclusively owns rows
                        // `i0..i0+mt` × cols `j0..j0+nt` of `c`.
                        unsafe { c.add_assign(base + cc, v) };
                    }
                }
            }
        }
        pc += kc;
    }
}

/// Blocked product `C += op(A)·op(B)` into a pre-zeroed `m × n` row-major
/// `c`, where `op` is the identity or the transpose of the stored buffer
/// (`a` is `m × k` or, transposed, `k × m`; `b` is `k × n` or `n × k`).
///
/// With `upper_only` set (the Gram path), macro-tiles strictly below the
/// diagonal are skipped; tiles crossing the diagonal are computed in
/// full, so the caller mirrors the strict upper triangle afterwards.
/// Macro-tiles are scheduled over `m2td_par::par_tiles` with per-worker
/// pooled packing panels; see the module docs for the determinism
/// argument.
pub(crate) fn gemm(
    (m, k, n): (usize, usize, usize),
    a: &[f64],
    a_trans: bool,
    b: &[f64],
    b_trans: bool,
    c: &mut [f64],
    upper_only: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let n_ic = m.div_ceil(MC);
    let n_jc = n.div_ceil(NC);
    let micro = micro_kernel_fn();
    let cview = UnsafeSlice::new(c);
    m2td_par::par_tiles(n_ic * n_jc, Panels::take, |panels, tile| {
        let (ic, jc) = (tile / n_jc, tile % n_jc);
        let i0 = ic * MC;
        let j0 = jc * NC;
        let (mt, nt) = ((m - i0).min(MC), (n - j0).min(NC));
        if upper_only && j0 + nt <= i0 {
            return;
        }
        run_tile(
            micro,
            panels,
            a,
            a_trans,
            b,
            b_trans,
            &cview,
            (m, k, n),
            (i0, mt),
            (j0, nt),
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(
        (m, k, n): (usize, usize, usize),
        at: impl Fn(usize, usize) -> f64,
        bt: impl Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    c[i * n + j] += at(i, l) * bt(l, j);
                }
            }
        }
        c
    }

    #[test]
    fn blocked_matches_naive_on_edge_shapes() {
        // Shapes straddling every blocking boundary: micro-tile edges,
        // exact multiples, and a k crossing KC.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (5, 300, 9),
            (70, 17, 530),
            (65, 257, 33),
        ] {
            let a: Vec<f64> = (0..m * k).map(|i| ((i * 37 % 23) as f64) - 11.0).collect();
            let b: Vec<f64> = (0..k * n).map(|i| ((i * 13 % 19) as f64) * 0.5).collect();
            let expect = naive((m, k, n), |i, l| a[i * k + l], |l, j| b[l * n + j]);
            let mut c = vec![0.0; m * n];
            gemm((m, k, n), &a, false, &b, false, &mut c, false);
            for (got, want) in c.iter().zip(expect.iter()) {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "{m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn transposed_operands_match_naive() {
        let (m, k, n) = (21usize, 34usize, 29usize);
        // a stored k×m, b stored n×k.
        let a: Vec<f64> = (0..k * m).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b: Vec<f64> = (0..n * k).map(|i| ((i * 5 % 11) as f64) * 0.25).collect();
        let expect = naive((m, k, n), |i, l| a[l * m + i], |l, j| b[j * k + l]);
        let mut c = vec![0.0; m * n];
        gemm((m, k, n), &a, true, &b, true, &mut c, false);
        for (got, want) in c.iter().zip(expect.iter()) {
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        }
    }

    #[test]
    fn upper_only_fills_tiles_reaching_the_diagonal() {
        // m = n = NC + MC so the (row band NC.., col band 0..NC) macro-tile
        // sits strictly below the diagonal and must be skipped.
        let m = NC + MC;
        let a: Vec<f64> = (0..m * 5).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut c = vec![0.0; m * m];
        gemm((m, 5, m), &a, false, &a, true, &mut c, true);
        assert!(c[NC * m..NC * m + NC].iter().all(|&v| v == 0.0));
        // Upper triangle is the Gram product.
        for i in 0..m {
            for j in i..m {
                let want: f64 = (0..5).map(|l| a[i * 5 + l] * a[j * 5 + l]).sum();
                assert!((c[i * m + j] - want).abs() <= 1e-9 * want.abs().max(1.0));
            }
        }
    }

    #[test]
    fn panel_pool_recycles() {
        let before = pooled_panels();
        let a = vec![1.0; 64 * 64];
        let mut c = vec![0.0; 64 * 64];
        gemm((64, 64, 64), &a, false, &a, false, &mut c, false);
        assert!(pooled_panels() >= before.min(MAX_POOLED - 2));
        assert!(pooled_panels() <= MAX_POOLED);
    }
}
