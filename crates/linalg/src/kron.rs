//! Kronecker and Khatri–Rao products.
//!
//! The Khatri–Rao (column-wise Kronecker) product is the matrix behind
//! CP-ALS's MTTKRP identity `X₍ₙ₎ (A⁽ᴺ⁾ ⊙ ⋯ ⊙ A⁽¹⁾)`; it is exposed here
//! so tests can verify the fused MTTKRP kernel against the explicit
//! product, and for users composing their own factorisations.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Kronecker product `a ⊗ b` of shape `(m₁m₂) × (n₁n₂)`.
pub fn kronecker(a: &Matrix, b: &Matrix) -> Matrix {
    let (ma, na) = a.shape();
    let (mb, nb) = b.shape();
    let mut out = Matrix::zeros(ma * mb, na * nb);
    for i in 0..ma {
        for j in 0..na {
            let aij = a.get(i, j);
            if aij == 0.0 {
                continue;
            }
            for p in 0..mb {
                for q in 0..nb {
                    out.set(i * mb + p, j * nb + q, aij * b.get(p, q));
                }
            }
        }
    }
    out
}

/// Khatri–Rao product `a ⊙ b`: the column-wise Kronecker product of two
/// matrices with equal column counts, of shape `(m₁m₂) × n`.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] when the column counts differ.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "khatri_rao",
        });
    }
    let (ma, n) = a.shape();
    let mb = b.rows();
    let mut out = Matrix::zeros(ma * mb, n);
    for j in 0..n {
        for i in 0..ma {
            let aij = a.get(i, j);
            for p in 0..mb {
                out.set(i * mb + p, j, aij * b.get(p, j));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_known_2x2() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]).unwrap();
        let k = kronecker(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k.get(0, 1), 5.0); // a00 * b01
        assert_eq!(k.get(1, 0), 6.0); // a00 * b10
        assert_eq!(k.get(2, 3), 4.0 * 5.0); // a11=4 block, b01=5
        assert_eq!(k.get(3, 2), 4.0 * 6.0); // a11=4 block, b10=6
    }

    #[test]
    fn kronecker_with_identity_is_block_diagonal() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let k = kronecker(&a, &b);
        assert_eq!(k.get(0, 0), 1.0);
        assert_eq!(k.get(2, 2), 1.0);
        assert_eq!(k.get(0, 2), 0.0);
        assert_eq!(k.get(2, 0), 0.0);
    }

    #[test]
    fn kronecker_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64);
        let c = Matrix::from_fn(3, 2, |i, j| ((i + 1) * (j + 2)) as f64);
        let d = Matrix::from_fn(2, 2, |i, j| (i as f64 - j as f64) + 0.5);
        let lhs = kronecker(&a, &b).matmul(&kronecker(&c, &d)).unwrap();
        let rhs = kronecker(&a.matmul(&c).unwrap(), &b.matmul(&d).unwrap());
        let diff = lhs.sub(&rhs).unwrap().frobenius_norm();
        assert!(diff < 1e-12);
    }

    #[test]
    fn khatri_rao_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let kr = khatri_rao(&a, &b).unwrap();
        assert_eq!(kr.shape(), (4, 2));
        // Column 0 = a.col(0) ⊗ b.col(0) = [1*5, 1*7, 3*5, 3*7].
        assert_eq!(kr.col(0), vec![5.0, 7.0, 15.0, 21.0]);
        assert_eq!(kr.col(1), vec![12.0, 16.0, 24.0, 32.0]);
    }

    #[test]
    fn khatri_rao_columns_match_kronecker_of_columns() {
        let a = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f64 * 0.4).sin());
        let b = Matrix::from_fn(4, 2, |i, j| ((i + 3 * j) as f64 * 0.2).cos());
        let kr = khatri_rao(&a, &b).unwrap();
        for j in 0..2 {
            let ca = Matrix::from_vec(3, 1, a.col(j)).unwrap();
            let cb = Matrix::from_vec(4, 1, b.col(j)).unwrap();
            let kc = kronecker(&ca, &cb);
            for i in 0..12 {
                assert!((kr.get(i, j) - kc.get(i, 0)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn khatri_rao_rejects_mismatched_columns() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(khatri_rao(&a, &b).is_err());
    }
}
