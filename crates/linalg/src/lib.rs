//! Dense linear-algebra substrate for the M2TD reproduction.
//!
//! The M2TD pipeline (ICDE 2018) needs a small but complete set of dense
//! linear-algebra kernels: matrix arithmetic, Householder QR, a symmetric
//! eigensolver, singular value decomposition, and triangular/Cholesky
//! solvers. No external linear-algebra crates are used; every kernel here is
//! implemented from scratch and tested against hand-computed results and
//! property-based invariants.
//!
//! # Quick example
//!
//! ```
//! use m2td_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
//! let svd = m2td_linalg::svd(&a).unwrap();
//! // Singular values are sorted in decreasing order.
//! assert!(svd.singular_values[0] >= svd.singular_values[1]);
//! // The factorisation reconstructs the input.
//! let recon = svd.reconstruct();
//! assert!(a.sub(&recon).unwrap().frobenius_norm() < 1e-10);
//! ```

mod cholesky;
mod eig;
mod error;
pub mod kernel;
mod kron;
mod lu;
mod matrix;
mod qr;
mod solve;
mod svd;
mod vecops;

pub use cholesky::{cholesky, CholeskyFactor};
pub use eig::{symmetric_eig, SymmetricEig};
pub use error::LinalgError;
pub use kron::{khatri_rao, kronecker};
pub use lu::{lu_decompose, LuFactors};
pub use matrix::Matrix;
pub use qr::{householder_qr, QrFactors};
pub use solve::{solve_lower_triangular, solve_spd, solve_upper_triangular};
pub use svd::{gram_left_singular_vectors, svd, truncated_left_singular_vectors, Svd};
pub use vecops::{axpy, dot, norm2, normalize, scale_in_place};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
