//! LU factorisation with partial pivoting.
//!
//! Used for general (non-SPD) linear solves, determinants and explicit
//! inverses — e.g. the pseudo-inverse fallback of the least-squares core
//! projection when a combined factor's Gram is ill-conditioned, and by
//! tests as an independent check of the triangular solvers.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// An LU factorisation `P A = L U` with row-pivoting permutation `P`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed LU matrix: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    sign: f64,
}

impl LuFactors {
    /// The permutation vector.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    /// * [`LinalgError::SingularPivot`] on a (near-)zero pivot, carrying the
    ///   offending pivot index and value.
    #[allow(clippy::needless_range_loop)] // substitutions read earlier/later x entries
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu_solve",
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.lu.get(i, k) * x[k];
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.lu.get(i, k) * x[k];
            }
            let d = self.lu.get(i, i);
            if d.abs() < f64::EPSILON {
                return Err(LinalgError::SingularPivot { pivot: i, value: d });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Explicit inverse of the original matrix (column-by-column solves).
    ///
    /// # Errors
    ///
    /// [`LinalgError::SingularPivot`] when the matrix is singular.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Computes the LU factorisation of a square matrix with partial pivoting.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::EmptyInput`] for shape
///   problems. Singularity is detected lazily at solve time (the
///   factorisation itself completes with a zero pivot recorded).
pub fn lu_decompose(a: &Matrix) -> Result<LuFactors> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { shape: (m, n) });
    }
    if n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for col in 0..n {
        // Partial pivot: largest magnitude in the column at or below the
        // diagonal.
        let mut pivot_row = col;
        let mut pivot_val = lu.get(col, col).abs();
        for r in (col + 1)..n {
            let v = lu.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_row != col {
            for j in 0..n {
                let a = lu.get(col, j);
                let b = lu.get(pivot_row, j);
                lu.set(col, j, b);
                lu.set(pivot_row, j, a);
            }
            perm.swap(col, pivot_row);
            sign = -sign;
        }
        let d = lu.get(col, col);
        if d == 0.0 {
            continue; // singular column; recorded as a zero pivot
        }
        for r in (col + 1)..n {
            let factor = lu.get(r, col) / d;
            lu.set(r, col, factor);
            for j in (col + 1)..n {
                let cur = lu.get(r, j);
                lu.set(r, j, cur - factor * lu.get(col, j));
            }
        }
    }
    Ok(LuFactors { lu, perm, sign })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let x_true = [1.0, 2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let lu = lu_decompose(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        let det = lu_decompose(&a).unwrap().determinant();
        assert!((det - (-14.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_identity_and_permutation() {
        assert!((lu_decompose(&Matrix::identity(4)).unwrap().determinant() - 1.0).abs() < 1e-14);
        // A single row swap flips the sign.
        let mut p = Matrix::identity(3);
        p.set(0, 0, 0.0);
        p.set(0, 1, 1.0);
        p.set(1, 1, 0.0);
        p.set(1, 0, 1.0);
        assert!((lu_decompose(&p).unwrap().determinant() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / ((i + j + 1) as f64)
            }
        });
        let inv = lu_decompose(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let defect = prod.sub(&Matrix::identity(5)).unwrap().frobenius_norm();
        assert!(defect < 1e-11, "A * A^-1 differs from I by {defect}");
    }

    #[test]
    fn singular_matrix_fails_at_solve() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let lu = lu_decompose(&a).unwrap();
        assert!((lu.determinant()).abs() < 1e-12);
        match lu.solve(&[1.0, 1.0]) {
            Err(LinalgError::SingularPivot { pivot, value }) => {
                assert_eq!(pivot, 1);
                assert!(value.abs() < 1e-12);
            }
            other => panic!("expected SingularPivot, got {other:?}"),
        }
        assert!(lu.inverse().is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = lu_decompose(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn shape_errors() {
        assert!(lu_decompose(&Matrix::zeros(2, 3)).is_err());
        assert!(lu_decompose(&Matrix::zeros(0, 0)).is_err());
        let lu = lu_decompose(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn agrees_with_spd_solver_on_spd_input() {
        let b = Matrix::from_fn(4, 4, |i, j| ((i * 4 + j) as f64 * 0.3).sin());
        let mut a = b.transpose_matmul(&b).unwrap();
        for i in 0..4 {
            a.set(i, i, a.get(i, i) + 2.0);
        }
        let rhs = [1.0, -1.0, 2.0, 0.5];
        let x_lu = lu_decompose(&a).unwrap().solve(&rhs).unwrap();
        let x_ch = crate::solve::solve_spd(&a, &rhs).unwrap();
        for i in 0..4 {
            assert!((x_lu[i] - x_ch[i]).abs() < 1e-10);
        }
    }
}
