//! Dense row-major matrix type.

use crate::error::LinalgError;
use crate::kernel;
use crate::vecops::{dot, norm2};
use crate::Result;
use m2td_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Minimum multiply-add count before a kernel fans out over the pool:
/// below this the scoped-thread setup costs more than the arithmetic.
const PAR_MIN_FLOPS: usize = 64 * 1024;

/// Column-tile width for the row-streaming fallback kernels: one output
/// tile plus one B-row tile stay resident in L1 while a full A-row
/// streams through. Products at or above [`kernel::BLOCKED_MIN_FLOPS`]
/// madds go through the packed blocked backend instead (DESIGN.md §16).
const COL_BLOCK: usize = 256;

/// Runs `f(i, row)` over each `row_len` chunk of `out`, in parallel when
/// the kernel is big enough. Each output row is produced by exactly one
/// task and the per-row arithmetic is independent of the schedule, so the
/// result is bitwise identical at every thread count.
fn par_rows(out: &mut [f64], row_len: usize, flops: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    if out.is_empty() || row_len == 0 {
        return;
    }
    if flops < PAR_MIN_FLOPS || m2td_par::max_threads() <= 1 {
        for (i, row) in out.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
    } else {
        m2td_par::par_rows_mut(out, row_len, f);
    }
}

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// This is the workhorse type of the M2TD reproduction: tensor
/// matricizations, factor matrices, Gram matrices and cores-in-flight are
/// all `Matrix` values. The representation is a plain `Vec<f64>` of length
/// `rows * cols` with entry `(i, j)` stored at `i * cols + j`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from a pre-filled row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices. All rows must have the
    /// same length; an empty outer slice is rejected.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    left: (1, cols),
                    right: (1, r.len()),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` iff the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes the matrix in place to `rows x cols`, reusing the existing
    /// allocation, and zeros every entry. This is the buffer-reuse entry
    /// point backing [`Self::matmul_into`] and the tensor workspace pool:
    /// a matrix recycled through `reset` never reallocates unless the new
    /// shape outgrows its capacity.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Unchecked entry access (debug-asserted).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Unchecked entry assignment (debug-asserted).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Checked entry access.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (i, j),
                shape: (self.rows, self.cols),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a freshly allocated vector. Hot column
    /// sweeps should prefer [`Self::col_into`] with a reused buffer.
    pub fn col(&self, j: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.col_into(j, &mut out);
        out
    }

    /// Copies column `j` into `out`, clearing it first and reusing its
    /// allocation — the buffer-reuse variant of [`Self::col`] for column
    /// sweeps (Jacobi SVD norms, CP column extraction) that would
    /// otherwise allocate once per column per iteration.
    pub fn col_into(&self, j: usize, out: &mut Vec<f64>) {
        debug_assert!(j < self.cols);
        out.clear();
        out.reserve(self.rows);
        out.extend((0..self.rows).map(|i| self.data[i * self.cols + j]));
    }

    /// Iterator over column `j` without materializing it.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        debug_assert!(j < self.cols);
        self.data.iter().skip(j).step_by(self.cols.max(1)).copied()
    }

    /// Overwrites column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        debug_assert!(j < self.cols && v.len() == self.rows);
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Euclidean norm of row `i`. This is the "row energy" used by the
    /// paper's `ROW_SELECT` procedure (Algorithm 5).
    pub fn row_norm(&self, i: usize) -> f64 {
        norm2(self.row(i))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Large products go through the packed blocked backend
    /// ([`crate::kernel`]), parallelized over NC×MC macro-tiles; small
    /// ones keep the row-streaming kernel. Both paths fix the
    /// accumulation order per output element independently of the
    /// schedule, so results are bitwise identical at every thread count.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul`] writing into a caller-supplied matrix, which is
    /// reshaped in place (see [`Self::reset`]) so its allocation is reused
    /// across calls. Same kernel, same accumulation order — the result is
    /// bitwise identical to `matmul`'s at every thread count.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "matmul",
            });
        }
        out.reset(self.rows, other.cols);
        let (m, k, n) = (self.rows, self.cols, other.cols);
        if m * k * n >= kernel::BLOCKED_MIN_FLOPS {
            kernel::gemm(
                (m, k, n),
                &self.data,
                false,
                &other.data,
                false,
                &mut out.data,
                false,
            );
            return Ok(());
        }
        self.matmul_rowstream(other, out);
        Ok(())
    }

    /// The row-streaming matmul kernel: reference path for small products
    /// and the baseline the `gemm` bench family compares the blocked
    /// backend against. `out` must already be reset to `rows × other.cols`.
    fn matmul_rowstream(&self, other: &Matrix, out: &mut Matrix) {
        let (a, b, m, p) = (&self.data, &other.data, self.cols, other.cols);
        let flops = self.rows * m * p;
        par_rows(&mut out.data, p, flops, |i, out_row| {
            let a_row = &a[i * m..(i + 1) * m];
            let mut j0 = 0;
            while j0 < p {
                let j1 = (j0 + COL_BLOCK).min(p);
                for (k, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_tile = &b[k * p + j0..k * p + j1];
                    for (o, &bv) in out_row[j0..j1].iter_mut().zip(b_tile.iter()) {
                        *o += aik * bv;
                    }
                }
                j0 = j1;
            }
        });
    }

    /// [`Self::matmul_into`] forced onto the row-streaming path regardless
    /// of size. Bench/test hook for blocked-vs-streaming comparisons.
    #[doc(hidden)]
    pub fn matmul_rowstream_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "matmul",
            });
        }
        out.reset(self.rows, other.cols);
        self.matmul_rowstream(other, out);
        Ok(())
    }

    /// Product `selfᵀ * other` without materializing the transpose.
    ///
    /// Parallel over output rows; for output row `i` the shared dimension
    /// is scanned in ascending order, which is the same per-element
    /// accumulation order as the classic serial `k`-outer loop.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Self::transpose_matmul`] writing into a caller-supplied matrix,
    /// reshaped in place so its allocation is reused across calls (the TTM
    /// chain runs one of these per mode — see `m2td_tensor::Workspace`).
    /// Bitwise identical to `transpose_matmul` at every thread count.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: (self.cols, self.rows),
                right: other.shape(),
                op: "transpose_matmul",
            });
        }
        out.reset(self.cols, other.cols);
        let (a, b, n, m, p) = (&self.data, &other.data, self.rows, self.cols, other.cols);
        let flops = n * m * p;
        if flops >= kernel::BLOCKED_MIN_FLOPS {
            // Logical A is selfᵀ (m × n stored row-major = transposed
            // storage of the p-row operand).
            kernel::gemm((m, n, p), a, true, b, false, &mut out.data, false);
            return Ok(());
        }
        par_rows(&mut out.data, p, flops, |i, out_row| {
            for k in 0..n {
                let aki = a[k * m + i];
                if aki == 0.0 {
                    continue;
                }
                let b_row = &b[k * p..(k + 1) * p];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aki * bv;
                }
            }
        });
        Ok(())
    }

    /// Product `self * otherᵀ` without materializing the transpose.
    ///
    /// Parallel over output rows; each entry is an independent dot
    /// product, so results are bitwise identical at every thread count.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (other.cols, other.rows),
                op: "matmul_transpose",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        let (a, b, m, p) = (&self.data, &other.data, self.cols, other.rows);
        let flops = self.rows * m * p;
        if flops >= kernel::BLOCKED_MIN_FLOPS {
            // Logical B is otherᵀ (stored p × m row-major).
            kernel::gemm((self.rows, m, p), a, false, b, true, &mut out.data, false);
            return Ok(out);
        }
        par_rows(&mut out.data, p, flops, |i, out_row| {
            let a_row = &a[i * m..(i + 1) * m];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, &b[j * m..(j + 1) * m]);
            }
        });
        Ok(out)
    }

    /// Gram matrix `self * selfᵀ` (size `rows x rows`), exploiting symmetry.
    ///
    /// Large Grams run the blocked backend in upper-only mode (macro-tiles
    /// strictly below the diagonal are skipped); small ones compute the
    /// upper triangle row-streamed. Either way the strictly-lower triangle
    /// is mirrored serially afterwards — `C(i,j)` and `C(j,i)` share the
    /// same k-ascending accumulation, so the mirror is a bitwise copy.
    pub fn gram_rows(&self) -> Matrix {
        let n = self.rows;
        let m = self.cols;
        let mut out = Matrix::zeros(n, n);
        if n * n * m >= kernel::BLOCKED_MIN_FLOPS {
            kernel::gemm(
                (n, m, n),
                &self.data,
                false,
                &self.data,
                true,
                &mut out.data,
                true,
            );
        } else {
            Self::gram_upper_rowstream(&self.data, n, m, &mut out.data);
        }
        for i in 1..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }

    /// Row-streamed upper-triangle Gram: row `i` owns entries `j >= i`, so
    /// parallel writers never overlap.
    fn gram_upper_rowstream(a: &[f64], n: usize, m: usize, out: &mut [f64]) {
        // Triangular work: roughly half the full n*n*m product.
        let flops = n * n * m / 2;
        par_rows(out, n, flops, |i, out_row| {
            let ri = &a[i * m..(i + 1) * m];
            for (j, o) in out_row.iter_mut().enumerate().skip(i) {
                *o = dot(ri, &a[j * m..(j + 1) * m]);
            }
        });
    }

    /// [`Self::gram_rows`] forced onto the row-streaming path regardless
    /// of size. Bench/test hook for blocked-vs-streaming comparisons.
    #[doc(hidden)]
    pub fn gram_rows_rowstream(&self) -> Matrix {
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        Self::gram_upper_rowstream(&self.data, n, self.cols, &mut out.data);
        for i in 1..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// Row-partitioned over the pool above the parallel threshold; every
    /// output element is the same k-ascending dot product the serial loop
    /// computes, so results are bitwise identical at every thread count.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (x.len(), 1),
                op: "matvec",
            });
        }
        let mut out = vec![0.0; self.rows];
        let (a, m) = (&self.data, self.cols);
        par_rows(&mut out, 1, self.rows * m, |i, o| {
            o[0] = dot(&a[i * m..(i + 1) * m], x);
        });
        Ok(out)
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise average of two equally shaped matrices. This is the
    /// pivot-factor combination of the paper's M2TD-AVG (Algorithm 2).
    pub fn average(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "average", |a, b| 0.5 * (a + b))
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| alpha * x).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        norm2(&self.data)
    }

    /// Largest absolute entry (`max |a_ij|`); zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Stacks `self` on top of `other` (row concatenation). This is the
    /// building block of the paper's M2TD-CONCAT, which concatenates the
    /// pivot-mode matricizations of the two sub-tensors column-wise; on the
    /// transposed view that is exactly a vertical stack.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "vstack",
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` to the left of `other` (column concatenation).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "hstack",
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Returns the sub-matrix consisting of the first `k` columns.
    pub fn leading_columns(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(LinalgError::RankTooLarge {
                requested: k,
                available: self.cols,
            });
        }
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(out)
    }

    /// Measures how far the matrix is from having orthonormal columns:
    /// `‖selfᵀ self − I‖_F`.
    pub fn orthonormality_defect(&self) -> f64 {
        let gram = self
            .transpose_matmul(self)
            .expect("self is always row-compatible with itself");
        let n = gram.rows();
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                let target = if i == j { 1.0 } else { 0.0 };
                let d = gram.get(i, j) - target;
                acc += d * d;
            }
        }
        acc.sqrt()
    }
}

/// Serialized form: `{ rows, cols, data }`, validated on load.
impl ToJson for Matrix {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rows".to_string(), self.rows.to_json()),
            ("cols".to_string(), self.cols.to_json()),
            ("data".to_string(), self.data.to_json()),
        ])
    }
}

impl FromJson for Matrix {
    fn from_json(json: &Json) -> std::result::Result<Self, JsonError> {
        let rows = json.require("rows")?.as_usize()?;
        let cols = json.require("cols")?.as_usize()?;
        let data: Vec<f64> = FromJson::from_json(json.require("data")?)?;
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| JsonError::Invalid(format!("invalid matrix: {e}")))
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4e}", self.get(i, j))?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn try_get_bounds() {
        let m = Matrix::identity(2);
        assert_eq!(m.try_get(1, 1).unwrap(), 1.0);
        assert!(m.try_get(2, 0).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, 1.5], &[0.0, 1.0]]).unwrap();
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_kernels() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 5 + j) as f64 * 0.3).sin());
        let b = Matrix::from_fn(5, 9, |i, j| ((i + 2 * j) as f64 * 0.7).cos());
        let c = Matrix::from_fn(7, 3, |i, j| (i as f64 - j as f64) * 0.25);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Reusing the same output across a differently shaped product must
        // reshape cleanly and leave no stale entries behind.
        a.transpose_matmul_into(&c, &mut out).unwrap();
        assert_eq!(out, a.transpose_matmul(&c).unwrap());
        assert_eq!(out.shape(), (5, 3));
        // Shape errors leave without touching the output shape contract.
        assert!(b.matmul_into(&c, &mut out).is_err());
        assert!(b.transpose_matmul_into(&a, &mut out).is_err());
    }

    #[test]
    fn reset_reuses_capacity_and_zeroes() {
        let mut m = Matrix::from_fn(4, 4, |i, j| (i + j) as f64 + 1.0);
        let cap = m.as_slice().len();
        m.reset(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(m.into_vec().capacity() >= cap);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]).unwrap();
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn gram_rows_is_symmetric_and_correct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let g = a.gram_rows();
        let explicit = a.matmul(&a.transpose()).unwrap();
        assert_eq!(g, explicit);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 6.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 8.0]]).unwrap()
        );
        assert_eq!(
            b.sub(&a).unwrap(),
            Matrix::from_rows(&[&[2.0, 4.0]]).unwrap()
        );
        assert_eq!(
            a.average(&b).unwrap(),
            Matrix::from_rows(&[&[2.0, 4.0]]).unwrap()
        );
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]).unwrap());
        let c = Matrix::zeros(2, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!(approx(a.frobenius_norm(), 5.0));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.get(1, 0), 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.get(0, 3), 4.0);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn leading_columns_truncates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let l = a.leading_columns(2).unwrap();
        assert_eq!(l, Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]).unwrap());
        assert!(a.leading_columns(4).is_err());
    }

    #[test]
    fn orthonormality_defect_of_identity_is_zero() {
        assert!(Matrix::identity(4).orthonormality_defect() < 1e-14);
    }

    #[test]
    fn row_norm_is_energy() {
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]).unwrap();
        assert!(approx(a.row_norm(0), 5.0));
        assert_eq!(a.row_norm(1), 0.0);
    }

    #[test]
    fn set_col_writes_column() {
        let mut a = Matrix::zeros(2, 2);
        a.set_col(1, &[5.0, 6.0]);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(1, 1), 6.0);
    }

    #[test]
    fn json_round_trip_and_validation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let json = m.to_json().to_compact();
        let back = Matrix::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, m);
        // Corrupted length must be rejected.
        let bad = r#"{"rows":2,"cols":2,"data":[1.0,2.0,3.0]}"#;
        assert!(Matrix::from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn kernels_match_across_thread_counts() {
        // Big enough to clear PAR_MIN_FLOPS so the pool path actually runs.
        let a = Matrix::from_fn(64, 48, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(48, 52, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.25);
        m2td_par::set_max_threads(1);
        let serial = (
            a.matmul(&b).unwrap(),
            a.transpose_matmul(&a).unwrap(),
            a.matmul_transpose(&a).unwrap(),
            a.gram_rows(),
        );
        for t in [2usize, 8] {
            m2td_par::set_max_threads(t);
            assert_eq!(a.matmul(&b).unwrap(), serial.0);
            assert_eq!(a.transpose_matmul(&a).unwrap(), serial.1);
            assert_eq!(a.matmul_transpose(&a).unwrap(), serial.2);
            assert_eq!(a.gram_rows(), serial.3);
        }
        m2td_par::set_max_threads(0);
    }

    #[test]
    fn debug_format_is_truncated() {
        let big = Matrix::zeros(100, 100);
        let s = format!("{big:?}");
        assert!(s.contains('…'));
        assert!(s.len() < 4000);
    }
}
