//! Householder QR factorisation.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vecops::norm2;
use crate::Result;

/// The result of a (thin) Householder QR factorisation `A = Q R`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// `m x k` matrix with orthonormal columns, `k = min(m, n)`.
    pub q: Matrix,
    /// `k x n` upper-triangular (trapezoidal) factor.
    pub r: Matrix,
}

impl QrFactors {
    /// Recomposes `Q * R`.
    pub fn reconstruct(&self) -> Matrix {
        self.q
            .matmul(&self.r)
            .expect("Q and R shapes are compatible by construction")
    }
}

/// Computes the thin QR factorisation of `a` via Householder reflections.
///
/// For an `m x n` input this returns `Q` of shape `m x min(m,n)` with
/// orthonormal columns and upper-triangular `R` of shape `min(m,n) x n` such
/// that `a = Q R` up to floating-point error.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyInput`] for a matrix with no entries.
pub fn householder_qr(a: &Matrix) -> Result<QrFactors> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    let k = m.min(n);

    // Work on a mutable copy; reflectors are accumulated into `q`.
    let mut r = a.clone();
    // q starts as the m x m identity; we apply each reflector from the right
    // at the end by instead accumulating them into an explicit matrix.
    let mut q = Matrix::identity(m);

    // Householder vectors, stored densely per step.
    let mut v = vec![0.0; m];
    for col in 0..k {
        // Build the Householder vector for column `col`, rows col..m.
        let len = m - col;
        for (i, vi) in v[..len].iter_mut().enumerate() {
            *vi = r.get(col + i, col);
        }
        let alpha = norm2(&v[..len]);
        if alpha == 0.0 {
            continue; // Column already zero below the diagonal.
        }
        // Choose sign to avoid cancellation.
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = norm2(&v[..len]);
        if vnorm == 0.0 {
            continue;
        }
        for x in v[..len].iter_mut() {
            *x /= vnorm;
        }

        // Apply reflector H = I - 2 v vᵀ to R (rows col..m, cols col..n).
        for j in col..n {
            let mut proj = 0.0;
            for (i, &vi) in v[..len].iter().enumerate() {
                proj += vi * r.get(col + i, j);
            }
            proj *= 2.0;
            for (i, &vi) in v[..len].iter().enumerate() {
                let cur = r.get(col + i, j);
                r.set(col + i, j, cur - proj * vi);
            }
        }
        // Apply reflector to Q from the right: Q <- Q H.
        for i in 0..m {
            let mut proj = 0.0;
            for (t, &vt) in v[..len].iter().enumerate() {
                proj += q.get(i, col + t) * vt;
            }
            proj *= 2.0;
            for (t, &vt) in v[..len].iter().enumerate() {
                let cur = q.get(i, col + t);
                q.set(i, col + t, cur - proj * vt);
            }
        }
    }

    // Thin factors: keep the first k columns of Q and first k rows of R.
    let q_thin = q.leading_columns(k)?;
    let mut r_thin = Matrix::zeros(k, n);
    for i in 0..k {
        for j in 0..n {
            // Zero the strictly-lower part explicitly to remove round-off.
            r_thin.set(i, j, if j >= i { r.get(i, j) } else { 0.0 });
        }
    }
    Ok(QrFactors {
        q: q_thin,
        r: r_thin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        let d = a.sub(b).unwrap().frobenius_norm();
        assert!(d < tol, "matrices differ by {d}");
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = Matrix::from_rows(&[
            &[12.0, -51.0, 4.0],
            &[6.0, 167.0, -68.0],
            &[-4.0, 24.0, -41.0],
        ])
        .unwrap();
        let qr = householder_qr(&a).unwrap();
        assert_close(&qr.reconstruct(), &a, 1e-10);
        assert!(qr.q.orthonormality_defect() < 1e-12);
    }

    #[test]
    fn qr_tall_matrix() {
        let a = Matrix::from_fn(7, 3, |i, j| ((i * 3 + j) as f64).sin());
        let qr = householder_qr(&a).unwrap();
        assert_eq!(qr.q.shape(), (7, 3));
        assert_eq!(qr.r.shape(), (3, 3));
        assert_close(&qr.reconstruct(), &a, 1e-12);
        assert!(qr.q.orthonormality_defect() < 1e-12);
    }

    #[test]
    fn qr_wide_matrix() {
        let a = Matrix::from_fn(3, 6, |i, j| 1.0 / ((i + j + 1) as f64));
        let qr = householder_qr(&a).unwrap();
        assert_eq!(qr.q.shape(), (3, 3));
        assert_eq!(qr.r.shape(), (3, 6));
        assert_close(&qr.reconstruct(), &a, 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i + 2 * j) as f64).cos());
        let qr = householder_qr(&a).unwrap();
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(qr.r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn qr_of_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let qr = householder_qr(&a).unwrap();
        assert_close(&qr.reconstruct(), &a, 1e-15);
    }

    #[test]
    fn qr_rejects_empty() {
        assert!(householder_qr(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn qr_rank_deficient_still_factors() {
        // Two identical columns.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let qr = householder_qr(&a).unwrap();
        assert_close(&qr.reconstruct(), &a, 1e-12);
    }
}
