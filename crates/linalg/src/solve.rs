//! Triangular and SPD linear solvers.

use crate::cholesky::cholesky;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Solves `L x = b` for lower-triangular `L` by forward substitution.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] on
///   shape problems.
/// * [`LinalgError::SingularPivot`] on a (near-)zero diagonal entry,
///   carrying the offending pivot index and value.
#[allow(clippy::needless_range_loop)] // forward substitution reads x[k] for k < i
pub fn solve_lower_triangular(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = l.shape();
    if m != n {
        return Err(LinalgError::NotSquare { shape: (m, n) });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            left: (m, n),
            right: (b.len(), 1),
            op: "solve_lower_triangular",
        });
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * x[k];
        }
        let d = l.get(i, i);
        if d.abs() < f64::EPSILON {
            return Err(LinalgError::SingularPivot { pivot: i, value: d });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` for upper-triangular `U` by back substitution.
///
/// # Errors
///
/// Same as [`solve_lower_triangular`].
#[allow(clippy::needless_range_loop)] // back substitution reads x[k] for k > i
pub fn solve_upper_triangular(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = u.shape();
    if m != n {
        return Err(LinalgError::NotSquare { shape: (m, n) });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            left: (m, n),
            right: (b.len(), 1),
            op: "solve_upper_triangular",
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= u.get(i, k) * x[k];
        }
        let d = u.get(i, i);
        if d.abs() < f64::EPSILON {
            return Err(LinalgError::SingularPivot { pivot: i, value: d });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Propagates Cholesky errors ([`LinalgError::NotPositiveDefinite`], shape
/// errors) and substitution errors.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    cholesky(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_substitution_known() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower_triangular(&l, &[4.0, 11.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn back_substitution_known() {
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let x = solve_upper_triangular(&u, &[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn singular_diagonal_is_detected() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        match solve_lower_triangular(&l, &[1.0, 1.0]) {
            Err(LinalgError::SingularPivot { pivot, value }) => {
                assert_eq!(pivot, 0);
                assert_eq!(value, 0.0);
            }
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn shape_checks() {
        let l = Matrix::identity(2);
        assert!(solve_lower_triangular(&l, &[1.0]).is_err());
        assert!(solve_upper_triangular(&Matrix::zeros(2, 3), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn spd_solve_round_trip() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let x_true = [1.0, 2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }
}
