//! Singular value decomposition.
//!
//! Two routes are provided:
//!
//! * [`svd`] — a full one-sided Jacobi SVD. Numerically robust and simple;
//!   used for moderate matrices and as the reference implementation in
//!   tests and ablation benches.
//! * [`gram_left_singular_vectors`] — the *Gram trick*: the left singular
//!   vectors of `A` are the eigenvectors of `A Aᵀ`. The M2TD pipeline only
//!   ever needs the `r` leading **left** singular vectors of a mode-`n`
//!   matricization `X₍ₙ₎`, which is a short-and-very-wide matrix
//!   (`I_n × ∏_{m≠n} I_m`). Forming the tiny `I_n × I_n` Gram matrix and
//!   running the symmetric Jacobi eigensolver is dramatically cheaper than
//!   a full SVD of the matricization and is what HOSVD implementations do
//!   in practice for sparse inputs.

use crate::eig::symmetric_eig;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vecops::norm2;
use crate::Result;

/// A full (thin) singular value decomposition `A = U diag(σ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `m x k` matrix of left singular vectors (`k = min(m, n)`).
    pub u: Matrix,
    /// Singular values, non-negative, decreasing.
    pub singular_values: Vec<f64>,
    /// `k x n` matrix of right singular vectors, transposed.
    pub vt: Matrix,
}

impl Svd {
    /// Recomposes `U diag(σ) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.singular_values.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for j in 0..k {
                us.set(i, j, us.get(i, j) * self.singular_values[j]);
            }
        }
        us.matmul(&self.vt).expect("shapes agree by construction")
    }

    /// Best rank-`r` approximation (Eckart–Young truncation).
    pub fn truncated_reconstruct(&self, r: usize) -> Result<Matrix> {
        let k = self.singular_values.len();
        if r > k {
            return Err(LinalgError::RankTooLarge {
                requested: r,
                available: k,
            });
        }
        let u_r = self.u.leading_columns(r)?;
        let mut us = u_r;
        for i in 0..us.rows() {
            for j in 0..r {
                us.set(i, j, us.get(i, j) * self.singular_values[j]);
            }
        }
        // First r rows of Vᵀ.
        let mut vt_r = Matrix::zeros(r, self.vt.cols());
        for i in 0..r {
            vt_r.row_mut(i).copy_from_slice(self.vt.row(i));
        }
        us.matmul(&vt_r)
    }
}

/// Maximum number of one-sided Jacobi sweeps.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` by the one-sided Jacobi method.
///
/// For `m < n` the decomposition is computed on `aᵀ` and the factors are
/// swapped, so callers may pass any shape.
///
/// # Errors
///
/// * [`LinalgError::EmptyInput`] for an empty matrix.
/// * [`LinalgError::NoConvergence`] if sweeps do not converge (pathological
///   non-finite input).
pub fn svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    if m < n {
        // Work on the transpose and swap factors: A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.vt.transpose(),
            singular_values: t.singular_values,
            vt: t.u.transpose(),
        });
    }
    // After the transpose redirect, so each logical SVD is one span.
    let _span = m2td_obs::span!("linalg.svd");

    // One-sided Jacobi on columns of a working copy W (m x n): rotate column
    // pairs until all are mutually orthogonal. V accumulates the rotations.
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let scale = a.max_abs().max(1.0);
    let tol = 1e-15 * scale * scale * (m as f64);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Inner products over columns p and q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w.get(i, p);
                    let wq = w.get(i, q);
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= tol || apq.abs() <= 1e-15 * (app * aqq).sqrt() {
                    continue;
                }
                rotated = true;
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for i in 0..m {
                    let wp = w.get(i, p);
                    let wq = w.get(i, q);
                    w.set(i, p, c * wp - s * wq);
                    w.set(i, q, s * wp + c * wq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            kernel: "svd",
            iterations: MAX_SWEEPS,
        });
    }

    // Column norms of W are the singular values; normalized columns are U.
    // One buffer serves the whole sweep (col_into reuses its allocation).
    let mut colbuf = Vec::new();
    let norms: Vec<f64> = (0..n)
        .map(|j| {
            w.col_into(j, &mut colbuf);
            norm2(&colbuf)
        })
        .collect();
    let order = column_order_by_norm_desc(&norms);

    let k = n; // thin: k = min(m, n) = n here since m >= n
    let mut u = Matrix::zeros(m, k);
    let mut vt = Matrix::zeros(k, n);
    let mut singular_values = Vec::with_capacity(k);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = norms[old_j];
        singular_values.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, new_j, w.get(i, old_j) / sigma);
            }
        } else {
            // Zero singular value: leave U column zero (tests account for
            // rank-deficiency; downstream only uses leading columns).
        }
        for i in 0..n {
            vt.set(new_j, i, v.get(i, old_j));
        }
    }
    Ok(Svd {
        u,
        singular_values,
        vt,
    })
}

/// Column permutation sorting `norms` descending under `f64::total_cmp`.
///
/// `partial_cmp` is not a total order: one NaN norm (possible when a
/// degraded-mode input carries non-finite cells) makes `sort_by`'s
/// comparator inconsistent and the resulting ordering garbage. Under
/// `total_cmp`, NaN sorts above every finite value, so NaN columns land
/// first — deterministically — and finite columns stay in exact
/// descending order.
fn column_order_by_norm_desc(norms: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..norms.len()).collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));
    order
}

/// Returns the `r` leading left singular vectors of `a` as the columns of an
/// `a.rows() x r` matrix, computed via the eigendecomposition of the Gram
/// matrix `a aᵀ`.
///
/// # Errors
///
/// * [`LinalgError::RankTooLarge`] if `r > min(a.rows(), a.cols())` — a
///   rank-`r` column space needs at least `r` columns to span it; the Gram
///   spectrum has at most `min(m, n)` nonzero eigenvalues.
/// * [`LinalgError::EmptyInput`] for an empty matrix.
pub fn gram_left_singular_vectors(a: &Matrix, r: usize) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    if r > m.min(n) {
        return Err(LinalgError::RankTooLarge {
            requested: r,
            available: m.min(n),
        });
    }
    let _span = m2td_obs::span!("linalg.gram_svd");
    let gram = a.gram_rows();
    let eig = symmetric_eig(&gram)?;
    eig.eigenvectors.leading_columns(r)
}

/// Returns the `r` leading left singular vectors of `a`, dispatching to the
/// cheapest correct route: the Gram trick when the matrix is wider than
/// tall (the matricization case), a full Jacobi SVD otherwise.
///
/// # Errors
///
/// Same as [`gram_left_singular_vectors`] / [`svd`].
pub fn truncated_left_singular_vectors(a: &Matrix, r: usize) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    if r > m.min(n) {
        return Err(LinalgError::RankTooLarge {
            requested: r,
            available: m.min(n),
        });
    }
    if n >= m {
        gram_left_singular_vectors(a, r)
    } else {
        let s = svd(a)?;
        if r > s.u.cols() {
            return Err(LinalgError::RankTooLarge {
                requested: r,
                available: s.u.cols(),
            });
        }
        s.u.leading_columns(r)
    }
}

/// Checks that two orthonormal bases span the same subspace up to `tol`
/// (used by tests comparing the Gram route against the full SVD: individual
/// vectors may differ in sign or rotate within eigenspaces).
#[cfg(test)]
pub(crate) fn same_subspace(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    use crate::vecops::dot;
    if a.shape() != b.shape() {
        return false;
    }
    // Project each column of A onto span(B) and check the residual.
    let r = a.cols();
    for j in 0..r {
        let aj = a.col(j);
        let mut residual = aj.clone();
        for k in 0..r {
            let bk = b.col(k);
            let coef = dot(&aj, &bk);
            for (res, &bv) in residual.iter_mut().zip(bk.iter()) {
                *res -= coef * bv;
            }
        }
        if norm2(&residual) > tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        let d = a.sub(b).unwrap().frobenius_norm();
        assert!(d < tol, "matrices differ by {d}");
    }

    #[test]
    fn svd_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -2.0]]).unwrap();
        let s = svd(&a).unwrap();
        assert!((s.singular_values[0] - 3.0).abs() < 1e-12);
        assert!((s.singular_values[1] - 2.0).abs() < 1e-12);
        assert_close(&s.reconstruct(), &a, 1e-12);
    }

    #[test]
    fn svd_reconstructs_square() {
        // `sin(a*i + b*j)` alone is rank 2 (angle-sum identity); the product
        // term makes this genuinely full rank.
        let a = Matrix::from_fn(6, 6, |i, j| {
            (((i + 1) * (j + 1)) as f64 + 0.3 * i as f64).sin()
        });
        let s = svd(&a).unwrap();
        assert_close(&s.reconstruct(), &a, 1e-10);
        assert!(s.u.orthonormality_defect() < 1e-10);
        assert!(s.vt.transpose().orthonormality_defect() < 1e-10);
    }

    #[test]
    fn svd_tall() {
        let a = Matrix::from_fn(9, 4, |i, j| 1.0 / ((i + j + 1) as f64));
        let s = svd(&a).unwrap();
        assert_eq!(s.u.shape(), (9, 4));
        assert_eq!(s.vt.shape(), (4, 4));
        assert_close(&s.reconstruct(), &a, 1e-11);
    }

    #[test]
    fn svd_wide() {
        let a = Matrix::from_fn(3, 8, |i, j| ((i + 1) as f64) * ((j + 1) as f64).sqrt());
        let s = svd(&a).unwrap();
        assert_eq!(s.u.shape(), (3, 3));
        assert_eq!(s.vt.shape(), (3, 8));
        assert_close(&s.reconstruct(), &a, 1e-11);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = Matrix::from_fn(5, 7, |i, j| ((i * j) as f64).cos());
        let s = svd(&a).unwrap();
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(s.singular_values.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_one_matrix() {
        // outer product => exactly one nonzero singular value.
        let a = Matrix::from_fn(4, 5, |i, j| ((i + 1) * (j + 1)) as f64);
        let s = svd(&a).unwrap();
        assert!(s.singular_values[0] > 1.0);
        for &sv in &s.singular_values[1..] {
            assert!(sv < 1e-10, "extra singular value {sv}");
        }
    }

    #[test]
    fn truncation_is_best_approximation_error() {
        // Eckart–Young: truncated reconstruction error equals the tail
        // singular-value energy.
        let a = Matrix::from_fn(6, 6, |i, j| {
            ((i * 5 + j * 2) as f64).sin() + 0.1 * (i as f64)
        });
        let s = svd(&a).unwrap();
        let r = 3;
        let rec = s.truncated_reconstruct(r).unwrap();
        let err = a.sub(&rec).unwrap().frobenius_norm();
        let tail: f64 = s.singular_values[r..]
            .iter()
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt();
        assert!((err - tail).abs() < 1e-9, "err {err} vs tail {tail}");
    }

    #[test]
    fn truncation_rank_too_large() {
        let a = Matrix::identity(3);
        let s = svd(&a).unwrap();
        assert!(s.truncated_reconstruct(4).is_err());
    }

    #[test]
    fn gram_route_matches_full_svd_subspace() {
        let a = Matrix::from_fn(4, 30, |i, j| ((i * j) as f64 * 0.7 + 0.2 * j as f64).sin());
        let r = 3;
        let g = gram_left_singular_vectors(&a, r).unwrap();
        let s = svd(&a).unwrap();
        let u_r = s.u.leading_columns(r).unwrap();
        assert!(
            same_subspace(&g, &u_r, 1e-8),
            "Gram and SVD subspaces differ"
        );
    }

    #[test]
    fn gram_vectors_are_orthonormal() {
        let a = Matrix::from_fn(5, 40, |i, j| ((i + 2 * j) as f64).cos());
        let g = gram_left_singular_vectors(&a, 4).unwrap();
        assert!(g.orthonormality_defect() < 1e-9);
    }

    #[test]
    fn truncated_dispatch_agrees() {
        let wide = Matrix::from_fn(4, 20, |i, j| ((i * 3 + j) as f64).sin());
        let via_dispatch = truncated_left_singular_vectors(&wide, 2).unwrap();
        let via_gram = gram_left_singular_vectors(&wide, 2).unwrap();
        assert!(same_subspace(&via_dispatch, &via_gram, 1e-9));

        let tall = wide.transpose();
        let u = truncated_left_singular_vectors(&tall, 2).unwrap();
        assert_eq!(u.shape(), (20, 2));
        assert!(u.orthonormality_defect() < 1e-9);
    }

    #[test]
    fn rank_checks() {
        let a = Matrix::identity(3);
        assert!(gram_left_singular_vectors(&a, 4).is_err());
        assert!(truncated_left_singular_vectors(&a, 4).is_err());
        assert!(svd(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn gram_route_rejects_rank_beyond_min_dimension() {
        // Regression: a tall-skinny matrix (m > n) has at most n nonzero
        // singular values, but the Gram route used to accept any r ≤ m and
        // hand back eigenvectors of numerically-zero eigenvalues. Both
        // routes must reject r > min(m, n) with a structured error naming
        // the true ceiling.
        let tall = Matrix::from_fn(6, 2, |i, j| ((i * 2 + j) as f64 * 0.4).sin());
        for f in [gram_left_singular_vectors, truncated_left_singular_vectors] {
            match f(&tall, 3) {
                Err(LinalgError::RankTooLarge {
                    requested,
                    available,
                }) => assert_eq!((requested, available), (3, 2)),
                other => panic!("expected RankTooLarge, got {other:?}"),
            }
            // r = min(m, n) stays accepted.
            let u = f(&tall, 2).unwrap();
            assert_eq!(u.shape(), (6, 2));
        }
    }

    #[test]
    fn column_order_is_total_with_nan_norms() {
        // Regression: the pre-`total_cmp` comparator treated NaN as equal
        // to everything, which is not a consistent order — `sort_by` could
        // return any permutation. NaN must sort first, then strictly
        // descending finite values, regardless of NaN position.
        let order = column_order_by_norm_desc(&[2.0, f64::NAN, 3.0, 0.5]);
        assert_eq!(order, vec![1, 2, 0, 3]);
        let order = column_order_by_norm_desc(&[f64::NAN, 1.0, f64::NAN, 4.0]);
        // Equal keys: sort_by is stable, so NaN indices keep input order.
        assert_eq!(order, vec![0, 2, 3, 1]);
        // All-finite ordering is unchanged by the fix.
        assert_eq!(column_order_by_norm_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn svd_nan_input_errors_cleanly() {
        // Non-finite input must surface as NoConvergence, never a panic or
        // a silently garbled factor ordering.
        let mut a = Matrix::from_fn(4, 3, |i, j| ((i + j) as f64).sin());
        a.set(2, 1, f64::NAN);
        match svd(&a) {
            Err(LinalgError::NoConvergence { kernel, .. }) => assert_eq!(kernel, "svd"),
            other => panic!("expected NoConvergence for NaN input, got {other:?}"),
        }
    }

    #[test]
    fn zero_matrix_svd() {
        let a = Matrix::zeros(3, 4);
        let s = svd(&a).unwrap();
        assert!(s.singular_values.iter().all(|&x| x == 0.0));
        assert_close(&s.reconstruct(), &a, 1e-15);
    }
}
