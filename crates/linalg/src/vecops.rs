//! Vector kernels on `&[f64]` slices.
//!
//! These are the innermost loops of every decomposition in the crate, so
//! they are written as simple index loops the compiler can vectorise.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Debug-asserts that the slices have equal length; in release builds the
/// shorter length governs (standard `zip` semantics).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Euclidean norm of a slice, computed with scaling to avoid overflow for
/// very large entries.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    let mut max = 0.0f64;
    for &x in a {
        let ax = x.abs();
        if ax > max {
            max = ax;
        }
    }
    if max == 0.0 || !max.is_finite() {
        return if max.is_nan() { f64::NAN } else { max };
    }
    let mut acc = 0.0;
    for &x in a {
        let s = x / max;
        acc += s * s;
    }
    max * acc.sqrt()
}

/// `y += alpha * x` for equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place by `alpha`.
#[inline]
pub fn scale_in_place(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm in place and returns the original
/// norm. A zero vector is left unchanged and `0.0` is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale_in_place(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_is_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm2_handles_huge_entries_without_overflow() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_propagates_nan() {
        assert!(norm2(&[1.0, f64::NAN]).is_nan());
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 0.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0; 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
