//! Parity and determinism suite for the blocked GEMM backend
//! (DESIGN.md §16).
//!
//! Two properties, checked over seeded random shapes:
//!
//! 1. **Parity** — every blocked entry point agrees with a naive
//!    triple-loop reference to ≤ 1e-12 relative error, including
//!    degenerate 0/1-sized dimensions and shapes that straddle the
//!    MR/NR/MC/KC/NC blocking boundaries.
//! 2. **Thread invariance** — blocked results are *bitwise* identical at
//!    1/2/8 threads across 3 seeds. (Blocked vs. row-streaming is only
//!    tolerance-equal: the summation orders differ by design.)
//!
//! Shapes are drawn large enough to clear `BLOCKED_MIN_FLOPS`, so these
//! runs genuinely exercise the packed path, plus a degenerate set that
//! exercises the early-outs. Tests that flip the process-global thread
//! override are serialized behind one `#[test]` body.

use m2td_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REL_TOL: f64 = 1e-12;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Naive i-j-k reference product, independent of every library kernel.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows());
    Matrix::from_fn(m, n, |i, j| (0..k).map(|l| a.get(i, l) * b.get(l, j)).sum())
}

fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    let scale = want.max_abs().max(1.0);
    for (g, w) in got.as_slice().iter().zip(want.as_slice().iter()) {
        assert!(
            (g - w).abs() <= REL_TOL * scale,
            "{what}: |{g} - {w}| > {REL_TOL} * {scale}"
        );
    }
}

/// Shapes chosen to cross the blocking boundaries: m over MC=64, k over
/// KC=256, n over NC=512, plus non-multiples of MR=4/NR=8 everywhere.
const BLOCKED_SHAPES: &[(usize, usize, usize)] = &[
    (64, 48, 52),   // the legacy thread-invariance shape
    (70, 300, 9),   // k crosses KC, ragged m/n
    (130, 33, 530), // m crosses 2·MC, n crosses NC
    (512, 32, 24),  // tall-skinny I×R, the Phase-1 shape
    (65, 257, 65),  // every dimension one past a boundary
];

/// Degenerate shapes that must stay on the early-out/simple paths.
const DEGENERATE_SHAPES: &[(usize, usize, usize)] = &[
    (0, 5, 4),
    (5, 0, 4),
    (5, 4, 0),
    (1, 1, 1),
    (1, 300, 1),
    (3, 1, 700),
];

#[test]
fn blocked_kernels_match_naive_reference() {
    let mut rng = StdRng::seed_from_u64(0x9e3779b97f4a7c15);
    for &(m, k, n) in BLOCKED_SHAPES.iter().chain(DEGENERATE_SHAPES) {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let what = format!("{m}x{k}x{n}");

        let want = naive_matmul(&a, &b);
        assert_close(&a.matmul(&b).unwrap(), &want, &format!("matmul {what}"));

        // A stored transposed: (k×m)ᵀ · (k×n).
        let at = random_matrix(&mut rng, k, m);
        let want_t = naive_matmul(&at.transpose(), &b);
        assert_close(
            &at.transpose_matmul(&b).unwrap(),
            &want_t,
            &format!("transpose_matmul {what}"),
        );

        // B stored transposed: (m×k) · (n×k)ᵀ.
        let bt = random_matrix(&mut rng, n, k);
        let want_bt = naive_matmul(&a, &bt.transpose());
        assert_close(
            &a.matmul_transpose(&bt).unwrap(),
            &want_bt,
            &format!("matmul_transpose {what}"),
        );

        // Gram: (m×k) · (m×k)ᵀ.
        let want_g = naive_matmul(&a, &a.transpose());
        assert_close(&a.gram_rows(), &want_g, &format!("gram_rows {what}"));
        assert_close(
            &a.gram_rows_rowstream(),
            &want_g,
            &format!("gram_rows_rowstream {what}"),
        );

        // matvec against a naive dot.
        let x: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y = a.matvec(&x).unwrap();
        let scale = y.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (i, &yi) in y.iter().enumerate().take(m) {
            let want: f64 = (0..k).map(|l| a.get(i, l) * x[l]).sum();
            assert!((yi - want).abs() <= REL_TOL * scale, "matvec {what}");
        }
    }
}

#[test]
fn blocked_results_are_bitwise_thread_invariant() {
    // One test body flips the global override so nothing races it.
    for seed in [1u64, 7, 42] {
        let mut rng = StdRng::seed_from_u64(seed);
        for &(m, k, n) in BLOCKED_SHAPES {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let at = random_matrix(&mut rng, k, m);
            let bt = random_matrix(&mut rng, n, k);
            let x: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();

            m2td_par::set_max_threads(1);
            let base = (
                a.matmul(&b).unwrap(),
                at.transpose_matmul(&b).unwrap(),
                a.matmul_transpose(&bt).unwrap(),
                a.gram_rows(),
                a.matvec(&x).unwrap(),
            );
            for t in [2usize, 8] {
                m2td_par::set_max_threads(t);
                assert_eq!(a.matmul(&b).unwrap(), base.0, "matmul t={t} seed={seed}");
                assert_eq!(
                    at.transpose_matmul(&b).unwrap(),
                    base.1,
                    "transpose_matmul t={t} seed={seed}"
                );
                assert_eq!(
                    a.matmul_transpose(&bt).unwrap(),
                    base.2,
                    "matmul_transpose t={t} seed={seed}"
                );
                assert_eq!(a.gram_rows(), base.3, "gram_rows t={t} seed={seed}");
                assert_eq!(a.matvec(&x).unwrap(), base.4, "matvec t={t} seed={seed}");
            }
            m2td_par::set_max_threads(0);
        }
    }
}

#[test]
fn col_into_matches_col_and_reuses_buffer() {
    let mut rng = StdRng::seed_from_u64(99);
    let a = random_matrix(&mut rng, 37, 11);
    let mut buf = Vec::new();
    for j in 0..a.cols() {
        a.col_into(j, &mut buf);
        assert_eq!(buf, a.col(j));
        assert_eq!(a.col_iter(j).collect::<Vec<_>>(), buf);
    }
    // The buffer's capacity is reused across the sweep.
    let cap = buf.capacity();
    a.col_into(0, &mut buf);
    assert_eq!(buf.capacity(), cap);
}
