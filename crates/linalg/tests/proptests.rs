//! Property-based tests of the linear-algebra kernels on random matrices.

use m2td_linalg::{
    cholesky, householder_qr, khatri_rao, kronecker, lu_decompose, svd, symmetric_eig, Matrix,
};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in ±3 and shape up to 7×7.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-3.0f64..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("length matches"))
    })
}

/// Strategy: a random square matrix.
fn square_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        prop::collection::vec(-3.0f64..3.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).expect("length matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in matrix_strategy(7)) {
        let qr = householder_qr(&a).unwrap();
        let recon = qr.reconstruct();
        let err = recon.sub(&a).unwrap().frobenius_norm();
        prop_assert!(err < 1e-9 * (1.0 + a.frobenius_norm()), "QR error {err}");
        prop_assert!(qr.q.orthonormality_defect() < 1e-9);
    }

    #[test]
    fn svd_reconstructs_any_shape(a in matrix_strategy(6)) {
        let s = svd(&a).unwrap();
        let err = s.reconstruct().sub(&a).unwrap().frobenius_norm();
        prop_assert!(err < 1e-8 * (1.0 + a.frobenius_norm()), "SVD error {err}");
        // Singular values decreasing and non-negative.
        for w in s.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.singular_values.iter().all(|&v| v >= 0.0));
        // Frobenius norm equals the singular-value energy.
        let sv_energy: f64 = s.singular_values.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((sv_energy - a.frobenius_norm()).abs() < 1e-8 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn symmetric_eig_reconstructs_gram(a in matrix_strategy(6)) {
        let gram = a.gram_rows();
        let e = symmetric_eig(&gram).unwrap();
        let err = e.reconstruct().sub(&gram).unwrap().frobenius_norm();
        prop_assert!(err < 1e-8 * (1.0 + gram.frobenius_norm()));
        // Gram eigenvalues are non-negative.
        prop_assert!(e.eigenvalues.iter().all(|&l| l > -1e-8));
    }

    #[test]
    fn lu_solve_inverts_well_conditioned_systems(a in square_strategy(6), shift in 2.0f64..6.0) {
        // Diagonal shift keeps the system comfortably non-singular.
        let n = a.rows();
        let mut m = a.clone();
        for i in 0..n {
            m.set(i, i, m.get(i, i) + shift * 3.0);
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = m.matvec(&x_true).unwrap();
        let x = lu_decompose(&m).unwrap().solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-8, "component {i}");
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in matrix_strategy(5)) {
        // AᵀA + I is SPD.
        let mut spd = a.transpose_matmul(&a).unwrap();
        for i in 0..spd.rows() {
            spd.set(i, i, spd.get(i, i) + 1.0);
        }
        let b: Vec<f64> = (0..spd.rows()).map(|i| 1.0 + i as f64).collect();
        let x_ch = cholesky(&spd).unwrap().solve(&b).unwrap();
        let x_lu = lu_decompose(&spd).unwrap().solve(&b).unwrap();
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn kronecker_norm_is_product_of_norms(a in matrix_strategy(4), b in matrix_strategy(4)) {
        let k = kronecker(&a, &b);
        let expected = a.frobenius_norm() * b.frobenius_norm();
        prop_assert!((k.frobenius_norm() - expected).abs() < 1e-9 * (1.0 + expected));
    }

    #[test]
    fn khatri_rao_is_column_subset_of_kronecker(a in matrix_strategy(4), b in matrix_strategy(4)) {
        // Force equal column counts by truncating.
        let c = a.cols().min(b.cols());
        let a = a.leading_columns(c).unwrap();
        let b = b.leading_columns(c).unwrap();
        let kr = khatri_rao(&a, &b).unwrap();
        prop_assert_eq!(kr.shape(), (a.rows() * b.rows(), c));
        // Column j of A ⊙ B equals a_j ⊗ b_j.
        for j in 0..c {
            let col = kr.col(j);
            let mut expected = Vec::with_capacity(col.len());
            for i in 0..a.rows() {
                for p in 0..b.rows() {
                    expected.push(a.get(i, j) * b.get(p, j));
                }
            }
            for (x, y) in col.iter().zip(expected.iter()) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matmul_is_associative(a in matrix_strategy(4), b in matrix_strategy(4), c in matrix_strategy(4)) {
        // Reshape to compatible chain via leading_columns: A(r_a x k), B(k x k2), C(k2 x c)
        let k = a.cols().min(b.rows());
        let a = a.leading_columns(k).unwrap();
        let b_rows = k;
        let mut b2 = Matrix::zeros(b_rows, b.cols());
        for i in 0..b_rows.min(b.rows()) {
            b2.row_mut(i).copy_from_slice(b.row(i));
        }
        let k2 = b2.cols().min(c.rows());
        let b2 = b2.leading_columns(k2).unwrap();
        let mut c2 = Matrix::zeros(k2, c.cols());
        for i in 0..k2.min(c.rows()) {
            c2.row_mut(i).copy_from_slice(c.row(i));
        }
        let left = a.matmul(&b2).unwrap().matmul(&c2).unwrap();
        let right = a.matmul(&b2.matmul(&c2).unwrap()).unwrap();
        let diff = left.sub(&right).unwrap().frobenius_norm();
        prop_assert!(diff < 1e-9 * (1.0 + left.frobenius_norm()));
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit(a in matrix_strategy(5), b in matrix_strategy(5)) {
        // Make row counts agree.
        let rows = a.rows().min(b.rows());
        let trim = |m: &Matrix| {
            let mut out = Matrix::zeros(rows, m.cols());
            for i in 0..rows {
                out.row_mut(i).copy_from_slice(m.row(i));
            }
            out
        };
        let a = trim(&a);
        let b = trim(&b);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        prop_assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-10);
    }
}
