//! Property-style tests of the linear-algebra kernels on random matrices.
//!
//! The offline build has no `proptest`, so each property loops over a
//! fixed set of seeds and draws its inputs from the in-tree seeded RNG —
//! deterministic, shrink-free, but the same invariants.

use m2td_linalg::{
    cholesky, householder_qr, khatri_rao, kronecker, lu_decompose, svd, symmetric_eig, Matrix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// A random matrix with entries in ±3 and shape in [1, max_dim]².
fn rand_matrix(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let r = rng.gen_range(1..max_dim + 1);
    let c = rng.gen_range(1..max_dim + 1);
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-3.0..3.0))
}

/// A random square matrix with entries in ±3.
fn rand_square(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let n = rng.gen_range(1..max_dim + 1);
    Matrix::from_fn(n, n, |_, _| rng.gen_range(-3.0..3.0))
}

#[test]
fn qr_reconstructs_and_q_is_orthonormal() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 7);
        let qr = householder_qr(&a).unwrap();
        let recon = qr.reconstruct();
        let err = recon.sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-9 * (1.0 + a.frobenius_norm()), "QR error {err}");
        assert!(qr.q.orthonormality_defect() < 1e-9);
    }
}

#[test]
fn svd_reconstructs_any_shape() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 6);
        let s = svd(&a).unwrap();
        let err = s.reconstruct().sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-8 * (1.0 + a.frobenius_norm()), "SVD error {err}");
        // Singular values decreasing and non-negative.
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(s.singular_values.iter().all(|&v| v >= 0.0));
        // Frobenius norm equals the singular-value energy.
        let sv_energy: f64 = s.singular_values.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((sv_energy - a.frobenius_norm()).abs() < 1e-8 * (1.0 + a.frobenius_norm()));
    }
}

#[test]
fn symmetric_eig_reconstructs_gram() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 6);
        let gram = a.gram_rows();
        let e = symmetric_eig(&gram).unwrap();
        let err = e.reconstruct().sub(&gram).unwrap().frobenius_norm();
        assert!(err < 1e-8 * (1.0 + gram.frobenius_norm()));
        // Gram eigenvalues are non-negative.
        assert!(e.eigenvalues.iter().all(|&l| l > -1e-8));
    }
}

#[test]
fn lu_solve_inverts_well_conditioned_systems() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_square(&mut rng, 6);
        let shift = rng.gen_range(2.0..6.0);
        // Diagonal shift keeps the system comfortably non-singular.
        let n = a.rows();
        let mut m = a.clone();
        for i in 0..n {
            m.set(i, i, m.get(i, i) + shift * 3.0);
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = m.matvec(&x_true).unwrap();
        let x = lu_decompose(&m).unwrap().solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "component {i}");
        }
    }
}

#[test]
fn cholesky_matches_lu_on_spd() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 5);
        // AᵀA + I is SPD.
        let mut spd = a.transpose_matmul(&a).unwrap();
        for i in 0..spd.rows() {
            spd.set(i, i, spd.get(i, i) + 1.0);
        }
        let b: Vec<f64> = (0..spd.rows()).map(|i| 1.0 + i as f64).collect();
        let x_ch = cholesky(&spd).unwrap().solve(&b).unwrap();
        let x_lu = lu_decompose(&spd).unwrap().solve(&b).unwrap();
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            assert!((u - v).abs() < 1e-8);
        }
    }
}

#[test]
fn kronecker_norm_is_product_of_norms() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 4);
        let b = rand_matrix(&mut rng, 4);
        let k = kronecker(&a, &b);
        let expected = a.frobenius_norm() * b.frobenius_norm();
        assert!((k.frobenius_norm() - expected).abs() < 1e-9 * (1.0 + expected));
    }
}

#[test]
fn khatri_rao_is_column_subset_of_kronecker() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 4);
        let b = rand_matrix(&mut rng, 4);
        // Force equal column counts by truncating.
        let c = a.cols().min(b.cols());
        let a = a.leading_columns(c).unwrap();
        let b = b.leading_columns(c).unwrap();
        let kr = khatri_rao(&a, &b).unwrap();
        assert_eq!(kr.shape(), (a.rows() * b.rows(), c));
        // Column j of A ⊙ B equals a_j ⊗ b_j.
        for j in 0..c {
            let col = kr.col(j);
            let mut expected = Vec::with_capacity(col.len());
            for i in 0..a.rows() {
                for p in 0..b.rows() {
                    expected.push(a.get(i, j) * b.get(p, j));
                }
            }
            for (x, y) in col.iter().zip(expected.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn matmul_is_associative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 4);
        let b = rand_matrix(&mut rng, 4);
        let c = rand_matrix(&mut rng, 4);
        // Reshape to a compatible chain: A(r_a × k), B(k × k2), C(k2 × c).
        let k = a.cols().min(b.rows());
        let a = a.leading_columns(k).unwrap();
        let b_rows = k;
        let mut b2 = Matrix::zeros(b_rows, b.cols());
        for i in 0..b_rows.min(b.rows()) {
            b2.row_mut(i).copy_from_slice(b.row(i));
        }
        let k2 = b2.cols().min(c.rows());
        let b2 = b2.leading_columns(k2).unwrap();
        let mut c2 = Matrix::zeros(k2, c.cols());
        for i in 0..k2.min(c.rows()) {
            c2.row_mut(i).copy_from_slice(c.row(i));
        }
        let left = a.matmul(&b2).unwrap().matmul(&c2).unwrap();
        let right = a.matmul(&b2.matmul(&c2).unwrap()).unwrap();
        let diff = left.sub(&right).unwrap().frobenius_norm();
        assert!(diff < 1e-9 * (1.0 + left.frobenius_norm()));
    }
}

#[test]
fn transpose_matmul_agrees_with_explicit() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, 5);
        let b = rand_matrix(&mut rng, 5);
        // Make row counts agree.
        let rows = a.rows().min(b.rows());
        let trim = |m: &Matrix| {
            let mut out = Matrix::zeros(rows, m.cols());
            for i in 0..rows {
                out.row_mut(i).copy_from_slice(m.row(i));
            }
            out
        };
        let a = trim(&a);
        let b = trim(&b);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-10);
    }
}

/// Parallel kernels must match the serial path bitwise on random shapes —
/// including shapes large enough to cross the internal parallel
/// threshold — at every thread count.
#[test]
fn parallel_kernels_match_serial_on_random_shapes() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        // Mix small (serial fast path) and large (parallel path) shapes.
        let scale = if seed % 2 == 0 { 8 } else { 64 };
        let m = rng.gen_range(1..scale + 1);
        let k = rng.gen_range(1..scale + 1);
        let n = rng.gen_range(1..scale + 1);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-3.0..3.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-3.0..3.0));
        let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-3.0..3.0));
        let d = Matrix::from_fn(n, k, |_, _| rng.gen_range(-3.0..3.0));

        m2td_par::set_max_threads(1);
        let mm = a.matmul(&b).unwrap();
        let tm = a.transpose_matmul(&c).unwrap();
        let mt = a.matmul_transpose(&d).unwrap();
        let gram = a.gram_rows();

        for threads in [2usize, 8] {
            m2td_par::set_max_threads(threads);
            assert_eq!(a.matmul(&b).unwrap(), mm, "matmul t={threads} seed={seed}");
            assert_eq!(
                a.transpose_matmul(&c).unwrap(),
                tm,
                "transpose_matmul t={threads} seed={seed}"
            );
            assert_eq!(
                a.matmul_transpose(&d).unwrap(),
                mt,
                "matmul_transpose t={threads} seed={seed}"
            );
            assert_eq!(a.gram_rows(), gram, "gram_rows t={threads} seed={seed}");
        }
        m2td_par::set_max_threads(0);
    }
}
