//! m2td-obs — observability runtime for the M2TD pipeline.
//!
//! Dependency-free (only `m2td-json` for export), thread-safe, and
//! zero-cost when disabled. Three primitives:
//!
//! * **Spans** — scoped wall-time measurements aggregated per label
//!   ([`span!`], [`Span`]). Each label accumulates call count, total wall
//!   time, *self* time (total minus time spent in nested spans on the same
//!   thread), and the maximum nesting depth observed.
//! * **Counters** — monotonically increasing `u64` totals
//!   ([`counter_add`]): retries, speculative launches, checkpoint
//!   hits/misses, injected faults.
//! * **Gauges** — last-value / accumulated `f64` levels ([`gauge_set`],
//!   [`gauge_add`]): effective thread count, missing-cell coverage,
//!   virtual time lost to stragglers.
//!
//! ## Overhead guarantee
//!
//! Nothing is recorded until [`install`] flips the global subscriber flag.
//! While disabled, every entry point is a single relaxed atomic load:
//! [`Span::enter_label`] takes its label generically and never converts it
//! (no allocation), never calls `Instant::now()`, and its guard's `Drop`
//! is a no-op. The parallel-vs-serial bitwise determinism tests run with
//! the subscriber off and are unaffected by instrumentation.
//!
//! Instrumentation must never perturb numerics: recording only reads
//! clocks and bumps aggregates, so enabling the subscriber changes no
//! computed value — only the exported [`MetricsSnapshot`].
//!
//! ## Nesting and threads
//!
//! The span stack is thread-local: a span entered inside
//! `m2td_par::join`'s spawned closure starts at depth 1 on the worker
//! thread. Span *counts* and counter values are therefore identical
//! across `M2TD_THREADS` settings (the work done is identical), while
//! depths and self-times legitimately differ; tests must compare counts,
//! not times.
//!
//! ## Export
//!
//! [`snapshot`] drains nothing — it copies the registry into a
//! [`MetricsSnapshot`] that implements `ToJson`/`FromJson` over
//! `m2td-json`, so the CLI's `--metrics-out`, `RunReport::metrics`, and
//! the bench harness all share one schema.

use m2td_json::{FromJson, Json, JsonError, ToJson};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Global subscriber flag. Relaxed is enough: recording threads only need
/// to *eventually* observe installation, and tests that require a
/// happens-before edge get one from the registry mutex.
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_depth: u32,
}

#[derive(Debug)]
struct Registry {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    spans: BTreeMap::new(),
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
});

/// A panicking recorder must not disable observability for the rest of
/// the process (tests use `catch_unwind`-style harnesses).
fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Per-thread stack of active spans: each frame accumulates the wall
    /// time of its *direct and indirect children* so `Drop` can compute
    /// self time.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Enables recording globally. Idempotent.
pub fn install() {
    INSTALLED.store(true, Ordering::SeqCst);
}

/// Disables recording globally. Spans already open keep recording on
/// drop; new entries become no-ops.
pub fn uninstall() {
    INSTALLED.store(false, Ordering::SeqCst);
}

/// Whether a subscriber is installed. One relaxed load.
#[inline]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Clears every span aggregate, counter and gauge.
pub fn reset() {
    let mut reg = registry();
    reg.spans.clear();
    reg.counters.clear();
    reg.gauges.clear();
}

/// RAII guard for one scoped wall-time measurement. Construct with
/// [`span!`] or [`Span::enter_label`]; the measurement is recorded when
/// the guard drops.
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    label: String,
    start: Instant,
    depth: u32,
}

impl Span {
    /// Enters a span under `label`, or returns a disabled no-op guard if
    /// no subscriber is installed (the label is never even converted).
    pub fn enter_label<L: Into<String>>(label: L) -> Span {
        if !installed() {
            return Span { inner: None };
        }
        let depth = STACK.with(|s| {
            let mut st = s.borrow_mut();
            st.push(0);
            st.len() as u32
        });
        Span {
            inner: Some(SpanInner {
                label: label.into(),
                start: Instant::now(),
                depth,
            }),
        }
    }

    /// A guard that records nothing. Used by [`span!`] for its disabled
    /// fast path.
    pub fn disabled() -> Span {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let total_ns = inner.start.elapsed().as_nanos() as u64;
        let child_ns = STACK.with(|s| {
            let mut st = s.borrow_mut();
            let child = st.pop().unwrap_or(0);
            if let Some(parent) = st.last_mut() {
                *parent += total_ns;
            }
            child
        });
        let mut reg = registry();
        let agg = reg.spans.entry(inner.label).or_default();
        agg.count += 1;
        agg.total_ns += total_ns;
        agg.self_ns += total_ns.saturating_sub(child_ns);
        agg.max_depth = agg.max_depth.max(inner.depth);
    }
}

/// Enters a scoped span: `span!("ttm")` or `span!("ttm", mode = n)`.
///
/// Key/value fields are folded into the aggregation label as
/// `label{key=value}`, so distinct field values aggregate separately.
/// When no subscriber is installed the field values are never formatted.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::Span::enter_label($label)
    };
    ($label:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::installed() {
            let mut __label = ::std::string::String::from($label);
            $(
                __label.push('{');
                __label.push_str(stringify!($key));
                __label.push('=');
                __label.push_str(&::std::string::ToString::to_string(&$value));
                __label.push('}');
            )+
            $crate::Span::enter_label(__label)
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Adds `delta` to the named counter, creating it at zero first. A delta
/// of 0 still materializes the key, so "this event class was observed
/// zero times" is distinguishable from "never wired". No-op when
/// disabled.
pub fn counter_add<N: Into<String>>(name: N, delta: u64) {
    if !installed() {
        return;
    }
    let mut reg = registry();
    *reg.counters.entry(name.into()).or_insert(0) += delta;
}

/// Sets the named gauge to `value` (last write wins). No-op when
/// disabled.
pub fn gauge_set<N: Into<String>>(name: N, value: f64) {
    if !installed() {
        return;
    }
    let mut reg = registry();
    reg.gauges.insert(name.into(), value);
}

/// Adds `delta` to the named gauge, creating it at zero first. Used for
/// accumulated quantities that are not integer counts (e.g. virtual
/// seconds lost to stragglers). No-op when disabled.
pub fn gauge_add<N: Into<String>>(name: N, delta: f64) {
    if !installed() {
        return;
    }
    let mut reg = registry();
    *reg.gauges.entry(name.into()).or_insert(0.0) += delta;
}

/// Aggregate of every completed span under one label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Aggregation label, including any `{key=value}` fields.
    pub label: String,
    /// Number of completed spans.
    pub count: u64,
    /// Summed wall time, seconds.
    pub total_secs: f64,
    /// Summed wall time minus time spent in same-thread nested spans.
    pub self_secs: f64,
    /// Deepest nesting level observed (1 = no enclosing span on that
    /// thread).
    pub max_depth: u32,
}

/// Point-in-time copy of the registry. Sorted by label/name (the
/// registry is a `BTreeMap`), so snapshots of identical runs compare
/// equal structurally.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub spans: Vec<SpanStat>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// Looks up one span aggregate by label.
    pub fn span(&self, label: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.label == label)
    }

    /// Looks up one counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up one gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// All counters whose name starts with `prefix`, e.g.
    /// `counters_with_prefix("guard.")` for every guard detection. The
    /// returned slice of pairs keeps the registry's sorted name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
            .collect()
    }

    /// The thread-count-invariant projection: `(label, count)` per span.
    /// Times and depths legitimately vary across thread counts; counts
    /// must not.
    pub fn span_counts(&self) -> Vec<(String, u64)> {
        self.spans
            .iter()
            .map(|s| (s.label.clone(), s.count))
            .collect()
    }
}

const NS_PER_SEC: f64 = 1e9;

impl ToJson for SpanStat {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".to_string(), self.label.to_json()),
            ("count".to_string(), self.count.to_json()),
            ("total_secs".to_string(), self.total_secs.to_json()),
            ("self_secs".to_string(), self.self_secs.to_json()),
            ("max_depth".to_string(), (self.max_depth as u64).to_json()),
        ])
    }
}

impl FromJson for SpanStat {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: json.require("label")?.as_str()?.to_string(),
            count: json.require("count")?.as_u64()?,
            total_secs: json.require("total_secs")?.as_f64()?,
            self_secs: json.require("self_secs")?.as_f64()?,
            max_depth: json.require("max_depth")?.as_u64()? as u32,
        })
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        let spans = Json::Arr(self.spans.iter().map(ToJson::to_json).collect());
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), v.to_json()))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), v.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("spans".to_string(), spans),
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
        ])
    }
}

impl FromJson for MetricsSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let spans = match json.require("spans")? {
            Json::Arr(items) => items
                .iter()
                .map(SpanStat::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            other => {
                return Err(JsonError::Type {
                    expected: "array of span stats",
                    found: other.type_name(),
                })
            }
        };
        let counters = match json.require("counters")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(n, v)| Ok((n.clone(), v.as_u64()?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            other => {
                return Err(JsonError::Type {
                    expected: "object of counters",
                    found: other.type_name(),
                })
            }
        };
        let gauges = match json.require("gauges")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(n, v)| Ok((n.clone(), v.as_f64()?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            other => {
                return Err(JsonError::Type {
                    expected: "object of gauges",
                    found: other.type_name(),
                })
            }
        };
        Ok(Self {
            spans,
            counters,
            gauges,
        })
    }
}

/// Copies the current registry contents into a snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        spans: reg
            .spans
            .iter()
            .map(|(label, a)| SpanStat {
                label: label.clone(),
                count: a.count,
                total_secs: a.total_ns as f64 / NS_PER_SEC,
                self_secs: a.self_ns as f64 / NS_PER_SEC,
                max_depth: a.max_depth,
            })
            .collect(),
        counters: reg.counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
        gauges: reg.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
    }
}

/// `Some(snapshot())` when a subscriber is installed, `None` otherwise.
/// The shape used by `RunReport::metrics`.
pub fn snapshot_if_installed() -> Option<MetricsSnapshot> {
    installed().then(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and subscriber flag are process-global; every test
    /// that installs must hold this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_subscriber_records_nothing() {
        let _g = locked();
        uninstall();
        reset();
        {
            let _s = span!("noop");
            let _t = span!("noop", mode = 3);
        }
        counter_add("noop.counter", 5);
        gauge_set("noop.gauge", 1.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn spans_aggregate_counts_nesting_and_self_time() {
        let _g = locked();
        install();
        reset();
        {
            let _outer = span!("outer");
            for _ in 0..3 {
                let _inner = span!("inner");
            }
        }
        let snap = snapshot();
        uninstall();
        let outer = snap.span("outer").expect("outer recorded");
        let inner = snap.span("inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert_eq!(outer.max_depth, 1);
        assert_eq!(inner.max_depth, 2);
        // Self time excludes the nested spans' wall time.
        assert!(outer.self_secs <= outer.total_secs);
        assert!(outer.total_secs >= inner.total_secs);
    }

    #[test]
    fn span_fields_fold_into_label() {
        let _g = locked();
        install();
        reset();
        {
            let _a = span!("ttm", mode = 0);
            let _b = span!("ttm", mode = 1);
            let _c = span!("ttm", mode = 1);
        }
        let snap = snapshot();
        uninstall();
        assert_eq!(snap.span("ttm{mode=0}").unwrap().count, 1);
        assert_eq!(snap.span("ttm{mode=1}").unwrap().count, 2);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = locked();
        install();
        reset();
        counter_add("retries", 2);
        counter_add("retries", 3);
        counter_add("zero_but_present", 0);
        gauge_set("threads", 4.0);
        gauge_set("threads", 8.0);
        gauge_add("lost_secs", 0.5);
        gauge_add("lost_secs", 0.25);
        let snap = snapshot();
        uninstall();
        assert_eq!(snap.counter("retries"), Some(5));
        assert_eq!(snap.counter("zero_but_present"), Some(0));
        assert_eq!(snap.counter("never_wired"), None);
        assert_eq!(snap.gauge("threads"), Some(8.0));
        assert_eq!(snap.gauge("lost_secs"), Some(0.75));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let _g = locked();
        install();
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..50 {
                        let _s = span!("worker");
                        counter_add("events", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = snapshot();
        uninstall();
        assert_eq!(snap.span("worker").unwrap().count, 200);
        assert_eq!(snap.counter("events"), Some(200));
        // Each thread's stack starts empty: no cross-thread nesting.
        assert_eq!(snap.span("worker").unwrap().max_depth, 1);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = MetricsSnapshot {
            spans: vec![SpanStat {
                label: "phase1.decompose".to_string(),
                count: 2,
                total_secs: 0.125,
                self_secs: 0.0625,
                max_depth: 3,
            }],
            counters: vec![("mr.retries".to_string(), 7)],
            gauges: vec![("threads.effective".to_string(), 4.0)],
        };
        let text = snap.to_json().to_pretty();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_is_label_sorted() {
        let _g = locked();
        install();
        reset();
        {
            let _b = span!("b.second");
        }
        {
            let _a = span!("a.first");
        }
        counter_add("z", 1);
        counter_add("a", 1);
        let snap = snapshot();
        uninstall();
        let labels: Vec<&str> = snap.spans.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["a.first", "b.second"]);
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "z"]);
    }
}
