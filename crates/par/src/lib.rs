//! # m2td-par — the workspace-wide parallel compute runtime
//!
//! Every parallel code path in the workspace goes through this crate so a
//! single knob governs all intra-process parallelism:
//!
//! 1. [`set_max_threads`] (programmatic override, used by `m2td-cli
//!    --threads` and by tests),
//! 2. the `M2TD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`] as the default.
//!
//! At `threads = 1` every primitive degrades to a plain in-order serial
//! loop on the calling thread — no threads are spawned, no synchronisation
//! happens, and the exact serial iteration order is preserved.
//!
//! ## Determinism contract
//!
//! The primitives here only make *scheduling* concurrent, never
//! *accumulation order*. Work is partitioned so that each output location
//! is written by exactly one task, and each task computes its outputs in
//! the same order the serial loop would. Kernels built on these primitives
//! (see `m2td-linalg` and `m2td-tensor`) therefore produce bitwise
//! identical results at every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic override; 0 means "unset, fall back to env/default".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolved `M2TD_THREADS` / available-parallelism default, read once.
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

fn env_default() -> usize {
    *ENV_DEFAULT.get_or_init(|| {
        match std::env::var("M2TD_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// The maximum number of worker threads parallel primitives may use.
///
/// Resolution order: [`set_max_threads`] override, then `M2TD_THREADS`,
/// then available parallelism (1 if that cannot be determined).
pub fn max_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_default(),
        n => n,
    }
}

/// Overrides the global thread count for this process.
///
/// `n = 0` clears the override, restoring the `M2TD_THREADS`/default
/// resolution. Because every kernel in the workspace is deterministic
/// across thread counts, changing this concurrently with running work is
/// safe (it only affects scheduling of subsequently started primitives).
pub fn set_max_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs two closures, possibly in parallel, and returns both results.
///
/// With `max_threads() <= 1`, runs `a` then `b` on the calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("m2td-par: joined task panicked");
        (ra, rb)
    })
}

/// Raw-pointer wrapper that lets scoped worker threads share one output
/// buffer. Soundness relies on the caller's partitioning discipline.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SyncPtr<T> {}
impl<T> SyncPtr<T> {
    /// Accessed via a method so closures capture the whole `Sync` wrapper
    /// rather than the raw pointer field (2021 disjoint capture).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Maps `f` over `items`, preserving order of results.
///
/// Scheduling is dynamic (atomic index counter) but each slot is written
/// by exactly one worker, so the output is deterministic.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let out_ptr = SyncPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(&items[i]);
                // SAFETY: the atomic counter hands index `i` to exactly one
                // worker; slots are disjoint and `out` outlives the scope.
                unsafe { *out_ptr.get().add(i) = Some(v) };
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("m2td-par: par_map slot not filled"))
        .collect()
}

/// Runs `f(i)` for every `i in 0..n`, possibly in parallel.
///
/// With `max_threads() <= 1` the indices run in ascending order on the
/// calling thread. `f` must make writes for distinct indices disjoint.
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = max_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Splits `data` into consecutive rows of `row_len` elements and calls
/// `f(row_index, row)` for each, scheduling rows dynamically over the
/// worker pool. Each row is visited exactly once; with one thread the
/// rows run in ascending order on the calling thread.
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_rows_mut<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_len > 0, "m2td-par: row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "m2td-par: buffer not a whole number of rows"
    );
    let rows = data.len() / row_len;
    let threads = max_threads().min(rows);
    if threads <= 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    // Small grains keep the pool balanced when per-row cost is skewed
    // (e.g. the triangular row lengths of a Gram matrix).
    let grain = (rows / (threads * 8)).max(1);
    let base = SyncPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = next.fetch_add(grain, Ordering::Relaxed);
                if start >= rows {
                    break;
                }
                let end = (start + grain).min(rows);
                for i in start..end {
                    // SAFETY: row `i` spans `[i*row_len, (i+1)*row_len)`;
                    // the counter hands each row range to exactly one
                    // worker, so the slices never alias.
                    let row = unsafe {
                        std::slice::from_raw_parts_mut(base.get().add(i * row_len), row_len)
                    };
                    f(i, row);
                }
            });
        }
    });
}

/// Runs `f(&mut state, tile)` for every `tile in 0..tiles`, giving each
/// worker its own scratch state built by `init` (packing buffers, pooled
/// panels, …). Tiles are scheduled dynamically off an atomic counter, so
/// the mapping of tiles to workers is *not* deterministic — callers must
/// make each tile's writes disjoint and its arithmetic independent of
/// which worker runs it. With one thread the tiles run in ascending order
/// on the calling thread with a single state.
///
/// This is the primitive the blocked GEMM backend in `m2td-linalg`
/// schedules its NC×MC macro-tiles with.
pub fn par_tiles<S, I, F>(tiles: usize, init: I, f: F)
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    if tiles == 0 {
        return;
    }
    let threads = max_threads().min(tiles);
    if threads <= 1 {
        let mut state = init();
        for t in 0..tiles {
            f(&mut state, t);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut state = init();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tiles {
                        break;
                    }
                    f(&mut state, t);
                }
            });
        }
    });
}

/// Shared mutable view of a slice for scatter-style kernels where the
/// *caller* guarantees that concurrent writers touch disjoint indices.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice. The borrow keeps the underlying buffer
    /// exclusively reserved for this view's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements in the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `v` into element `i`.
    ///
    /// # Safety
    /// No other thread may access index `i` concurrently. Callers uphold
    /// this by partitioning output indices across tasks.
    pub unsafe fn add_assign(&self, i: usize, v: T)
    where
        T: std::ops::AddAssign,
    {
        debug_assert!(i < self.len, "m2td-par: UnsafeSlice index out of range");
        *self.ptr.add(i) += v;
    }

    /// Writes `v` to element `i`.
    ///
    /// # Safety
    /// Same disjointness contract as [`UnsafeSlice::add_assign`].
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len, "m2td-par: UnsafeSlice index out of range");
        *self.ptr.add(i) = v;
    }
}

/// Spawns `min(n, max_threads())` workers all running `f` until it
/// returns, then joins them. `f` typically pulls work items off a shared
/// queue; with one worker it simply runs inline.
///
/// This is the primitive `m2td-dist`'s MapReduce engine drains its task
/// queues with.
pub fn run_workers<F>(n: usize, f: F)
where
    F: Fn() + Sync,
{
    let workers = n.clamp(1, max_threads().max(1));
    if workers <= 1 {
        f();
        return;
    }
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(&f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that flip the global override.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn thread_resolution_and_override() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn join_returns_both_results() {
        let _g = LOCK.lock().unwrap();
        for t in [1usize, 4] {
            set_max_threads(t);
            let (a, b) = join(|| 2 + 2, || "ok");
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
        set_max_threads(0);
    }

    #[test]
    fn par_map_preserves_order() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * x).collect();
        for t in [1usize, 2, 8] {
            set_max_threads(t);
            assert_eq!(par_map(&items, |&x| x * x), serial);
        }
        set_max_threads(0);
    }

    #[test]
    fn par_rows_mut_visits_every_row_once() {
        let _g = LOCK.lock().unwrap();
        for t in [1usize, 2, 8] {
            set_max_threads(t);
            let mut buf = vec![0u32; 64 * 5];
            par_rows_mut(&mut buf, 5, |i, row| {
                for v in row.iter_mut() {
                    *v += i as u32 + 1;
                }
            });
            for (i, chunk) in buf.chunks(5).enumerate() {
                assert!(chunk.iter().all(|&v| v == i as u32 + 1));
            }
        }
        set_max_threads(0);
    }

    #[test]
    fn par_for_each_index_covers_range() {
        let _g = LOCK.lock().unwrap();
        for t in [1usize, 2, 8] {
            set_max_threads(t);
            let mut flags = vec![0u8; 100];
            let view = UnsafeSlice::new(&mut flags);
            par_for_each_index(100, |i| unsafe { view.add_assign(i, 1) });
            assert!(flags.iter().all(|&f| f == 1));
        }
        set_max_threads(0);
    }

    #[test]
    fn par_tiles_visits_every_tile_once_with_worker_state() {
        let _g = LOCK.lock().unwrap();
        for t in [1usize, 2, 8] {
            set_max_threads(t);
            let mut hits = vec![0u8; 300];
            let states = Mutex::new(Vec::new());
            {
                let view = UnsafeSlice::new(&mut hits);
                par_tiles(
                    300,
                    || 0usize,
                    |state, tile| {
                        *state += 1;
                        unsafe { view.add_assign(tile, 1) };
                        if *state == 1 {
                            states.lock().unwrap().push(tile);
                        }
                    },
                );
            }
            assert!(hits.iter().all(|&h| h == 1));
            // One fresh state per worker: the number of "first tile seen"
            // records is bounded by the worker count.
            assert!(states.lock().unwrap().len() <= t.min(300));
            states.lock().unwrap().clear();
        }
        set_max_threads(4);
        par_tiles(0, || (), |_, _| panic!("no tiles"));
        set_max_threads(0);
    }

    #[test]
    fn run_workers_drains_queue() {
        let _g = LOCK.lock().unwrap();
        for t in [1usize, 4] {
            set_max_threads(t);
            let queue = Mutex::new((0..1000usize).collect::<Vec<_>>());
            let sum = Mutex::new(0usize);
            run_workers(4, || loop {
                let item = queue.lock().unwrap().pop();
                match item {
                    Some(v) => *sum.lock().unwrap() += v,
                    None => break,
                }
            });
            assert_eq!(*sum.lock().unwrap(), 999 * 1000 / 2);
        }
        set_max_threads(0);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(4);
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        par_rows_mut::<u8, _>(&mut [], 3, |_, _| panic!("no rows"));
        par_for_each_index(0, |_| panic!("no indices"));
        set_max_threads(0);
    }
}
