//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! crate provides the exact surface the m2td code base uses — `RngCore`,
//! `Rng::gen_range`, `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle` — with the same import paths, so call
//! sites compile unchanged. The generator is xoshiro256++ seeded through
//! SplitMix64; streams are deterministic per seed but are *not* the same
//! bit streams as upstream `rand` (nothing in the workspace depends on
//! the upstream streams, only on per-seed determinism).

use std::ops::Range;

/// A low-level source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types a [`Range`] can be uniformly sampled into.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range called with empty range"
                );
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and passes BigCrush; deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    0x2545F4914F6CDD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related randomness helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi, "uniform sampler missed endpoints");
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..5usize);
        assert!(v < 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be identity for 50 elements.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
