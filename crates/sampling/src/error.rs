//! Error type for sampling-plan construction.

use std::fmt;

/// Errors produced while constructing sampling plans.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// The requested budget exceeds the number of cells available.
    BudgetTooLarge {
        /// Requested cell budget.
        requested: usize,
        /// Cells available in the (sub-)space.
        available: usize,
    },
    /// The space has no cells (a zero-extent mode or no modes).
    EmptySpace,
    /// A PF-partition is structurally invalid for the given mode count.
    InvalidPartition {
        /// Explanation of the violation.
        reason: String,
    },
    /// A density fraction was outside `(0, 1]`.
    InvalidFraction {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::BudgetTooLarge {
                requested,
                available,
            } => write!(
                f,
                "budget {requested} exceeds the {available} available cells"
            ),
            SamplingError::EmptySpace => write!(f, "the sampling space has no cells"),
            SamplingError::InvalidPartition { reason } => {
                write!(f, "invalid PF-partition: {reason}")
            }
            SamplingError::InvalidFraction { value } => {
                write!(f, "density fraction {value} must lie in (0, 1]")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SamplingError::BudgetTooLarge {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }
}
