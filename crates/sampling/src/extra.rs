//! Additional conventional baselines beyond the paper's three: Latin
//! hypercube and stratified (jittered-grid) sampling.
//!
//! The paper's Section IV compares Random, Grid and Slice sampling. Both
//! schemes here are standard experiment-design alternatives; the
//! `extra_baselines` ablation shows that even better space-filling
//! designs do not close the gap to partition-stitch sampling — the
//! advantage comes from the density boost, not from where the samples
//! land.

use crate::error::SamplingError;
use crate::scheme::SamplingScheme;
use crate::Result;
use m2td_tensor::Shape;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

fn check_space(dims: &[usize], budget: usize) -> Result<usize> {
    let total = Shape::new(dims).num_elements();
    if total == 0 {
        return Err(SamplingError::EmptySpace);
    }
    if budget > total {
        return Err(SamplingError::BudgetTooLarge {
            requested: budget,
            available: total,
        });
    }
    Ok(total)
}

/// Latin hypercube sampling: each axis is divided into `budget` strata and
/// every stratum is used exactly once per axis (via independent random
/// permutations), giving optimal one-dimensional projections.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatinHypercubeSampling;

impl SamplingScheme for LatinHypercubeSampling {
    fn name(&self) -> &'static str {
        "latin-hypercube"
    }

    fn plan(
        &self,
        dims: &[usize],
        budget: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        let total = check_space(dims, budget)?;
        if budget == 0 {
            return Ok(Vec::new());
        }
        let n = dims.len();
        // One random permutation of 0..budget per axis; stratum i maps to
        // grid index floor(i * dim / budget) + jitter within the stratum.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut p: Vec<usize> = (0..budget).collect();
            p.shuffle(rng);
            perms.push(p);
        }
        let mut seen: HashSet<Vec<usize>> = HashSet::with_capacity(budget);
        let mut plan: Vec<Vec<usize>> = Vec::with_capacity(budget);
        #[allow(clippy::needless_range_loop)] // `i` selects one stratum per axis
        for i in 0..budget {
            let cell: Vec<usize> = (0..n)
                .map(|axis| {
                    let stratum = perms[axis][i];
                    let lo = stratum * dims[axis] / budget;
                    let hi = (((stratum + 1) * dims[axis]).div_ceil(budget)).min(dims[axis]);
                    if hi > lo + 1 {
                        rng.gen_range(lo..hi)
                    } else {
                        lo.min(dims[axis] - 1)
                    }
                })
                .collect();
            if seen.insert(cell.clone()) {
                plan.push(cell);
            }
        }
        // Collisions can only occur when budget exceeds an axis extent
        // (several strata share a grid value); top up randomly.
        let shape = Shape::new(dims);
        while plan.len() < budget {
            let cell = shape.multi_index(rng.gen_range(0..total));
            if seen.insert(cell.clone()) {
                plan.push(cell);
            }
        }
        Ok(plan)
    }
}

/// Stratified sampling: the space is divided into a balanced lattice of
/// blocks (one per sample) and a uniformly random cell is drawn inside
/// each block — grid-like coverage without grid-like regularity.
#[derive(Debug, Clone, Copy, Default)]
pub struct StratifiedSampling;

impl StratifiedSampling {
    /// Balanced per-axis block counts whose product is ≤ budget.
    fn block_counts(dims: &[usize], budget: usize) -> Vec<usize> {
        let n = dims.len();
        let mut k = vec![1usize; n];
        loop {
            let product: usize = k.iter().product();
            let mut best: Option<usize> = None;
            for m in 0..n {
                if k[m] >= dims[m] {
                    continue;
                }
                let new_product = product / k[m] * (k[m] + 1);
                if new_product <= budget && best.is_none_or(|b| k[m] < k[b]) {
                    best = Some(m);
                }
            }
            match best {
                Some(m) => k[m] += 1,
                None => break,
            }
        }
        k
    }
}

impl SamplingScheme for StratifiedSampling {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn plan(
        &self,
        dims: &[usize],
        budget: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        check_space(dims, budget)?;
        if budget == 0 {
            return Ok(Vec::new());
        }
        let blocks = Self::block_counts(dims, budget);
        let lattice = Shape::new(&blocks);
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut plan = Vec::with_capacity(lattice.num_elements());
        for block_idx in lattice.iter_indices() {
            let cell: Vec<usize> = block_idx
                .iter()
                .zip(blocks.iter())
                .zip(dims.iter())
                .map(|((&b, &k), &d)| {
                    let lo = b * d / k;
                    let hi = ((b + 1) * d / k).max(lo + 1).min(d);
                    if hi > lo + 1 {
                        rng.gen_range(lo..hi)
                    } else {
                        lo
                    }
                })
                .collect();
            if seen.insert(cell.clone()) {
                plan.push(cell);
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn assert_valid(plan: &[Vec<usize>], dims: &[usize], budget: usize) {
        assert!(plan.len() <= budget);
        let mut seen = HashSet::new();
        for cell in plan {
            assert_eq!(cell.len(), dims.len());
            for (i, d) in cell.iter().zip(dims.iter()) {
                assert!(i < d, "cell {cell:?} out of bounds");
            }
            assert!(seen.insert(cell.clone()));
        }
    }

    #[test]
    fn lhs_exact_budget_and_marginals() {
        let dims = [8, 8, 8];
        let budget = 8;
        let plan = LatinHypercubeSampling
            .plan(&dims, budget, &mut rng())
            .unwrap();
        assert_eq!(plan.len(), budget);
        assert_valid(&plan, &dims, budget);
        // With budget == dim, each axis uses every value exactly once.
        for axis in 0..3 {
            let values: HashSet<usize> = plan.iter().map(|c| c[axis]).collect();
            assert_eq!(values.len(), 8, "axis {axis} projections not Latin");
        }
    }

    #[test]
    fn lhs_budget_exceeding_axis_extent() {
        let dims = [4, 4];
        let plan = LatinHypercubeSampling.plan(&dims, 10, &mut rng()).unwrap();
        assert_eq!(plan.len(), 10);
        assert_valid(&plan, &dims, 10);
    }

    #[test]
    fn lhs_rejects_overbudget_and_empty() {
        assert!(LatinHypercubeSampling.plan(&[2, 2], 5, &mut rng()).is_err());
        assert!(LatinHypercubeSampling.plan(&[0, 2], 1, &mut rng()).is_err());
        assert!(LatinHypercubeSampling
            .plan(&[3, 3], 0, &mut rng())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stratified_covers_blocks() {
        let dims = [9, 9];
        let budget = 9; // 3x3 blocks
        let plan = StratifiedSampling.plan(&dims, budget, &mut rng()).unwrap();
        assert_eq!(plan.len(), 9);
        assert_valid(&plan, &dims, budget);
        // Exactly one sample in each 3x3 block.
        let mut blocks = HashSet::new();
        for cell in &plan {
            blocks.insert((cell[0] / 3, cell[1] / 3));
        }
        assert_eq!(blocks.len(), 9);
    }

    #[test]
    fn stratified_under_budget_is_allowed() {
        let dims = [10, 10];
        let plan = StratifiedSampling.plan(&dims, 50, &mut rng()).unwrap();
        assert!(plan.len() >= 40, "only {} of 50", plan.len());
        assert_valid(&plan, &dims, 50);
    }

    #[test]
    fn schemes_are_seed_deterministic() {
        for scheme in [
            &LatinHypercubeSampling as &dyn SamplingScheme,
            &StratifiedSampling,
        ] {
            let a = scheme.plan(&[6, 6, 6], 20, &mut rng()).unwrap();
            let b = scheme.plan(&[6, 6, 6], 20, &mut rng()).unwrap();
            assert_eq!(a, b, "{} not deterministic", scheme.name());
        }
    }

    #[test]
    fn names() {
        assert_eq!(LatinHypercubeSampling.name(), "latin-hypercube");
        assert_eq!(StratifiedSampling.name(), "stratified");
    }
}
