//! Ensemble sampling schemes for the M2TD reproduction.
//!
//! Two families, mirroring Sections IV and V of the paper:
//!
//! * **Conventional sampling** of the full `N`-mode parameter space at a
//!   cell budget `B`: [`RandomSampling`], [`GridSampling`] and
//!   [`SliceSampling`] (the baselines of the evaluation tables).
//! * **PF-partitioning** ([`PfPartition`]): split the modes into `k` shared
//!   *pivot* modes and two halves of *free* modes; the remaining modes of
//!   each sub-system are *fixed* to default values. Each sub-system gets a
//!   plan of `P × E` cells (`P` pivot configurations × `E` free
//!   configurations), which the stitch layer later joins.
//!
//! All plans are lists of full-tensor multi-indices, so they can be fed
//! directly to `m2td_sim::EnsembleBuilder::build_sparse`. Budgets are
//! counted in tensor cells (simulation instances), matching the paper's
//! accounting in Table I.

mod error;
mod extra;
mod multiway;
mod partition;
mod scheme;

pub use error::SamplingError;
pub use extra::{LatinHypercubeSampling, StratifiedSampling};
pub use multiway::MultiPartition;
pub use partition::{PfPartition, SubSystem};
pub use scheme::{GridSampling, RandomSampling, SamplingScheme, SliceSampling};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SamplingError>;
