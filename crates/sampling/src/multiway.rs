//! Multi-way PF-partitioning — an extension beyond the paper's two-way
//! split.
//!
//! A [`MultiPartition`] divides the non-pivot modes into `S ≥ 2` equal
//! free groups. Each sub-system varies the pivots plus its own group and
//! fixes everything else, so a finer partition (more, smaller groups)
//! makes each sub-space exponentially smaller — the ensemble can reach
//! full sub-space density with far fewer simulations, at the price of
//! fixing more parameters per run. `m2td_core` stitches the resulting
//! sub-ensembles with `m2td_stitch::stitch_multi`.

use crate::error::SamplingError;
use crate::Result;
use m2td_tensor::{Shape, SparseTensor};
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// A pivot + `S` free-group partition of the full tensor's modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiPartition {
    pivot: Vec<usize>,
    groups: Vec<Vec<usize>>,
    n_modes: usize,
}

impl MultiPartition {
    /// Creates a partition after validating that the pivot and groups are
    /// a disjoint cover of `0..n_modes`, with at least two non-empty,
    /// equally sized groups.
    pub fn new(pivot: Vec<usize>, groups: Vec<Vec<usize>>, n_modes: usize) -> Result<Self> {
        if pivot.is_empty() {
            return Err(SamplingError::InvalidPartition {
                reason: "at least one pivot mode is required".into(),
            });
        }
        if groups.len() < 2 {
            return Err(SamplingError::InvalidPartition {
                reason: format!("need at least 2 free groups, got {}", groups.len()),
            });
        }
        let size = groups[0].len();
        if size == 0 || groups.iter().any(|g| g.len() != size) {
            return Err(SamplingError::InvalidPartition {
                reason: "free groups must be non-empty and equally sized".into(),
            });
        }
        let mut seen = HashSet::new();
        for &m in pivot.iter().chain(groups.iter().flatten()) {
            if m >= n_modes {
                return Err(SamplingError::InvalidPartition {
                    reason: format!("mode {m} out of range for {n_modes} modes"),
                });
            }
            if !seen.insert(m) {
                return Err(SamplingError::InvalidPartition {
                    reason: format!("mode {m} appears twice"),
                });
            }
        }
        if seen.len() != n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: format!("partition covers {} of {n_modes} modes", seen.len()),
            });
        }
        Ok(Self {
            pivot,
            groups,
            n_modes,
        })
    }

    /// The finest balanced partition with a single pivot: every other mode
    /// becomes its own free group (`S = n_modes − 1` sub-systems).
    pub fn finest(n_modes: usize, pivot_mode: usize) -> Result<Self> {
        if pivot_mode >= n_modes || n_modes < 3 {
            return Err(SamplingError::InvalidPartition {
                reason: format!("cannot build finest partition of {n_modes} modes"),
            });
        }
        let groups: Vec<Vec<usize>> = (0..n_modes)
            .filter(|&m| m != pivot_mode)
            .map(|m| vec![m])
            .collect();
        Self::new(vec![pivot_mode], groups, n_modes)
    }

    /// Number of sub-systems `S`.
    pub fn num_subsystems(&self) -> usize {
        self.groups.len()
    }

    /// Pivot modes.
    pub fn pivot_modes(&self) -> &[usize] {
        &self.pivot
    }

    /// Number of pivot modes `k`.
    pub fn k(&self) -> usize {
        self.pivot.len()
    }

    /// The free modes of sub-system `s`.
    pub fn free_modes(&self, s: usize) -> &[usize] {
        &self.groups[s]
    }

    /// Full-tensor mode ids of sub-system `s`'s tensor, in sub-tensor
    /// order `[pivot…, free…]`.
    pub fn sub_modes(&self, s: usize) -> Vec<usize> {
        let mut v = self.pivot.clone();
        v.extend_from_slice(&self.groups[s]);
        v
    }

    /// Full-tensor mode ids of the multi-way join tensor:
    /// `[pivot…, group₀…, …, group_{S−1}…]`.
    pub fn join_modes(&self) -> Vec<usize> {
        let mut v = self.pivot.clone();
        for g in &self.groups {
            v.extend_from_slice(g);
        }
        v
    }

    /// The permutation mapping a join-order tensor back to natural order
    /// (argument for `DenseTensor::permute_modes`).
    pub fn perm_join_to_natural(&self) -> Vec<usize> {
        let join = self.join_modes();
        let mut perm = vec![0usize; self.n_modes];
        for (pos, &full_mode) in join.iter().enumerate() {
            perm[full_mode] = pos;
        }
        perm
    }

    /// Builds the sampling plan for sub-system `s`: the same evenly spaced
    /// pivot configurations for every sub-system, crossed with `e_frac` of
    /// its free lattice (random), all other modes fixed at `defaults`.
    pub fn plan_subsystem(
        &self,
        full_dims: &[usize],
        defaults: &[usize],
        s: usize,
        p_frac: f64,
        e_frac: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        if full_dims.len() != self.n_modes || defaults.len() != self.n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: "dims/defaults length mismatch".into(),
            });
        }
        for &f in &[p_frac, e_frac] {
            if !(f > 0.0 && f <= 1.0) {
                return Err(SamplingError::InvalidFraction { value: f });
            }
        }
        let pivot_dims: Vec<usize> = self.pivot.iter().map(|&m| full_dims[m]).collect();
        let pivot_shape = Shape::new(&pivot_dims);
        let total_p = pivot_shape.num_elements();
        let p = ((p_frac * total_p as f64).ceil() as usize).clamp(1, total_p);
        let pivot_configs: Vec<Vec<usize>> = spaced(total_p, p)
            .into_iter()
            .map(|l| pivot_shape.multi_index(l))
            .collect();

        let free_dims: Vec<usize> = self.groups[s].iter().map(|&m| full_dims[m]).collect();
        let free_shape = Shape::new(&free_dims);
        let total_e = free_shape.num_elements();
        let e = ((e_frac * total_e as f64).ceil() as usize).clamp(1, total_e);
        let free_configs: Vec<Vec<usize>> = if e == total_e {
            (0..total_e).map(|l| free_shape.multi_index(l)).collect()
        } else {
            let mut all: Vec<usize> = (0..total_e).collect();
            all.shuffle(rng);
            all.truncate(e);
            all.sort_unstable();
            all.into_iter().map(|l| free_shape.multi_index(l)).collect()
        };

        let mut plan = Vec::with_capacity(p * e);
        for pc in &pivot_configs {
            for fc in &free_configs {
                let mut cell = defaults.to_vec();
                for (&m, &v) in self.pivot.iter().zip(pc.iter()) {
                    cell[m] = v;
                }
                for (&m, &v) in self.groups[s].iter().zip(fc.iter()) {
                    cell[m] = v;
                }
                plan.push(cell);
            }
        }
        Ok(plan)
    }

    /// Projects the full sparse ensemble onto sub-system `s`'s tensor
    /// (modes `[pivot…, free…]`), keeping only entries whose fixed modes
    /// sit at the defaults.
    pub fn extract_sub_tensor(
        &self,
        full: &SparseTensor,
        defaults: &[usize],
        s: usize,
    ) -> Result<SparseTensor> {
        if full.order() != self.n_modes || defaults.len() != self.n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: "tensor order / defaults mismatch".into(),
            });
        }
        let sub_modes = self.sub_modes(s);
        let own: HashSet<usize> = sub_modes.iter().copied().collect();
        let fixed: Vec<usize> = (0..self.n_modes).filter(|m| !own.contains(m)).collect();
        let sub_dims: Vec<usize> = sub_modes.iter().map(|&m| full.dims()[m]).collect();
        let mut entries: Vec<(Vec<usize>, f64)> = Vec::new();
        for (idx, v) in full.iter() {
            if fixed.iter().any(|&m| idx[m] != defaults[m]) {
                continue;
            }
            entries.push((sub_modes.iter().map(|&m| idx[m]).collect(), v));
        }
        SparseTensor::from_entries(&sub_dims, &entries).map_err(|e| {
            SamplingError::InvalidPartition {
                reason: format!("sub-tensor construction failed: {e}"),
            }
        })
    }
}

/// `count` evenly spaced values from `0..total`.
fn spaced(total: usize, count: usize) -> Vec<usize> {
    if count == 0 || total == 0 {
        return Vec::new();
    }
    if count >= total {
        return (0..total).collect();
    }
    if count == 1 {
        return vec![total / 2];
    }
    (0..count)
        .map(|i| (i * (total - 1)) / (count - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn finest_partition_of_five_modes() {
        let p = MultiPartition::finest(5, 4).unwrap();
        assert_eq!(p.num_subsystems(), 4);
        assert_eq!(p.pivot_modes(), &[4]);
        assert_eq!(p.free_modes(0), &[0]);
        assert_eq!(p.free_modes(3), &[3]);
        assert_eq!(p.join_modes(), vec![4, 0, 1, 2, 3]);
        assert_eq!(p.sub_modes(2), vec![4, 2]);
    }

    #[test]
    fn validation() {
        // One group.
        assert!(MultiPartition::new(vec![0], vec![vec![1, 2]], 3).is_err());
        // Unequal groups.
        assert!(MultiPartition::new(vec![0], vec![vec![1], vec![2, 3]], 4).is_err());
        // Duplicate / non-cover / out-of-range.
        assert!(MultiPartition::new(vec![0], vec![vec![0], vec![1]], 2).is_err());
        assert!(MultiPartition::new(vec![0], vec![vec![1], vec![2]], 5).is_err());
        assert!(MultiPartition::new(vec![9], vec![vec![0], vec![1]], 3).is_err());
        // No pivot.
        assert!(MultiPartition::new(vec![], vec![vec![0], vec![1]], 2).is_err());
        // Finest needs >= 3 modes and a valid pivot.
        assert!(MultiPartition::finest(2, 0).is_err());
        assert!(MultiPartition::finest(5, 7).is_err());
    }

    #[test]
    fn plans_pin_other_groups_to_defaults() {
        let p = MultiPartition::finest(5, 4).unwrap();
        let dims = [3, 3, 3, 3, 4];
        let defaults = [1, 1, 1, 1, 2];
        for s in 0..4 {
            let plan = p
                .plan_subsystem(&dims, &defaults, s, 1.0, 1.0, &mut rng())
                .unwrap();
            // P = 4 pivots x E = 3 free values.
            assert_eq!(plan.len(), 12);
            for cell in &plan {
                for (other, &v) in cell.iter().enumerate().take(4) {
                    if other != s {
                        assert_eq!(v, 1, "group {other} should be fixed");
                    }
                }
            }
        }
    }

    #[test]
    fn all_subsystems_share_pivot_configs() {
        let p = MultiPartition::finest(5, 0).unwrap();
        let dims = [6, 3, 3, 3, 3];
        let defaults = [3, 1, 1, 1, 1];
        let pivots: Vec<HashSet<usize>> = (0..4)
            .map(|s| {
                p.plan_subsystem(&dims, &defaults, s, 0.5, 1.0, &mut rng())
                    .unwrap()
                    .iter()
                    .map(|c| c[0])
                    .collect()
            })
            .collect();
        for w in pivots.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn extract_round_trip() {
        let p = MultiPartition::finest(4, 0).unwrap();
        let dims = [3, 2, 2, 2];
        let defaults = vec![1, 1, 1, 1];
        let plan = p
            .plan_subsystem(&dims, &defaults, 1, 1.0, 1.0, &mut rng())
            .unwrap();
        let entries: Vec<(Vec<usize>, f64)> = plan
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i as f64 + 1.0))
            .collect();
        let full = SparseTensor::from_entries(&dims, &entries).unwrap();
        let sub = p.extract_sub_tensor(&full, &defaults, 1).unwrap();
        assert_eq!(sub.dims(), &[3, 2]);
        assert_eq!(sub.nnz(), plan.len());
    }

    #[test]
    fn perm_join_to_natural_inverts_join_order() {
        let p = MultiPartition::new(vec![2], vec![vec![0], vec![3], vec![1]], 4).unwrap();
        let join = p.join_modes();
        assert_eq!(join, vec![2, 0, 3, 1]);
        let perm = p.perm_join_to_natural();
        // perm[full_mode] = position in join order.
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn coarse_partition_matches_pf_layout() {
        // Two groups of two = the paper's layout.
        let p = MultiPartition::new(vec![4], vec![vec![0, 1], vec![2, 3]], 5).unwrap();
        assert_eq!(p.num_subsystems(), 2);
        assert_eq!(p.sub_modes(0), vec![4, 0, 1]);
        assert_eq!(p.sub_modes(1), vec![4, 2, 3]);
    }
}
