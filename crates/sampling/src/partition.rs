//! PF-partitioning of a parameter space (Section V-B of the paper).
//!
//! A [`PfPartition`] splits the `N` modes of the full ensemble tensor into
//!
//! * `k` **pivot** modes shared by both sub-systems,
//! * `(N − k)/2` modes **free** in sub-system 1 (fixed in 2), and
//! * `(N − k)/2` modes **free** in sub-system 2 (fixed in 1).
//!
//! Fixed modes are pinned to *fixing constants* — the default (middle)
//! index of the mode. Sub-tensors use the mode order
//! `[pivot…, free…]`, and the join tensor produced by JE-stitching uses
//! `[pivot…, free₁…, free₂…]`.

use crate::error::SamplingError;
use crate::Result;
use m2td_tensor::{Shape, SparseTensor};
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// Which of the two PF sub-systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubSystem {
    /// Sub-system `S₁` (free modes = `free1`).
    First,
    /// Sub-system `S₂` (free modes = `free2`).
    Second,
}

/// A Pivoted/Fixed partition of the full tensor's modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfPartition {
    pivot: Vec<usize>,
    free1: Vec<usize>,
    free2: Vec<usize>,
    n_modes: usize,
}

impl PfPartition {
    /// Creates a partition after validating that `pivot ∪ free1 ∪ free2`
    /// is a disjoint cover of `0..n_modes` and `|free1| == |free2|`.
    pub fn new(
        pivot: Vec<usize>,
        free1: Vec<usize>,
        free2: Vec<usize>,
        n_modes: usize,
    ) -> Result<Self> {
        if free1.len() != free2.len() {
            return Err(SamplingError::InvalidPartition {
                reason: format!(
                    "free sets must have equal size, got {} and {}",
                    free1.len(),
                    free2.len()
                ),
            });
        }
        if pivot.is_empty() {
            return Err(SamplingError::InvalidPartition {
                reason: "at least one pivot mode is required".to_string(),
            });
        }
        let mut seen = HashSet::new();
        for &m in pivot.iter().chain(free1.iter()).chain(free2.iter()) {
            if m >= n_modes {
                return Err(SamplingError::InvalidPartition {
                    reason: format!("mode {m} out of range for {n_modes} modes"),
                });
            }
            if !seen.insert(m) {
                return Err(SamplingError::InvalidPartition {
                    reason: format!("mode {m} appears twice"),
                });
            }
        }
        if seen.len() != n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: format!("partition covers {} of {} modes", seen.len(), n_modes),
            });
        }
        Ok(Self {
            pivot,
            free1,
            free2,
            n_modes,
        })
    }

    /// The canonical single-pivot partition: `pivot_mode` is shared and the
    /// remaining modes are split in half in ascending order (first half →
    /// sub-system 1). Requires `n_modes − 1` to be even.
    ///
    /// ```
    /// use m2td_sampling::{PfPartition, SubSystem};
    ///
    /// // The paper's 5-mode layout with the time mode (4) as pivot.
    /// let p = PfPartition::balanced(5, 4).unwrap();
    /// assert_eq!(p.free_modes(SubSystem::First), &[0, 1]);
    /// assert_eq!(p.free_modes(SubSystem::Second), &[2, 3]);
    /// assert_eq!(p.join_modes(), vec![4, 0, 1, 2, 3]);
    /// ```
    pub fn balanced(n_modes: usize, pivot_mode: usize) -> Result<Self> {
        if pivot_mode >= n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: format!("pivot mode {pivot_mode} out of range"),
            });
        }
        let rest: Vec<usize> = (0..n_modes).filter(|&m| m != pivot_mode).collect();
        if !rest.len().is_multiple_of(2) {
            return Err(SamplingError::InvalidPartition {
                reason: format!(
                    "cannot split {} non-pivot modes into equal halves",
                    rest.len()
                ),
            });
        }
        let half = rest.len() / 2;
        Self::new(
            vec![pivot_mode],
            rest[..half].to_vec(),
            rest[half..].to_vec(),
            n_modes,
        )
    }

    /// The pivot modes (full-tensor ids).
    pub fn pivot_modes(&self) -> &[usize] {
        &self.pivot
    }

    /// Number of pivot modes `k`.
    pub fn k(&self) -> usize {
        self.pivot.len()
    }

    /// Free modes of a sub-system (full-tensor ids).
    pub fn free_modes(&self, which: SubSystem) -> &[usize] {
        match which {
            SubSystem::First => &self.free1,
            SubSystem::Second => &self.free2,
        }
    }

    /// Modes *fixed* in a sub-system (i.e. the other one's free modes).
    pub fn fixed_modes(&self, which: SubSystem) -> &[usize] {
        match which {
            SubSystem::First => &self.free2,
            SubSystem::Second => &self.free1,
        }
    }

    /// Full-tensor mode ids of a sub-tensor, in sub-tensor order
    /// `[pivot…, free…]`.
    pub fn sub_modes(&self, which: SubSystem) -> Vec<usize> {
        let mut v = self.pivot.clone();
        v.extend_from_slice(self.free_modes(which));
        v
    }

    /// Full-tensor mode ids of the join tensor, in join order
    /// `[pivot…, free₁…, free₂…]`.
    pub fn join_modes(&self) -> Vec<usize> {
        let mut v = self.pivot.clone();
        v.extend_from_slice(&self.free1);
        v.extend_from_slice(&self.free2);
        v
    }

    /// The permutation to pass to `DenseTensor::permute_modes` on a tensor
    /// in **natural** mode order to obtain **join** order.
    pub fn perm_natural_to_join(&self) -> Vec<usize> {
        self.join_modes()
    }

    /// The permutation to pass to `DenseTensor::permute_modes` on a tensor
    /// in **join** mode order to obtain **natural** order.
    pub fn perm_join_to_natural(&self) -> Vec<usize> {
        let join = self.join_modes();
        let mut perm = vec![0usize; self.n_modes];
        for (pos, &full_mode) in join.iter().enumerate() {
            perm[full_mode] = pos;
        }
        perm
    }

    /// Sub-tensor mode extents `[pivot dims…, free dims…]`.
    pub fn sub_dims(&self, full_dims: &[usize], which: SubSystem) -> Vec<usize> {
        self.sub_modes(which)
            .iter()
            .map(|&m| full_dims[m])
            .collect()
    }

    /// The `(P, E)` cell counts for given pivot/free density fractions:
    /// `P = ⌈p_frac · Π pivot dims⌉`, `E = ⌈e_frac · Π free dims⌉`.
    pub fn cell_counts(
        &self,
        full_dims: &[usize],
        which: SubSystem,
        p_frac: f64,
        e_frac: f64,
    ) -> Result<(usize, usize)> {
        for &f in &[p_frac, e_frac] {
            if !(f > 0.0 && f <= 1.0) {
                return Err(SamplingError::InvalidFraction { value: f });
            }
        }
        let total_p: usize = self.pivot.iter().map(|&m| full_dims[m]).product();
        let total_e: usize = self
            .free_modes(which)
            .iter()
            .map(|&m| full_dims[m])
            .product();
        if total_p == 0 || total_e == 0 {
            return Err(SamplingError::EmptySpace);
        }
        let p = ((p_frac * total_p as f64).ceil() as usize).clamp(1, total_p);
        let e = ((e_frac * total_e as f64).ceil() as usize).clamp(1, total_e);
        Ok((p, e))
    }

    /// Builds the sampling plan for one sub-system: `P` pivot
    /// configurations (evenly spaced over the pivot lattice — both
    /// sub-systems select the *same* pivot configurations, which is what
    /// makes stitching possible) crossed with `E` free configurations
    /// (sampled uniformly at random, the paper's worst-case choice), with
    /// fixed modes pinned to `defaults`.
    pub fn plan_subsystem(
        &self,
        full_dims: &[usize],
        defaults: &[usize],
        which: SubSystem,
        p_frac: f64,
        e_frac: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        if full_dims.len() != self.n_modes || defaults.len() != self.n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: format!(
                    "dims/defaults length {}/{} does not match {} modes",
                    full_dims.len(),
                    defaults.len(),
                    self.n_modes
                ),
            });
        }
        let (p, e) = self.cell_counts(full_dims, which, p_frac, e_frac)?;

        let pivot_dims: Vec<usize> = self.pivot.iter().map(|&m| full_dims[m]).collect();
        let pivot_shape = Shape::new(&pivot_dims);
        let total_p = pivot_shape.num_elements();
        let pivot_configs: Vec<Vec<usize>> = evenly_spaced(total_p, p)
            .into_iter()
            .map(|l| pivot_shape.multi_index(l))
            .collect();

        let free_modes = self.free_modes(which);
        let free_dims: Vec<usize> = free_modes.iter().map(|&m| full_dims[m]).collect();
        let free_shape = Shape::new(&free_dims);
        let total_e = free_shape.num_elements();
        let free_configs: Vec<Vec<usize>> = if e == total_e {
            (0..total_e).map(|l| free_shape.multi_index(l)).collect()
        } else {
            let mut all: Vec<usize> = (0..total_e).collect();
            all.shuffle(rng);
            all.truncate(e);
            all.sort_unstable();
            all.into_iter().map(|l| free_shape.multi_index(l)).collect()
        };

        let mut plan = Vec::with_capacity(p * e);
        for pc in &pivot_configs {
            for fc in &free_configs {
                let mut cell = defaults.to_vec();
                for (&m, &v) in self.pivot.iter().zip(pc.iter()) {
                    cell[m] = v;
                }
                for (&m, &v) in free_modes.iter().zip(fc.iter()) {
                    cell[m] = v;
                }
                plan.push(cell);
            }
        }
        Ok(plan)
    }

    /// Projects a full-tensor sparse ensemble onto a sub-tensor with mode
    /// order `[pivot…, free…]`, keeping only entries whose fixed modes sit
    /// at the default indices.
    pub fn extract_sub_tensor(
        &self,
        full: &SparseTensor,
        defaults: &[usize],
        which: SubSystem,
    ) -> Result<SparseTensor> {
        if full.order() != self.n_modes || defaults.len() != self.n_modes {
            return Err(SamplingError::InvalidPartition {
                reason: format!(
                    "tensor order {} / defaults {} do not match {} modes",
                    full.order(),
                    defaults.len(),
                    self.n_modes
                ),
            });
        }
        let sub_modes = self.sub_modes(which);
        let fixed = self.fixed_modes(which);
        let sub_dims = self.sub_dims(full.dims(), which);
        let mut entries: Vec<(Vec<usize>, f64)> = Vec::new();
        for (idx, v) in full.iter() {
            if fixed.iter().any(|&m| idx[m] != defaults[m]) {
                continue;
            }
            let sub_idx: Vec<usize> = sub_modes.iter().map(|&m| idx[m]).collect();
            entries.push((sub_idx, v));
        }
        SparseTensor::from_entries(&sub_dims, &entries).map_err(|e| {
            SamplingError::InvalidPartition {
                reason: format!("sub-tensor construction failed: {e}"),
            }
        })
    }
}

/// `count` evenly spaced values from `0..total`.
fn evenly_spaced(total: usize, count: usize) -> Vec<usize> {
    if count == 0 || total == 0 {
        return Vec::new();
    }
    if count >= total {
        return (0..total).collect();
    }
    if count == 1 {
        return vec![total / 2];
    }
    (0..count)
        .map(|i| (i * (total - 1)) / (count - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    // 5-mode layout mirroring the paper: [phi1, m1, phi2, m2, t],
    // pivot = time (mode 4).
    fn paper_partition() -> PfPartition {
        PfPartition::new(vec![4], vec![0, 1], vec![2, 3], 5).unwrap()
    }

    #[test]
    fn validation_catches_structural_errors() {
        // Unequal free halves.
        assert!(PfPartition::new(vec![0], vec![1], vec![2, 3], 4).is_err());
        // Missing pivot.
        assert!(PfPartition::new(vec![], vec![0], vec![1], 2).is_err());
        // Duplicate mode.
        assert!(PfPartition::new(vec![0], vec![0], vec![1], 2).is_err());
        // Not covering.
        assert!(PfPartition::new(vec![0], vec![1], vec![2], 5).is_err());
        // Out of range.
        assert!(PfPartition::new(vec![9], vec![0], vec![1], 3).is_err());
    }

    #[test]
    fn balanced_partition_matches_paper_layout() {
        let p = PfPartition::balanced(5, 4).unwrap();
        assert_eq!(p.pivot_modes(), &[4]);
        assert_eq!(p.free_modes(SubSystem::First), &[0, 1]);
        assert_eq!(p.free_modes(SubSystem::Second), &[2, 3]);
        assert_eq!(p.fixed_modes(SubSystem::First), &[2, 3]);
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn balanced_rejects_odd_rest() {
        assert!(PfPartition::balanced(4, 0).is_err());
        assert!(PfPartition::balanced(5, 9).is_err());
    }

    #[test]
    fn sub_modes_and_dims() {
        let p = paper_partition();
        let dims = [6, 7, 8, 9, 5];
        assert_eq!(p.sub_modes(SubSystem::First), vec![4, 0, 1]);
        assert_eq!(p.sub_dims(&dims, SubSystem::First), vec![5, 6, 7]);
        assert_eq!(p.sub_modes(SubSystem::Second), vec![4, 2, 3]);
        assert_eq!(p.sub_dims(&dims, SubSystem::Second), vec![5, 8, 9]);
        assert_eq!(p.join_modes(), vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn permutations_are_inverse() {
        let p = paper_partition();
        let to_join = p.perm_natural_to_join();
        let to_nat = p.perm_join_to_natural();
        // Applying to_join then to_nat must be the identity.
        let mut composed = vec![0usize; 5];
        for i in 0..5 {
            composed[i] = to_join[to_nat[i]];
        }
        assert_eq!(composed, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_density_plan_covers_subspace() {
        let p = paper_partition();
        let dims = [3, 3, 3, 3, 4];
        let defaults = [1, 1, 1, 1, 2];
        let plan = p
            .plan_subsystem(&dims, &defaults, SubSystem::First, 1.0, 1.0, &mut rng())
            .unwrap();
        // P = 4 (time), E = 9 (phi1 x m1) => 36 cells.
        assert_eq!(plan.len(), 36);
        for cell in &plan {
            assert_eq!(cell[2], 1, "fixed phi2 must sit at default");
            assert_eq!(cell[3], 1, "fixed m2 must sit at default");
        }
    }

    #[test]
    fn reduced_densities_scale_cell_counts() {
        let p = paper_partition();
        let dims = [4, 4, 4, 4, 8];
        let (p100, e100) = p.cell_counts(&dims, SubSystem::First, 1.0, 1.0).unwrap();
        assert_eq!((p100, e100), (8, 16));
        let (p50, e25) = p.cell_counts(&dims, SubSystem::First, 0.5, 0.25).unwrap();
        assert_eq!(p50, 4);
        assert_eq!(e25, 4);
        assert!(p.cell_counts(&dims, SubSystem::First, 0.0, 1.0).is_err());
        assert!(p.cell_counts(&dims, SubSystem::First, 1.0, 1.5).is_err());
    }

    #[test]
    fn both_subsystems_share_pivot_configs() {
        let p = paper_partition();
        let dims = [3, 3, 3, 3, 6];
        let defaults = [1, 1, 1, 1, 3];
        let plan1 = p
            .plan_subsystem(&dims, &defaults, SubSystem::First, 0.5, 1.0, &mut rng())
            .unwrap();
        let plan2 = p
            .plan_subsystem(&dims, &defaults, SubSystem::Second, 0.5, 1.0, &mut rng())
            .unwrap();
        let pivots1: HashSet<usize> = plan1.iter().map(|c| c[4]).collect();
        let pivots2: HashSet<usize> = plan2.iter().map(|c| c[4]).collect();
        assert_eq!(pivots1, pivots2, "pivot configurations must coincide");
        assert_eq!(pivots1.len(), 3); // 50% of 6
    }

    #[test]
    fn extract_sub_tensor_reorders_and_filters() {
        let p = paper_partition();
        let dims = [3, 3, 3, 3, 4];
        let defaults = vec![1, 1, 1, 1, 2];
        let full = SparseTensor::from_entries(
            &dims,
            &[
                (vec![0, 2, 1, 1, 3], 5.0), // S1-compatible (modes 2,3 at default)
                (vec![0, 2, 0, 1, 3], 7.0), // not (mode 2 != 1)
            ],
        )
        .unwrap();
        let sub = p
            .extract_sub_tensor(&full, &defaults, SubSystem::First)
            .unwrap();
        assert_eq!(sub.dims(), &[4, 3, 3]);
        assert_eq!(sub.nnz(), 1);
        // Sub order [t, phi1, m1] = [3, 0, 2].
        assert_eq!(sub.get(&[3, 0, 2]), Some(5.0));
    }

    #[test]
    fn plan_and_extract_round_trip() {
        let p = paper_partition();
        let dims = [3, 3, 3, 3, 4];
        let defaults = vec![1, 1, 1, 1, 2];
        let plan = p
            .plan_subsystem(&dims, &defaults, SubSystem::Second, 1.0, 0.5, &mut rng())
            .unwrap();
        // Build a fake full tensor from the plan.
        let entries: Vec<(Vec<usize>, f64)> = plan
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i as f64 + 1.0))
            .collect();
        let full = SparseTensor::from_entries(&dims, &entries).unwrap();
        let sub = p
            .extract_sub_tensor(&full, &defaults, SubSystem::Second)
            .unwrap();
        assert_eq!(sub.nnz(), plan.len());
    }

    #[test]
    fn evenly_spaced_properties() {
        assert_eq!(evenly_spaced(10, 10), (0..10).collect::<Vec<_>>());
        assert_eq!(evenly_spaced(10, 1), vec![5]);
        let s = evenly_spaced(100, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0);
        assert_eq!(s[4], 99);
        assert!(evenly_spaced(0, 3).is_empty());
    }

    #[test]
    fn multi_pivot_partition_works() {
        // k = 2 pivots (extension beyond the paper's k = 1 experiments).
        let p = PfPartition::new(vec![0, 1], vec![2], vec![3], 4).unwrap();
        let dims = [2, 3, 4, 5];
        let (pp, ee) = p.cell_counts(&dims, SubSystem::First, 1.0, 1.0).unwrap();
        assert_eq!((pp, ee), (6, 4));
        assert_eq!(p.join_modes(), vec![0, 1, 2, 3]);
    }
}
