//! Conventional ensemble sampling schemes (Section IV of the paper).

use crate::error::SamplingError;
use crate::Result;
use m2td_tensor::Shape;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// A strategy for choosing which cells of the full ensemble tensor to
/// simulate, given a cell budget `B`.
pub trait SamplingScheme {
    /// Scheme identifier used in experiment reports.
    fn name(&self) -> &'static str;

    /// Selects `budget` distinct cells from a tensor with mode extents
    /// `dims`. The returned plan contains full multi-indices.
    fn plan(
        &self,
        dims: &[usize],
        budget: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>>;
}

fn check_space(dims: &[usize], budget: usize) -> Result<usize> {
    let total = Shape::new(dims).num_elements();
    if total == 0 {
        return Err(SamplingError::EmptySpace);
    }
    if budget > total {
        return Err(SamplingError::BudgetTooLarge {
            requested: budget,
            available: total,
        });
    }
    Ok(total)
}

/// Uniform random sampling of the parameter space — the paper's worst
/// conventional baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSampling;

impl SamplingScheme for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn plan(
        &self,
        dims: &[usize],
        budget: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        let total = check_space(dims, budget)?;
        let shape = Shape::new(dims);
        // Rejection sampling of distinct linear indices; if the budget is a
        // large fraction of the space, fall back to a shuffle.
        if budget * 4 >= total {
            let mut all: Vec<usize> = (0..total).collect();
            all.shuffle(rng);
            all.truncate(budget);
            return Ok(all.into_iter().map(|l| shape.multi_index(l)).collect());
        }
        let mut chosen = HashSet::with_capacity(budget);
        while chosen.len() < budget {
            chosen.insert(rng.gen_range(0..total));
        }
        let mut sorted: Vec<usize> = chosen.into_iter().collect();
        sorted.sort_unstable();
        Ok(sorted.into_iter().map(|l| shape.multi_index(l)).collect())
    }
}

/// Grid sampling: an evenly spaced sub-lattice in every mode, the best
/// conventional baseline in the paper's tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridSampling;

impl GridSampling {
    /// Chooses per-mode sub-resolutions whose product is as large as
    /// possible without exceeding the budget.
    fn sub_resolutions(dims: &[usize], budget: usize) -> Vec<usize> {
        let n = dims.len();
        let mut k: Vec<usize> = vec![1; n];
        // Grow the lattice in a balanced fashion: always bump the axis with
        // the smallest current sub-resolution that still fits the budget,
        // so the final lattice is as cubical (and as large) as possible.
        loop {
            let product: usize = k.iter().product();
            let mut best: Option<usize> = None;
            for m in 0..n {
                if k[m] >= dims[m] {
                    continue;
                }
                let new_product = product / k[m] * (k[m] + 1);
                if new_product <= budget && best.is_none_or(|b| k[m] < k[b]) {
                    best = Some(m);
                }
            }
            match best {
                Some(m) => k[m] += 1,
                None => break,
            }
        }
        k
    }

    /// `count` evenly spaced indices over `0..dim`.
    fn spaced_indices(dim: usize, count: usize) -> Vec<usize> {
        if count == 0 || dim == 0 {
            return Vec::new();
        }
        if count == 1 {
            return vec![dim / 2];
        }
        (0..count).map(|i| (i * (dim - 1)) / (count - 1)).collect()
    }
}

impl SamplingScheme for GridSampling {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn plan(
        &self,
        dims: &[usize],
        budget: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        check_space(dims, budget)?;
        if budget == 0 {
            return Ok(Vec::new());
        }
        let subres = Self::sub_resolutions(dims, budget);
        let axes: Vec<Vec<usize>> = dims
            .iter()
            .zip(subres.iter())
            .map(|(&d, &k)| Self::spaced_indices(d, k))
            .collect();
        let lattice = Shape::new(&subres);
        let mut plan = Vec::with_capacity(lattice.num_elements());
        for lat_idx in lattice.iter_indices() {
            let cell: Vec<usize> = lat_idx
                .iter()
                .zip(axes.iter())
                .map(|(&li, ax)| ax[li])
                .collect();
            plan.push(cell);
        }
        Ok(plan)
    }
}

/// Slice sampling: full two-dimensional slices through the space, all other
/// modes fixed at their middle value; axis pairs are visited round-robin
/// until the budget is exhausted.
#[derive(Debug, Clone, Copy, Default)]
pub struct SliceSampling;

impl SamplingScheme for SliceSampling {
    fn name(&self) -> &'static str {
        "slice"
    }

    fn plan(
        &self,
        dims: &[usize],
        budget: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vec<usize>>> {
        check_space(dims, budget)?;
        let n = dims.len();
        if n < 2 {
            // Degenerate: fall back to a prefix of the single axis.
            return Ok((0..budget).map(|i| vec![i]).collect());
        }
        let defaults: Vec<usize> = dims.iter().map(|&d| d / 2).collect();
        let mut plan = Vec::with_capacity(budget);
        let mut seen = HashSet::with_capacity(budget);
        'outer: loop {
            let before = plan.len();
            for a in 0..n {
                for b in (a + 1)..n {
                    for ia in 0..dims[a] {
                        for ib in 0..dims[b] {
                            if plan.len() >= budget {
                                break 'outer;
                            }
                            let mut cell = defaults.clone();
                            cell[a] = ia;
                            cell[b] = ib;
                            if seen.insert(cell.clone()) {
                                plan.push(cell);
                            }
                        }
                    }
                }
            }
            if plan.len() == before {
                // All slices exhausted below budget (tiny spaces); the
                // check_space guard means this can only happen when slices
                // cannot reach every cell — stop with what we have.
                break;
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn assert_valid_plan(plan: &[Vec<usize>], dims: &[usize], budget: usize) {
        assert!(plan.len() <= budget);
        let mut seen = HashSet::new();
        for cell in plan {
            assert_eq!(cell.len(), dims.len());
            for (i, d) in cell.iter().zip(dims.iter()) {
                assert!(i < d, "cell {cell:?} out of bounds for {dims:?}");
            }
            assert!(seen.insert(cell.clone()), "duplicate cell {cell:?}");
        }
    }

    #[test]
    fn random_plan_respects_budget_exactly() {
        let dims = [5, 6, 4];
        let plan = RandomSampling.plan(&dims, 30, &mut rng()).unwrap();
        assert_eq!(plan.len(), 30);
        assert_valid_plan(&plan, &dims, 30);
    }

    #[test]
    fn random_plan_full_space() {
        let dims = [3, 3];
        let plan = RandomSampling.plan(&dims, 9, &mut rng()).unwrap();
        assert_eq!(plan.len(), 9);
        assert_valid_plan(&plan, &dims, 9);
    }

    #[test]
    fn random_rejects_overbudget() {
        assert!(matches!(
            RandomSampling.plan(&[2, 2], 5, &mut rng()),
            Err(SamplingError::BudgetTooLarge { .. })
        ));
    }

    #[test]
    fn grid_plan_is_a_lattice() {
        let dims = [10, 10, 10];
        let plan = GridSampling.plan(&dims, 27, &mut rng()).unwrap();
        assert_eq!(plan.len(), 27); // 3x3x3 lattice fits exactly
        assert_valid_plan(&plan, &dims, 27);
        // Each axis uses exactly 3 distinct values.
        for m in 0..3 {
            let distinct: HashSet<usize> = plan.iter().map(|c| c[m]).collect();
            assert_eq!(distinct.len(), 3);
        }
    }

    #[test]
    fn grid_plan_uneven_budget_stays_under() {
        let dims = [10, 10];
        let plan = GridSampling.plan(&dims, 50, &mut rng()).unwrap();
        assert!(plan.len() <= 50);
        assert!(plan.len() >= 40, "grid used only {} of 50", plan.len());
        assert_valid_plan(&plan, &dims, 50);
    }

    #[test]
    fn grid_includes_extremes() {
        let dims = [9, 9];
        let plan = GridSampling.plan(&dims, 9, &mut rng()).unwrap();
        let xs: HashSet<usize> = plan.iter().map(|c| c[0]).collect();
        assert!(xs.contains(&0) && xs.contains(&8));
    }

    #[test]
    fn spaced_indices_edge_cases() {
        assert_eq!(GridSampling::spaced_indices(7, 1), vec![3]);
        assert_eq!(GridSampling::spaced_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(GridSampling::spaced_indices(5, 0).is_empty());
    }

    #[test]
    fn slice_plan_fixes_other_modes() {
        let dims = [4, 4, 4, 4];
        let budget = 16; // exactly one slice
        let plan = SliceSampling.plan(&dims, budget, &mut rng()).unwrap();
        assert_eq!(plan.len(), 16);
        assert_valid_plan(&plan, &dims, budget);
        // First slice varies modes 0 and 1; modes 2, 3 stay at default (2).
        for cell in &plan {
            assert_eq!(cell[2], 2);
            assert_eq!(cell[3], 2);
        }
    }

    #[test]
    fn slice_plan_cycles_pairs() {
        let dims = [3, 3, 3];
        let plan = SliceSampling.plan(&dims, 20, &mut rng()).unwrap();
        assert_valid_plan(&plan, &dims, 20);
        assert!(plan.len() >= 19, "slices overlap only at crossings");
    }

    #[test]
    fn all_schemes_reject_empty_space() {
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
        ] {
            assert!(matches!(
                scheme.plan(&[0, 3], 1, &mut rng()),
                Err(SamplingError::EmptySpace)
            ));
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = RandomSampling.plan(&[6, 6, 6], 20, &mut rng()).unwrap();
        let b = RandomSampling.plan(&[6, 6, 6], 20, &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(RandomSampling.name(), "random");
        assert_eq!(GridSampling.name(), "grid");
        assert_eq!(SliceSampling.name(), "slice");
    }
}
