//! The resident serve engine: named ensembles, staleness-gated refresh,
//! the lock-light query path, and the durability plane (WAL + snapshots,
//! crash recovery, admission control, degraded read-only mode).

use crate::lru::LruCache;
use crate::store::{
    bits_from_json, bits_to_json, dense_from_json, dense_to_json, matrix_from_json, matrix_to_json,
    SnapshotStore,
};
use crate::wal::{Wal, WalOp};
use crate::Result;
use m2td_fault::{CrashOp, FaultPlan};
use m2td_guard::GuardError;
use m2td_json::Json;
use m2td_linalg::Matrix;
use m2td_tensor::{
    sparse_core_with, ttm_dense_ws, CellEvaluator, CoreOrdering, DenseTensor, IncrementalEnsemble,
    Shape, SparseTensor, TensorError, TuckerDecomp, Workspace,
};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Engine-level configuration shared by every registered ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of absorbed cells after which a refresh is triggered
    /// automatically. `0` disables auto-refresh (explicit
    /// [`ServeEngine::refresh`] only).
    pub staleness_threshold: usize,
    /// Maximum number of cached cell predictions per published model.
    /// The cache evicts least-recently-used entries once full (see
    /// `serve.cache_evictions`), so a shifting query working set keeps
    /// its hot cells resident; a refresh publishes a fresh empty cache.
    /// `0` disables caching.
    pub cache_capacity: usize,
    /// Admission control: maximum absorbed-but-not-yet-refreshed cells
    /// per ensemble. An absorb that would push `pending` past this bound
    /// is refused with [`ServeError::Overloaded`] — explicit backpressure
    /// instead of an unbounded staleness backlog. `0` disables the bound.
    pub absorb_queue_cap: usize,
    /// Per-query time budget. A query (or a cell within a batch query)
    /// that exceeds it is shed with [`ServeError::DeadlineExceeded`],
    /// counted in `serve.shed_queries`. `None` disables shedding.
    pub query_deadline: Option<Duration>,
}

impl ServeConfig {
    /// Defaults: refresh every 64 absorbs, 4096 cached cells per model,
    /// no absorb bound, no query deadline.
    pub const DEFAULT: ServeConfig = ServeConfig {
        staleness_threshold: 64,
        cache_capacity: 4096,
        absorb_queue_cap: 0,
        query_deadline: None,
    };

    /// Replaces the staleness threshold.
    pub fn with_staleness(mut self, threshold: usize) -> Self {
        self.staleness_threshold = threshold;
        self
    }

    /// Replaces the cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Bounds the per-ensemble absorb backlog (`0` = unbounded).
    pub fn with_absorb_queue_cap(mut self, cap: usize) -> Self {
        self.absorb_queue_cap = cap;
        self
    }

    /// Sets the per-query deadline budget.
    pub fn with_query_deadline(mut self, deadline: Duration) -> Self {
        self.query_deadline = Some(deadline);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Errors surfaced by the serve engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No ensemble is registered under the requested name.
    UnknownEnsemble {
        /// The requested name.
        name: String,
    },
    /// An ensemble with this name already exists.
    AlreadyRegistered {
        /// The duplicate name.
        name: String,
    },
    /// The ensemble has never been refreshed, so there is no model to
    /// query yet.
    NoModel {
        /// The ensemble name.
        name: String,
    },
    /// An underlying tensor kernel failed (this also carries guard policy
    /// rejections, which arrive as [`TensorError::Guard`]).
    Tensor(TensorError),
    /// Admission control refused the absorb: the ensemble's backlog of
    /// absorbed-but-not-refreshed cells is at the configured bound. The
    /// caller should retry after a refresh catches up.
    Overloaded {
        /// The ensemble name.
        name: String,
        /// Current backlog.
        pending: usize,
        /// The configured bound.
        cap: usize,
    },
    /// The query exceeded its configured deadline budget and was shed.
    DeadlineExceeded {
        /// The ensemble name.
        name: String,
    },
    /// The engine recovered into read-only degraded mode (unrecoverable
    /// store corruption: operations were durably acknowledged but can no
    /// longer be replayed). Queries keep serving the recovered state;
    /// writes are refused.
    Degraded,
    /// The seeded crash injector fired at this kill point. The engine's
    /// in-memory state may be ahead of or behind its durable state —
    /// discard it and [`ServeEngine::recover`].
    CrashInjected {
        /// The kill point.
        op: CrashOp,
        /// The operation's sequence number within that kill point's
        /// stream.
        sequence: u64,
    },
    /// The durability layer failed (I/O error on the WAL or snapshot
    /// store).
    Store {
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownEnsemble { name } => {
                write!(f, "no ensemble registered under '{name}'")
            }
            ServeError::AlreadyRegistered { name } => {
                write!(f, "ensemble '{name}' is already registered")
            }
            ServeError::NoModel { name } => write!(
                f,
                "ensemble '{name}' has no published model yet (refresh it first)"
            ),
            ServeError::Tensor(e) => write!(f, "tensor error: {e}"),
            ServeError::Overloaded { name, pending, cap } => write!(
                f,
                "ensemble '{name}' is overloaded: {pending} pending absorbs at cap {cap}"
            ),
            ServeError::DeadlineExceeded { name } => {
                write!(
                    f,
                    "query against '{name}' exceeded its deadline and was shed"
                )
            }
            ServeError::Degraded => write!(
                f,
                "engine is in read-only degraded mode (unrecoverable store corruption)"
            ),
            ServeError::CrashInjected { op, sequence } => {
                write!(f, "crash injected at kill point {op}#{sequence}")
            }
            ServeError::Store { message } => write!(f, "store error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

impl From<GuardError> for ServeError {
    fn from(e: GuardError) -> Self {
        ServeError::Tensor(TensorError::from(e))
    }
}

/// Configuration of the durability plane: where state lives on disk, how
/// often it is fsynced and snapshotted, and (for the chaos harness) which
/// seeded kill points are armed.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and the `snapshot.<seq>.json` files.
    pub dir: PathBuf,
    /// fsync the WAL every this many appends (`0` disables fsync; every
    /// append is still flushed to the OS and survives a process crash).
    pub wal_sync_every: usize,
    /// Write a snapshot every this many WAL appends (`0` = only explicit
    /// [`ServeEngine::snapshot`] calls).
    pub snapshot_every: usize,
    /// Snapshots kept by the retention sweep (min 1). The WAL is
    /// truncated only past the *oldest* retained snapshot, so any of
    /// them can anchor recovery.
    pub snapshot_keep: usize,
    /// Seeded crash plan; kill points fire per its `crash_rate` stream.
    pub crash_plan: Option<FaultPlan>,
    /// Pin one exact kill point `(op, sequence)` — the CLI's
    /// `--crash-at`.
    pub crash_point: Option<(CrashOp, u64)>,
}

impl DurabilityConfig {
    /// Durability under `dir` with the defaults: fsync every 8 appends,
    /// snapshot every 64, keep 3 snapshots, no crash injection.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            wal_sync_every: 8,
            snapshot_every: 64,
            snapshot_keep: 3,
            crash_plan: None,
            crash_point: None,
        }
    }

    /// Replaces the WAL fsync batch size.
    pub fn with_wal_sync_every(mut self, n: usize) -> Self {
        self.wal_sync_every = n;
        self
    }

    /// Replaces the auto-snapshot cadence.
    pub fn with_snapshot_every(mut self, n: usize) -> Self {
        self.snapshot_every = n;
        self
    }

    /// Replaces the snapshot retention count.
    pub fn with_snapshot_keep(mut self, n: usize) -> Self {
        self.snapshot_keep = n;
        self
    }

    /// Arms the seeded crash stream.
    pub fn with_crash_plan(mut self, plan: FaultPlan) -> Self {
        self.crash_plan = Some(plan);
        self
    }

    /// Pins one exact kill point.
    pub fn with_crash_point(mut self, op: CrashOp, sequence: u64) -> Self {
        self.crash_point = Some((op, sequence));
        self
    }
}

/// What [`ServeEngine::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Covered WAL sequence of the snapshot recovery anchored on
    /// (`None` = cold start from an empty or snapshot-less directory).
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// Snapshots quarantined while scanning for a valid anchor.
    pub quarantined_snapshots: usize,
    /// WAL lines dropped as a torn tail (normal after a crash
    /// mid-append).
    pub torn_wal_records: usize,
    /// Whether the engine entered read-only degraded mode: durable
    /// history exists that can no longer be replayed (mid-log WAL
    /// corruption, or every snapshot covering it quarantined).
    pub degraded: bool,
}

/// The per-engine durable state, serialized by one mutex: every mutating
/// operation locks it first (then the ensemble lock), so WAL order is
/// exactly apply order. Queries never touch it.
struct Durable {
    wal: Wal,
    store: SnapshotStore,
    snapshot_every: usize,
    /// Covered sequence of the most recent snapshot this process wrote
    /// (or recovered from).
    last_snapshot_seq: u64,
}

/// Seeded kill points. `Absorb`/`Refresh` draw from per-engine operation
/// counters; `WalAppend`/`SnapshotWrite` draw from the durable sequence
/// itself, so a kill point names a specific durable event.
struct CrashInjector {
    plan: FaultPlan,
    pinned: Option<(CrashOp, u64)>,
    absorbs: AtomicU64,
    refreshes: AtomicU64,
}

impl CrashInjector {
    fn fires(&self, op: CrashOp, sequence: u64) -> bool {
        if self.pinned == Some((op, sequence)) {
            m2td_obs::counter_add("fault.crashes_injected", 1);
            return true;
        }
        self.plan.crash_at(op, sequence)
    }
}

/// Outcome of one [`ServeEngine::absorb`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsorbReport {
    /// Stored cells after this absorb.
    pub nnz: usize,
    /// Absorbs since the last published model (reset to 0 when this
    /// absorb triggered a refresh).
    pub pending: usize,
    /// Whether this absorb crossed the staleness threshold and triggered
    /// an automatic refresh.
    pub refreshed: bool,
}

/// Outcome of one model refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshReport {
    /// Version of the newly published model (1 for the first refresh).
    pub version: u64,
    /// Stored cells the model was decomposed from.
    pub basis_cells: usize,
    /// Per-mode factor widths actually served. Narrower than the
    /// registered ranks when the guard's clamp policy truncated a
    /// degenerate spectrum.
    pub served_ranks: Vec<usize>,
}

impl RefreshReport {
    /// The served per-mode factor widths.
    pub fn ranks(&self) -> &[usize] {
        &self.served_ranks
    }
}

/// Point-in-time statistics for one registered ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStats {
    /// Ensemble name.
    pub name: String,
    /// Mode extents.
    pub dims: Vec<usize>,
    /// Registered target ranks.
    pub ranks: Vec<usize>,
    /// Stored cells.
    pub nnz: usize,
    /// Absorbs since the last refresh.
    pub pending: usize,
    /// Published model version (0 = never refreshed).
    pub model_version: u64,
}

/// An immutable published decomposition snapshot.
///
/// Queries evaluate against the snapshot that was current when they
/// fetched it; a concurrent refresh publishes a *new* snapshot and never
/// mutates one already handed out, so a query's result depends only on
/// the snapshot version it saw — never on thread interleaving.
#[derive(Debug)]
pub struct Model {
    evaluator: CellEvaluator,
    /// Output-space shape used to key the cell cache; `None` when the
    /// reconstruction space is too large to linearize (cache disabled —
    /// see [`Shape::checked_num_elements`]).
    cache_shape: Option<Shape>,
    cache: Mutex<LruCache>,
    version: u64,
    basis_cells: usize,
}

impl Model {
    fn new(decomp: TuckerDecomp, cache_capacity: usize, version: u64, basis_cells: usize) -> Self {
        let evaluator = CellEvaluator::new(decomp);
        let shape = Shape::new(evaluator.output_dims());
        let cache_shape =
            (cache_capacity > 0 && shape.checked_num_elements().is_some()).then_some(shape);
        Self {
            evaluator,
            cache_shape,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            version,
            basis_cells,
        }
    }

    /// The wrapped decomposition.
    pub fn decomp(&self) -> &TuckerDecomp {
        self.evaluator.decomp()
    }

    /// Refresh generation of this snapshot (1 = first refresh).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stored cells the decomposition was computed from.
    pub fn basis_cells(&self) -> usize {
        self.basis_cells
    }

    /// Predicts one cell of the reconstruction, consulting the bounded
    /// per-model LRU cache (least-recently-used entries are evicted once
    /// it fills — `serve.cache_evictions`). Cached and uncached paths
    /// return bitwise-identical values (the cache stores exactly what the
    /// evaluator computed, and a post-eviction re-miss recomputes the
    /// identical value), so caching never changes a prediction — only its
    /// latency.
    pub fn cell(&self, index: &[usize]) -> Result<f64> {
        let Some(shape) = &self.cache_shape else {
            m2td_obs::counter_add("serve.cache_misses", 1);
            return Ok(self.evaluator.cell(index)?);
        };
        // Mirror the evaluator's validation so the cached path reports the
        // same error variants as the uncached one.
        let dims = shape.dims();
        if index.len() != dims.len() {
            return Err(ServeError::Tensor(TensorError::WrongNumberOfRanks {
                supplied: index.len(),
                order: dims.len(),
            }));
        }
        if index.iter().zip(dims.iter()).any(|(&i, &d)| i >= d) {
            return Err(ServeError::Tensor(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: dims.to_vec(),
            }));
        }
        let key = shape.linear_index(index) as u64;
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
        {
            m2td_obs::counter_add("serve.cache_hits", 1);
            return Ok(hit);
        }
        m2td_obs::counter_add("serve.cache_misses", 1);
        let value = self.evaluator.cell(index)?;
        let evicted = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value);
        if evicted {
            m2td_obs::counter_add("serve.cache_evictions", 1);
        }
        Ok(value)
    }

    /// Predicts a whole mode-`mode` slice (`index` fixed in that mode) as
    /// a dense tensor with extent 1 in `mode`, via a batched TTM chain:
    /// the core is first contracted with the single factor row, then
    /// expanded along the remaining modes — the chain never materializes
    /// anything larger than the slice itself.
    pub fn slice(&self, mode: usize, index: usize, ws: &mut Workspace) -> Result<DenseTensor> {
        let decomp = self.decomp();
        let dims = self.evaluator.output_dims();
        if mode >= dims.len() {
            return Err(ServeError::Tensor(TensorError::InvalidMode {
                mode,
                order: dims.len(),
            }));
        }
        if index >= dims[mode] {
            let mut idx = vec![0; dims.len()];
            idx[mode] = index;
            return Err(ServeError::Tensor(TensorError::IndexOutOfBounds {
                index: idx,
                shape: dims.to_vec(),
            }));
        }
        let row = {
            let f = &decomp.factors[mode];
            Matrix::from_fn(1, f.cols(), |_, j| f.get(index, j))
        };
        let mut acc = ttm_dense_ws(&decomp.core, mode, &row, ws)?;
        for (n, f) in decomp.factors.iter().enumerate() {
            if n == mode {
                continue;
            }
            let next = ttm_dense_ws(&acc, n, f, ws)?;
            ws.recycle_tensor(acc);
            acc = next;
        }
        Ok(acc)
    }
}

/// Per-ensemble mutable state, guarded by one `RwLock`.
struct EnsembleState {
    inc: IncrementalEnsemble,
    ranks: Vec<usize>,
    pending: usize,
    version: u64,
    model: Option<Arc<Model>>,
    /// Buffer pool reused across this ensemble's refreshes (the TTM chain
    /// recovering the core cycles through the same intermediates).
    ws: Workspace,
}

/// A resident engine holding decomposed ensembles keyed by name.
///
/// All methods take `&self`; the engine is `Sync` and intended to be
/// shared across query threads (e.g. behind an `Arc`).
pub struct ServeEngine {
    config: ServeConfig,
    ensembles: RwLock<BTreeMap<String, Arc<RwLock<EnsembleState>>>>,
    /// Buffer pool for slice queries; separate from the per-ensemble pool
    /// so a slice query never contends with absorbs for the write lock.
    slice_ws: Mutex<Workspace>,
    /// The durability plane; `None` for a purely in-memory engine. Lock
    /// order for mutators: this mutex first, then the ensemble map/state
    /// locks — never the reverse.
    durability: Option<Mutex<Durable>>,
    /// Read-only degraded mode flag (see [`ServeError::Degraded`]).
    degraded: AtomicBool,
    crash: Option<CrashInjector>,
}

impl Default for ServeEngine {
    fn default() -> Self {
        Self::new(ServeConfig::default())
    }
}

impl ServeEngine {
    /// Creates an empty, purely in-memory engine (no durability).
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            ensembles: RwLock::new(BTreeMap::new()),
            slice_ws: Mutex::new(Workspace::new()),
            durability: None,
            degraded: AtomicBool::new(false),
            crash: None,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Whether the engine is serving in read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn ensure_writable(&self) -> Result<()> {
        if self.is_degraded() {
            return Err(ServeError::Degraded);
        }
        Ok(())
    }

    fn durable_guard(&self) -> Option<MutexGuard<'_, Durable>> {
        self.durability
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Counter-keyed kill points (absorb entry, refresh entry).
    fn crash_counted(&self, op: CrashOp) -> Result<()> {
        let Some(inj) = &self.crash else {
            return Ok(());
        };
        let counter = match op {
            CrashOp::Absorb => &inj.absorbs,
            CrashOp::Refresh => &inj.refreshes,
            _ => unreachable!("sequence-keyed op {op} routed to counter draw"),
        };
        let sequence = counter.fetch_add(1, Ordering::Relaxed);
        if inj.fires(op, sequence) {
            return Err(ServeError::CrashInjected { op, sequence });
        }
        Ok(())
    }

    /// Sequence-keyed kill points (post-WAL-append, mid-snapshot).
    fn crash_at_seq(&self, op: CrashOp, sequence: u64) -> Result<()> {
        let Some(inj) = &self.crash else {
            return Ok(());
        };
        if inj.fires(op, sequence) {
            return Err(ServeError::CrashInjected { op, sequence });
        }
        Ok(())
    }

    /// Registers an empty ensemble under `name` with the given mode
    /// extents and per-mode target ranks.
    pub fn register(&self, name: &str, dims: &[usize], ranks: &[usize]) -> Result<()> {
        if ranks.len() != dims.len() {
            return Err(ServeError::Tensor(TensorError::WrongNumberOfRanks {
                supplied: ranks.len(),
                order: dims.len(),
            }));
        }
        for (mode, (&r, &d)) in ranks.iter().zip(dims.iter()).enumerate() {
            if r == 0 || r > d {
                return Err(ServeError::Tensor(TensorError::RankTooLarge {
                    mode,
                    requested: r,
                    available: d,
                }));
            }
        }
        self.ensure_writable()?;
        let mut dur = self.durable_guard();
        {
            let mut map = self.ensembles.write().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(name) {
                return Err(ServeError::AlreadyRegistered {
                    name: name.to_string(),
                });
            }
            if let Some(d) = dur.as_deref_mut() {
                let seq = d.wal.append(WalOp::Register {
                    name: name.to_string(),
                    dims: dims.to_vec(),
                    ranks: ranks.to_vec(),
                })?;
                self.crash_at_seq(CrashOp::WalAppend, seq)?;
            }
            map.insert(
                name.to_string(),
                Arc::new(RwLock::new(EnsembleState {
                    inc: IncrementalEnsemble::new(dims),
                    ranks: ranks.to_vec(),
                    pending: 0,
                    version: 0,
                    model: None,
                    ws: Workspace::new(),
                })),
            );
            m2td_obs::gauge_set("serve.ensembles", map.len() as f64);
        }
        self.maybe_snapshot(dur)
    }

    /// Removes an ensemble. In-flight queries holding its model snapshot
    /// finish against that snapshot.
    pub fn deregister(&self, name: &str) -> Result<()> {
        self.ensure_writable()?;
        let mut dur = self.durable_guard();
        {
            let mut map = self.ensembles.write().unwrap_or_else(|e| e.into_inner());
            if !map.contains_key(name) {
                return Err(ServeError::UnknownEnsemble {
                    name: name.to_string(),
                });
            }
            if let Some(d) = dur.as_deref_mut() {
                let seq = d.wal.append(WalOp::Remove {
                    name: name.to_string(),
                })?;
                self.crash_at_seq(CrashOp::WalAppend, seq)?;
            }
            map.remove(name);
            m2td_obs::gauge_set("serve.ensembles", map.len() as f64);
        }
        self.maybe_snapshot(dur)
    }

    /// Names of all registered ensembles, sorted.
    pub fn names(&self) -> Vec<String> {
        self.ensembles
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    fn state(&self, name: &str) -> Result<Arc<RwLock<EnsembleState>>> {
        self.ensembles
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownEnsemble {
                name: name.to_string(),
            })
    }

    /// Absorbs one simulation result into the named ensemble, updating
    /// its running Grams in `O(column occupancy)`. With the guard layer
    /// installed, a non-finite value is rejected *before* it can poison
    /// the Grams (counted in `serve.rejected_cells`). Crossing the
    /// staleness threshold triggers an automatic refresh; if the guard
    /// rejects that refresh (e.g. the spectrum is still rank-deficient),
    /// the write still succeeds — the cell is durably absorbed, the
    /// previous model keeps serving, and the refresh is retried on the
    /// next absorb (counted in `serve.deferred_refreshes`). Only a
    /// manual [`ServeEngine::refresh`] surfaces the rejection.
    pub fn absorb(&self, name: &str, index: &[usize], value: f64) -> Result<AbsorbReport> {
        let _span = m2td_obs::span!("serve.absorb");
        m2td_guard::check_cells("serve.absorb", std::iter::once((index.to_vec(), value))).map_err(
            |e| {
                m2td_obs::counter_add("serve.rejected_cells", 1);
                ServeError::from(e)
            },
        )?;
        self.ensure_writable()?;
        let mut dur = self.durable_guard();
        self.crash_counted(CrashOp::Absorb)?;
        let state = self.state(name)?;
        let report = {
            let mut st = state.write().unwrap_or_else(|e| e.into_inner());
            // Admission control: refuse (before logging anything) rather
            // than let the unrefreshed backlog grow without bound.
            let cap = self.config.absorb_queue_cap;
            if cap > 0 && st.pending >= cap {
                m2td_obs::counter_add("serve.overloaded_absorbs", 1);
                return Err(ServeError::Overloaded {
                    name: name.to_string(),
                    pending: st.pending,
                    cap,
                });
            }
            // Validate-then-log: only operations that will apply cleanly
            // reach the WAL, so replay never has to guess whether a logged
            // absorb "really happened".
            st.inc.validate_new(index)?;
            if let Some(d) = dur.as_deref_mut() {
                let seq = d.wal.append(WalOp::Absorb {
                    name: name.to_string(),
                    index: index.to_vec(),
                    value_bits: value.to_bits(),
                })?;
                self.crash_at_seq(CrashOp::WalAppend, seq)?;
            }
            st.inc.add(index, value)?;
            st.pending += 1;
            m2td_obs::counter_add("serve.absorbed_cells", 1);
            let threshold = self.config.staleness_threshold;
            let mut refreshed = false;
            if threshold > 0 && st.pending >= threshold {
                self.crash_counted(CrashOp::Refresh)?;
                match self.refresh_locked(&mut st) {
                    Ok(_) => refreshed = true,
                    Err(ServeError::Tensor(TensorError::Guard(_))) => {
                        m2td_obs::counter_add("serve.deferred_refreshes", 1);
                    }
                    Err(e) => return Err(e),
                }
            }
            AbsorbReport {
                nnz: st.inc.nnz(),
                pending: st.pending,
                refreshed,
            }
        };
        self.maybe_snapshot(dur)?;
        Ok(report)
    }

    /// Recomputes factors from the running Grams and the core from the
    /// stored cells, publishing a fresh [`Model`] snapshot. A guard
    /// rejection (e.g. `Fail` policy on a rank-deficient spectrum) leaves
    /// the previously published model serving.
    pub fn refresh(&self, name: &str) -> Result<RefreshReport> {
        self.ensure_writable()?;
        let mut dur = self.durable_guard();
        self.crash_counted(CrashOp::Refresh)?;
        let state = self.state(name)?;
        let report = {
            let mut st = state.write().unwrap_or_else(|e| e.into_inner());
            // A manual refresh is logged (unlike automatic ones, which
            // replay re-derives from the absorb stream) because it resets
            // the staleness counter and thereby shifts every later
            // auto-refresh point.
            if let Some(d) = dur.as_deref_mut() {
                let seq = d.wal.append(WalOp::Refresh {
                    name: name.to_string(),
                })?;
                self.crash_at_seq(CrashOp::WalAppend, seq)?;
            }
            self.refresh_locked(&mut st)?
        };
        self.maybe_snapshot(dur)?;
        Ok(report)
    }

    fn refresh_locked(&self, st: &mut EnsembleState) -> Result<RefreshReport> {
        let _span = m2td_obs::span!("serve.refresh");
        // Factors come from the *running* Grams — no unfold/Gram
        // recomputation — through the guard layer: a degenerate spectrum
        // is clamped (narrower factors) or rejected per the installed
        // policy, and a rejection propagates before the served model is
        // touched.
        let order = st.inc.dims().len();
        let mut factors = Vec::with_capacity(order);
        for mode in 0..order {
            let gram = st.inc.gram(mode)?;
            let r = st.ranks[mode];
            factors.push(m2td_guard::gram_factor(
                "serve.refresh",
                Some(mode),
                gram,
                r,
            )?);
        }
        let sparse = st.inc.to_sparse();
        let core = sparse_core_with(&sparse, &factors, CoreOrdering::BestShrinkFirst, &mut st.ws)?;
        m2td_guard::check_dense("serve.core", core.dims(), core.as_slice())?;
        let decomp = TuckerDecomp::new(core, factors)?;
        let served_ranks: Vec<usize> = decomp.factors.iter().map(|f| f.cols()).collect();
        st.version += 1;
        let report = RefreshReport {
            version: st.version,
            basis_cells: sparse.nnz(),
            served_ranks,
        };
        st.model = Some(Arc::new(Model::new(
            decomp,
            self.config.cache_capacity,
            st.version,
            sparse.nnz(),
        )));
        st.pending = 0;
        m2td_obs::counter_add("serve.refreshes", 1);
        m2td_obs::gauge_set("serve.model_version", st.version as f64);
        Ok(report)
    }

    /// The currently published model snapshot for `name`.
    pub fn model(&self, name: &str) -> Result<Arc<Model>> {
        let state = self.state(name)?;
        let st = state.read().unwrap_or_else(|e| e.into_inner());
        st.model.clone().ok_or_else(|| ServeError::NoModel {
            name: name.to_string(),
        })
    }

    /// Deadline check against a query's entry timestamp; `>=` so a
    /// zero-duration deadline sheds deterministically (used by tests).
    fn check_deadline(&self, name: &str, start: Instant) -> Result<()> {
        if let Some(deadline) = self.config.query_deadline {
            if start.elapsed() >= deadline {
                m2td_obs::counter_add("serve.shed_queries", 1);
                return Err(ServeError::DeadlineExceeded {
                    name: name.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Predicts one cell ("how would this unsimulated configuration
    /// behave?") against the published snapshot.
    pub fn query_cell(&self, name: &str, index: &[usize]) -> Result<f64> {
        let _span = m2td_obs::span!("serve.query");
        let start = Instant::now();
        m2td_obs::counter_add("serve.cell_queries", 1);
        self.check_deadline(name, start)?;
        self.model(name)?.cell(index)
    }

    /// Predicts a batch of cells against one snapshot fetch. All values
    /// come from the same model version even if a refresh lands mid-batch.
    /// The deadline budget (if any) covers the whole batch: the first cell
    /// past it sheds the remainder.
    pub fn query_cells(&self, name: &str, indices: &[Vec<usize>]) -> Result<Vec<f64>> {
        let _span = m2td_obs::span!("serve.query");
        let start = Instant::now();
        m2td_obs::counter_add("serve.cell_queries", indices.len() as u64);
        let model = self.model(name)?;
        indices
            .iter()
            .map(|idx| {
                self.check_deadline(name, start)?;
                model.cell(idx)
            })
            .collect()
    }

    /// Predicts a whole mode-`mode` slice of the reconstruction (extent 1
    /// in `mode`) through the batched TTM path.
    pub fn query_slice(&self, name: &str, mode: usize, index: usize) -> Result<DenseTensor> {
        let _span = m2td_obs::span!("serve.query");
        let start = Instant::now();
        m2td_obs::counter_add("serve.slice_queries", 1);
        self.check_deadline(name, start)?;
        let model = self.model(name)?;
        let mut ws = self.slice_ws.lock().unwrap_or_else(|e| e.into_inner());
        model.slice(mode, index, &mut ws)
    }

    /// Statistics for one ensemble.
    pub fn stats(&self, name: &str) -> Result<EnsembleStats> {
        let state = self.state(name)?;
        let st = state.read().unwrap_or_else(|e| e.into_inner());
        Ok(EnsembleStats {
            name: name.to_string(),
            dims: st.inc.dims().to_vec(),
            ranks: st.ranks.clone(),
            nnz: st.inc.nnz(),
            pending: st.pending,
            model_version: st.version,
        })
    }

    // -----------------------------------------------------------------
    // Durability: recovery, snapshots, WAL replay.

    /// Opens (or cold-starts) a durable engine from `durability.dir`:
    /// loads the newest snapshot that verifies — quarantining damaged
    /// ones and falling back to older snapshots — then replays the WAL
    /// tail on top. The recovered engine serves, for every cell, exactly
    /// what an uninterrupted engine would have served: absorbs replay
    /// bit-exactly (bit-cast values, Grams restored bitwise, same
    /// insertion order) and auto-refreshes re-derive at the same points
    /// from the same staleness arithmetic.
    ///
    /// If durable history provably exists that can no longer be replayed
    /// (a WAL record damaged *mid*-log, or every snapshot covering some
    /// acknowledged operations quarantined), the engine comes up in
    /// read-only **degraded** mode: the best recoverable state keeps
    /// serving queries, every mutation returns [`ServeError::Degraded`],
    /// and `serve.degraded_mode` is raised. An empty directory is a
    /// normal cold start.
    pub fn recover(
        config: ServeConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let _span = m2td_obs::span!("serve.recover");
        m2td_obs::counter_add("serve.recoveries", 1);
        let store = SnapshotStore::new(durability.dir.clone(), durability.snapshot_keep)?;
        let wal_path = durability.dir.join("wal.log");

        // Replay runs against a plain in-memory engine: no WAL handle yet
        // (replay must not re-log), no crash injector (recovery itself is
        // never a kill point), no admission control surprises.
        let mut engine = ServeEngine::new(config);
        let mut base: Option<u64> = None;
        let mut quarantined = 0usize;
        let mut max_seen: Option<u64> = None;
        loop {
            let scan = store.scan();
            quarantined += scan.quarantined;
            max_seen = max_seen.max(scan.max_seen_seq);
            match scan.loaded {
                None => break,
                Some((seq, payload)) => match engine.restore_payload(&payload) {
                    Ok(()) => {
                        base = Some(seq);
                        break;
                    }
                    Err(_) => {
                        // Checksum-valid but structurally unrestorable:
                        // quarantine it like any other damage and fall
                        // back to the next older snapshot.
                        store.quarantine(seq, "payload");
                        quarantined += 1;
                    }
                },
            }
        }

        let wal_report = Wal::read(&wal_path);
        let mut last_applied = base.unwrap_or(0);
        let mut replayed = 0u64;
        let mut gap = false;
        for rec in &wal_report.records {
            if rec.seq <= last_applied {
                continue; // covered by the snapshot we anchored on
            }
            if rec.seq != last_applied + 1 {
                // The record needed next is gone (e.g. the WAL was
                // truncated against a snapshot that later quarantined).
                gap = true;
                break;
            }
            engine.apply_replay(&rec.op);
            m2td_obs::counter_add("serve.wal_replays", 1);
            last_applied = rec.seq;
            replayed += 1;
        }

        let degraded =
            gap || wal_report.corrupt || max_seen.is_some_and(|seen| seen > last_applied);
        m2td_obs::gauge_set("serve.degraded_mode", if degraded { 1.0 } else { 0.0 });

        let mut wal = Wal::open(&wal_path, last_applied + 1, durability.wal_sync_every)?;
        if !degraded && wal_report.torn > 0 {
            // Drop the torn tail now so new appends don't land after
            // garbage (which a later recovery would read as mid-log
            // corruption). In degraded mode the file is left untouched as
            // post-mortem evidence — no appends will happen anyway.
            wal.truncate_covered(0)?;
        }

        engine.durability = Some(Mutex::new(Durable {
            wal,
            store,
            snapshot_every: durability.snapshot_every,
            last_snapshot_seq: base.unwrap_or(0),
        }));
        engine.degraded = AtomicBool::new(degraded);
        engine.crash =
            (durability.crash_plan.is_some() || durability.crash_point.is_some()).then(|| {
                CrashInjector {
                    plan: durability.crash_plan.unwrap_or_else(FaultPlan::none),
                    pinned: durability.crash_point,
                    absorbs: AtomicU64::new(0),
                    refreshes: AtomicU64::new(0),
                }
            });
        let report = RecoveryReport {
            snapshot_seq: base,
            replayed,
            quarantined_snapshots: quarantined,
            torn_wal_records: wal_report.torn,
            degraded,
        };
        Ok((engine, report))
    }

    /// Forces a snapshot now, returning the covered WAL sequence (`None`
    /// on a purely in-memory engine).
    pub fn snapshot(&self) -> Result<Option<u64>> {
        self.ensure_writable()?;
        match self.durable_guard().as_deref_mut() {
            Some(d) => self.snapshot_locked(d).map(Some),
            None => Ok(None),
        }
    }

    /// Snapshots if enough WAL records accumulated since the last one.
    /// Consumes the durability guard, so callers must have released every
    /// per-ensemble lock first (the payload builder takes read locks).
    fn maybe_snapshot(&self, mut dur: Option<MutexGuard<'_, Durable>>) -> Result<()> {
        if let Some(d) = dur.as_deref_mut() {
            if d.snapshot_every > 0
                && d.wal.last_seq().saturating_sub(d.last_snapshot_seq) >= d.snapshot_every as u64
            {
                self.snapshot_locked(d)?;
            }
        }
        Ok(())
    }

    fn snapshot_locked(&self, dur: &mut Durable) -> Result<u64> {
        let _span = m2td_obs::span!("serve.snapshot");
        let seq = dur.wal.last_seq();
        let payload = self.snapshot_payload();
        let pending = dur.store.begin_write(seq, payload)?;
        // The kill point sits between temp-write and rename: a crash here
        // leaves the previous snapshot as the recovery base.
        self.crash_at_seq(CrashOp::SnapshotWrite, seq)?;
        pending.commit()?;
        m2td_obs::counter_add("serve.snapshot_writes", 1);
        dur.last_snapshot_seq = seq;
        if let Some(floor) = dur.store.sweep() {
            // Truncate only what the *oldest retained* snapshot covers:
            // if this snapshot quarantines later, recovery can still
            // anchor on an older one and replay forward.
            dur.wal.truncate_covered(floor)?;
        }
        Ok(seq)
    }

    /// Serializes the engine's entire durable state. Float data is
    /// bit-cast so restore is bitwise.
    fn snapshot_payload(&self) -> Json {
        let map = self.ensembles.read().unwrap_or_else(|e| e.into_inner());
        let mut items = Vec::with_capacity(map.len());
        for (name, state) in map.iter() {
            let st = state.read().unwrap_or_else(|e| e.into_inner());
            let sparse = st.inc.to_sparse();
            let mut indices = Vec::with_capacity(sparse.nnz());
            let mut values = Vec::with_capacity(sparse.nnz());
            for (lin, v) in sparse.iter_linear() {
                indices.push(Json::Int(lin as i64));
                values.push(v);
            }
            let order = st.inc.dims().len();
            let grams: Vec<Json> = (0..order)
                .map(|m| matrix_to_json(st.inc.gram(m).expect("mode in range")))
                .collect();
            let model = match &st.model {
                None => Json::Null,
                Some(m) => {
                    let d = m.decomp();
                    Json::Obj(vec![
                        ("basis_cells".to_string(), Json::Int(m.basis_cells() as i64)),
                        ("core".to_string(), dense_to_json(&d.core)),
                        (
                            "factors".to_string(),
                            Json::Arr(d.factors.iter().map(matrix_to_json).collect()),
                        ),
                    ])
                }
            };
            items.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(name.clone())),
                (
                    "dims".to_string(),
                    crate::wal::usizes_to_json(st.inc.dims()),
                ),
                ("ranks".to_string(), crate::wal::usizes_to_json(&st.ranks)),
                ("pending".to_string(), Json::Int(st.pending as i64)),
                ("version".to_string(), Json::Int(st.version as i64)),
                ("indices".to_string(), Json::Arr(indices)),
                ("bits".to_string(), bits_to_json(&values)),
                ("grams".to_string(), Json::Arr(grams)),
                ("model".to_string(), model),
            ]));
        }
        Json::Obj(vec![("ensembles".to_string(), Json::Arr(items))])
    }

    /// Rebuilds the full engine state from a snapshot payload, replacing
    /// whatever the map held. Entries and Grams restore bit-exactly via
    /// [`IncrementalEnsemble::from_sparse_with_grams`]; the published
    /// model (if any) is reconstructed from its stored core and factors
    /// with a fresh (empty) cell cache — caching never changes values.
    fn restore_payload(&self, payload: &Json) -> Result<()> {
        fn bad(what: &str) -> ServeError {
            ServeError::Store {
                message: format!("malformed snapshot payload: {what}"),
            }
        }
        let Some(Json::Arr(list)) = payload.get("ensembles") else {
            return Err(bad("missing ensembles"));
        };
        let mut map = BTreeMap::new();
        for item in list {
            let name = match item.get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err(bad("ensemble name")),
            };
            let dims = item
                .get("dims")
                .and_then(crate::wal::usizes_from_json)
                .ok_or_else(|| bad("dims"))?;
            let ranks = item
                .get("ranks")
                .and_then(crate::wal::usizes_from_json)
                .ok_or_else(|| bad("ranks"))?;
            let pending = match item.get("pending") {
                Some(Json::Int(p)) if *p >= 0 => *p as usize,
                _ => return Err(bad("pending")),
            };
            let version = match item.get("version") {
                Some(Json::Int(v)) if *v >= 0 => *v as u64,
                _ => return Err(bad("version")),
            };
            let indices = match item.get("indices") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|it| match it {
                        Json::Int(i) if *i >= 0 => Ok(*i as u64),
                        _ => Err(bad("entry index")),
                    })
                    .collect::<Result<Vec<u64>>>()?,
                _ => return Err(bad("indices")),
            };
            let values = bits_from_json(item.get("bits").ok_or_else(|| bad("bits"))?)?;
            let grams = match item.get("grams") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(matrix_from_json)
                    .collect::<Result<Vec<Matrix>>>()?,
                _ => return Err(bad("grams")),
            };
            let sparse = SparseTensor::from_sorted_linear(&dims, indices, values)?;
            let inc = IncrementalEnsemble::from_sparse_with_grams(&sparse, grams)?;
            let model = match item.get("model") {
                None | Some(Json::Null) => None,
                Some(mj) => {
                    let basis_cells = match mj.get("basis_cells") {
                        Some(Json::Int(b)) if *b >= 0 => *b as usize,
                        _ => return Err(bad("model basis_cells")),
                    };
                    let core = dense_from_json(mj.get("core").ok_or_else(|| bad("model core"))?)?;
                    let factors = match mj.get("factors") {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(matrix_from_json)
                            .collect::<Result<Vec<Matrix>>>()?,
                        _ => return Err(bad("model factors")),
                    };
                    let decomp = TuckerDecomp::new(core, factors)?;
                    Some(Arc::new(Model::new(
                        decomp,
                        self.config.cache_capacity,
                        version,
                        basis_cells,
                    )))
                }
            };
            map.insert(
                name,
                Arc::new(RwLock::new(EnsembleState {
                    inc,
                    ranks,
                    pending,
                    version,
                    model,
                    ws: Workspace::new(),
                })),
            );
        }
        let count = map.len();
        *self.ensembles.write().unwrap_or_else(|e| e.into_inner()) = map;
        m2td_obs::gauge_set("serve.ensembles", count as f64);
        Ok(())
    }

    /// Applies one WAL record during replay. Errors are swallowed: a
    /// logged operation that fails here failed identically in the live
    /// run *after* being logged (e.g. a guard-rejected manual refresh),
    /// so re-failing is the faithful replay of it.
    fn apply_replay(&self, op: &WalOp) {
        let _ = self.apply_op(op);
    }

    fn apply_op(&self, op: &WalOp) -> Result<()> {
        match op {
            WalOp::Register { name, dims, ranks } => {
                let mut map = self.ensembles.write().unwrap_or_else(|e| e.into_inner());
                if map.contains_key(name) {
                    return Err(ServeError::AlreadyRegistered { name: name.clone() });
                }
                map.insert(
                    name.clone(),
                    Arc::new(RwLock::new(EnsembleState {
                        inc: IncrementalEnsemble::new(dims),
                        ranks: ranks.clone(),
                        pending: 0,
                        version: 0,
                        model: None,
                        ws: Workspace::new(),
                    })),
                );
                m2td_obs::gauge_set("serve.ensembles", map.len() as f64);
                Ok(())
            }
            WalOp::Remove { name } => {
                let mut map = self.ensembles.write().unwrap_or_else(|e| e.into_inner());
                if map.remove(name).is_none() {
                    return Err(ServeError::UnknownEnsemble { name: name.clone() });
                }
                m2td_obs::gauge_set("serve.ensembles", map.len() as f64);
                Ok(())
            }
            WalOp::Absorb {
                name,
                index,
                value_bits,
            } => {
                let state = self.state(name)?;
                let mut st = state.write().unwrap_or_else(|e| e.into_inner());
                st.inc.add(index, f64::from_bits(*value_bits))?;
                st.pending += 1;
                // Auto-refreshes are not logged; the same staleness
                // arithmetic re-derives them at the same points. A guard
                // rejection defers exactly as it does live.
                let threshold = self.config.staleness_threshold;
                if threshold > 0 && st.pending >= threshold {
                    match self.refresh_locked(&mut st) {
                        Ok(_) | Err(ServeError::Tensor(TensorError::Guard(_))) => {}
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
            WalOp::Refresh { name } => {
                let state = self.state(name)?;
                let mut st = state.write().unwrap_or_else(|e| e.into_inner());
                self.refresh_locked(&mut st).map(|_| ())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_tensor::hosvd_sparse_exact;
    use std::sync::Mutex as TestMutex;

    /// Guard state is process-global; tests that install serialize here.
    static GUARD_LOCK: TestMutex<()> = TestMutex::new(());

    /// Deterministic synthetic cell values.
    fn cell_value(l: usize) -> f64 {
        (l as f64 * 0.37).sin() + 1.0
    }

    /// Fills every other cell of a `dims` ensemble.
    fn fill(engine: &ServeEngine, name: &str, dims: &[usize]) -> usize {
        let shape = Shape::new(dims);
        let mut n = 0;
        for l in 0..shape.num_elements() {
            if l % 2 == 0 {
                engine
                    .absorb(name, &shape.multi_index(l), cell_value(l))
                    .unwrap();
                n += 1;
            }
        }
        n
    }

    #[test]
    fn register_absorb_refresh_query_happy_path() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[4, 4, 3], &[2, 2, 2]).unwrap();
        let n = fill(&engine, "e", &[4, 4, 3]);
        let stats = engine.stats("e").unwrap();
        assert_eq!(stats.nnz, n);
        assert_eq!(stats.pending, n);
        assert_eq!(stats.model_version, 0);
        assert!(matches!(
            engine.query_cell("e", &[0, 0, 0]),
            Err(ServeError::NoModel { .. })
        ));
        let r = engine.refresh("e").unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(r.basis_cells, n);
        assert_eq!(r.ranks(), &[2, 2, 2]);
        let y = engine.query_cell("e", &[1, 2, 1]).unwrap();
        assert!(y.is_finite());
        assert_eq!(engine.stats("e").unwrap().pending, 0);
        assert_eq!(engine.names(), vec!["e".to_string()]);
    }

    #[test]
    fn refreshed_model_matches_batch_decomposition() {
        let dims = [4usize, 4, 3];
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &dims, &[2, 2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();

        // Batch route over the same cells.
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % 2 == 0)
            .map(|l| (shape.multi_index(l), cell_value(l)))
            .collect();
        let sparse = m2td_tensor::SparseTensor::from_entries(&dims, &entries).unwrap();
        let batch = hosvd_sparse_exact(&sparse, &[2, 2, 2]).unwrap();

        for idx in shape.iter_indices() {
            let served = engine.query_cell("e", &idx).unwrap();
            let direct = batch.cell(&idx).unwrap();
            assert!(
                (served - direct).abs() <= 1e-9 * (1.0 + direct.abs()),
                "cell {idx:?}: served {served} vs batch {direct}"
            );
        }
    }

    #[test]
    fn staleness_threshold_triggers_auto_refresh() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(5));
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        let shape = Shape::new(&[4, 4]);
        let mut refreshes = 0;
        for l in 0..12usize {
            let rep = engine
                .absorb("e", &shape.multi_index(l), cell_value(l))
                .unwrap();
            if rep.refreshed {
                refreshes += 1;
                assert_eq!(rep.pending, 0, "refresh resets the staleness counter");
            }
        }
        assert_eq!(refreshes, 2, "12 absorbs at threshold 5 → 2 refreshes");
        assert_eq!(engine.stats("e").unwrap().model_version, 2);
        // The auto-published model serves queries immediately.
        assert!(engine.query_cell("e", &[3, 3]).unwrap().is_finite());
    }

    #[test]
    fn slice_query_matches_cellwise_evaluation() {
        let dims = [4usize, 5, 3];
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &dims, &[2, 2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();
        for mode in 0..3 {
            let slice = engine.query_slice("e", mode, 1).unwrap();
            assert_eq!(slice.dims()[mode], 1);
            for idx in Shape::new(slice.dims()).iter_indices() {
                let mut full = idx.clone();
                full[mode] = 1;
                let direct = engine.query_cell("e", &full).unwrap();
                let from_slice = slice.get(&idx);
                assert!(
                    (direct - from_slice).abs() < 1e-10,
                    "mode {mode} idx {idx:?}: {direct} vs {from_slice}"
                );
            }
        }
        assert!(engine.query_slice("e", 7, 0).is_err());
        assert!(engine.query_slice("e", 0, 99).is_err());
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let dims = [4usize, 4];
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &dims, &[2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();
        let indices: Vec<Vec<usize>> = Shape::new(&dims).iter_indices().collect();
        let batch = engine.query_cells("e", &indices).unwrap();
        for (idx, &b) in indices.iter().zip(batch.iter()) {
            let single = engine.query_cell("e", idx).unwrap();
            assert_eq!(single.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn duplicate_absorb_and_unknown_names_error() {
        let engine = ServeEngine::default();
        engine.register("e", &[2, 2], &[1, 1]).unwrap();
        assert!(matches!(
            engine.register("e", &[2, 2], &[1, 1]),
            Err(ServeError::AlreadyRegistered { .. })
        ));
        assert!(matches!(
            engine.register("bad", &[2, 2], &[3, 1]),
            Err(ServeError::Tensor(TensorError::RankTooLarge { .. }))
        ));
        assert!(matches!(
            engine.register("bad", &[2, 2], &[1]),
            Err(ServeError::Tensor(TensorError::WrongNumberOfRanks { .. }))
        ));
        engine.absorb("e", &[0, 1], 1.0).unwrap();
        assert!(matches!(
            engine.absorb("e", &[0, 1], 2.0),
            Err(ServeError::Tensor(TensorError::DuplicateEntry { .. }))
        ));
        assert!(matches!(
            engine.absorb("ghost", &[0, 0], 1.0),
            Err(ServeError::UnknownEnsemble { .. })
        ));
        assert!(engine.deregister("e").is_ok());
        assert!(matches!(
            engine.deregister("e"),
            Err(ServeError::UnknownEnsemble { .. })
        ));
    }

    #[test]
    fn cache_serves_repeat_queries_identically() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        fill(&engine, "e", &[4, 4]);
        engine.refresh("e").unwrap();
        let cold = engine.query_cell("e", &[1, 3]).unwrap();
        let warm = engine.query_cell("e", &[1, 3]).unwrap();
        assert_eq!(cold.to_bits(), warm.to_bits());
        // Capacity 0 disables the cache without changing results.
        let uncached = ServeEngine::new(
            ServeConfig::default()
                .with_staleness(0)
                .with_cache_capacity(0),
        );
        uncached.register("e", &[4, 4], &[2, 2]).unwrap();
        fill(&uncached, "e", &[4, 4]);
        uncached.refresh("e").unwrap();
        let plain = uncached.query_cell("e", &[1, 3]).unwrap();
        assert_eq!(plain.to_bits(), cold.to_bits());
        // Both paths reject malformed indices identically.
        for eng in [&engine, &uncached] {
            assert!(matches!(
                eng.query_cell("e", &[1]),
                Err(ServeError::Tensor(TensorError::WrongNumberOfRanks { .. }))
            ));
            assert!(matches!(
                eng.query_cell("e", &[9, 0]),
                Err(ServeError::Tensor(TensorError::IndexOutOfBounds { .. }))
            ));
        }
    }

    #[test]
    fn full_cache_evicts_lru_and_keeps_serving_identical_values() {
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dims = [4usize, 4];
        let engine = ServeEngine::new(
            ServeConfig::default()
                .with_staleness(0)
                .with_cache_capacity(3),
        );
        engine.register("e", &dims, &[2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();

        // Baseline predictions, pre-cache-pressure.
        let indices: Vec<Vec<usize>> = Shape::new(&dims).iter_indices().collect();
        let baseline: Vec<f64> = indices
            .iter()
            .map(|i| engine.query_cell("e", i).unwrap())
            .collect();

        // Sweep all 16 cells through a 3-entry cache, twice: the cache
        // churns constantly and must evict.
        m2td_obs::install();
        m2td_obs::reset();
        for _ in 0..2 {
            for (i, idx) in indices.iter().enumerate() {
                let y = engine.query_cell("e", idx).unwrap();
                assert_eq!(
                    y.to_bits(),
                    baseline[i].to_bits(),
                    "eviction churn must never change a prediction"
                );
            }
        }
        let snap = m2td_obs::snapshot();
        m2td_obs::uninstall();
        let evictions = snap.counter("serve.cache_evictions").unwrap_or(0);
        assert!(
            evictions >= 16,
            "two 16-cell sweeps through a 3-entry cache must evict (got {evictions})"
        );
    }

    #[test]
    fn guard_fail_policy_keeps_previous_model_serving() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[3, 3], &[3, 3]).unwrap();
        // A rank-1 fill: mode Grams support only one direction, far short
        // of the requested rank 3.
        for j in 0..3usize {
            engine.absorb("e", &[0, j], (j + 1) as f64).unwrap();
        }
        // Unguarded: the deficient refresh goes through (plain eig).
        engine.refresh("e").unwrap();
        let v1 = engine.query_cell("e", &[0, 1]).unwrap();
        engine.absorb("e", &[1, 0], 2.0).unwrap();

        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::Fail));
        // Still rank-deficient at rank 3 → refresh rejected...
        let err = engine.refresh("e");
        m2td_guard::uninstall();
        assert!(matches!(
            err,
            Err(ServeError::Tensor(TensorError::Guard(
                GuardError::RankDeficient { .. }
            )))
        ));
        // ...and the version-1 model keeps serving, bit for bit.
        assert_eq!(engine.stats("e").unwrap().model_version, 1);
        let still = engine.query_cell("e", &[0, 1]).unwrap();
        assert_eq!(still.to_bits(), v1.to_bits());
    }

    #[test]
    fn guarded_auto_refresh_defers_instead_of_failing_the_write() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(1));
        engine.register("e", &[3, 3], &[2, 2]).unwrap();
        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::Fail));
        // One cell supports only rank 1, so the automatic refresh the
        // absorb triggers is guard-rejected — but the write itself must
        // succeed and the cell must stay durable.
        let a1 = engine.absorb("e", &[0, 0], 1.0).unwrap();
        assert!(!a1.refreshed);
        assert_eq!((a1.nnz, a1.pending), (1, 1));
        assert_eq!(engine.stats("e").unwrap().model_version, 0);
        // The deferred refresh retries on the next absorb and succeeds
        // once the spectrum reaches the requested rank.
        let a2 = engine.absorb("e", &[1, 1], 2.0).unwrap();
        m2td_guard::uninstall();
        assert!(a2.refreshed);
        assert_eq!((a2.nnz, a2.pending), (2, 0));
        assert_eq!(engine.stats("e").unwrap().model_version, 1);
    }

    #[test]
    fn guard_clamp_policy_serves_narrower_factors() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[3, 3], &[2, 2]).unwrap();
        for j in 0..3usize {
            engine.absorb("e", &[0, j], (j + 1) as f64).unwrap();
        }
        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::ClampRank));
        let report = engine.refresh("e");
        m2td_guard::uninstall();
        let report = report.unwrap();
        assert_eq!(report.ranks(), &[1, 1], "deficient spectrum clamps to 1");
        assert!(engine.query_cell("e", &[1, 1]).unwrap().is_finite());
    }

    #[test]
    fn guarded_absorb_rejects_nonfinite_cells() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[2, 2], &[1, 1]).unwrap();
        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::Fail));
        let res = engine.absorb("e", &[0, 0], f64::NAN);
        m2td_guard::uninstall();
        assert!(matches!(
            res,
            Err(ServeError::Tensor(TensorError::Guard(
                GuardError::NonFinite { .. }
            )))
        ));
        // The poisoned cell never reached the Grams.
        assert_eq!(engine.stats("e").unwrap().nnz, 0);
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("m2td_engine_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_engine_recovers_bitwise_and_keeps_sequencing() {
        let dir = tmp_dir("durable_roundtrip");
        let cfg = ServeConfig::default().with_staleness(5);
        let dur = DurabilityConfig::new(&dir)
            .with_snapshot_every(7)
            .with_wal_sync_every(2);
        let (engine, rep) = ServeEngine::recover(cfg, dur.clone()).unwrap();
        assert_eq!(
            rep,
            RecoveryReport {
                snapshot_seq: None,
                replayed: 0,
                quarantined_snapshots: 0,
                torn_wal_records: 0,
                degraded: false,
            },
            "empty dir is a cold start"
        );
        engine.register("e", &[4, 4, 3], &[2, 2, 2]).unwrap();
        fill(&engine, "e", &[4, 4, 3]);
        engine.refresh("e").unwrap();
        let shape = Shape::new(&[4, 4, 3]);
        let expect: Vec<u64> = shape
            .iter_indices()
            .map(|i| engine.query_cell("e", &i).unwrap().to_bits())
            .collect();
        let stats = engine.stats("e").unwrap();
        drop(engine);

        let (back, rep) = ServeEngine::recover(cfg, dur).unwrap();
        assert!(!rep.degraded);
        assert!(rep.snapshot_seq.is_some(), "auto-snapshots were written");
        assert_eq!(back.stats("e").unwrap(), stats);
        for (idx, &bits) in shape.iter_indices().zip(expect.iter()) {
            assert_eq!(
                back.query_cell("e", &idx).unwrap().to_bits(),
                bits,
                "recovered cell {idx:?} must match bitwise"
            );
        }
    }

    #[test]
    fn overloaded_absorbs_are_refused_while_queries_keep_serving() {
        let engine = ServeEngine::new(
            ServeConfig::default()
                .with_staleness(0)
                .with_absorb_queue_cap(2),
        );
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        // Backlog up to the cap is admitted...
        engine.absorb("e", &[0, 0], 1.0).unwrap();
        engine.absorb("e", &[1, 1], 2.0).unwrap();
        // ...the next absorb is refused with context...
        let err = engine.absorb("e", &[2, 2], 3.0);
        assert!(
            matches!(
                err,
                Err(ServeError::Overloaded {
                    pending: 2,
                    cap: 2,
                    ..
                })
            ),
            "expected Overloaded, got {err:?}"
        );
        assert_eq!(engine.stats("e").unwrap().nnz, 2, "refused cell not stored");
        // ...a refresh drains the backlog, re-admitting writes...
        engine.refresh("e").unwrap();
        engine.absorb("e", &[2, 2], 3.0).unwrap();
        engine.absorb("e", &[3, 3], 4.0).unwrap();
        // ...and during the next overload, queries keep serving the
        // published model.
        assert!(matches!(
            engine.absorb("e", &[0, 1], 5.0),
            Err(ServeError::Overloaded { .. })
        ));
        assert!(engine.query_cell("e", &[1, 1]).unwrap().is_finite());
    }

    #[test]
    fn zero_deadline_sheds_every_query_kind() {
        let engine = ServeEngine::new(
            ServeConfig::default()
                .with_staleness(0)
                .with_query_deadline(Duration::ZERO),
        );
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        fill(&engine, "e", &[4, 4]);
        engine.refresh("e").unwrap();
        assert!(matches!(
            engine.query_cell("e", &[1, 1]),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        assert!(matches!(
            engine.query_cells("e", &[vec![1, 1]]),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        assert!(matches!(
            engine.query_slice("e", 0, 1),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        // Absorbs are writes, not queries — never shed by the deadline.
        engine.absorb("e", &[0, 1], 1.0).unwrap();
    }

    #[test]
    fn reregistering_a_name_resets_the_model_and_serves_no_stale_cells() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        fill(&engine, "e", &[4, 4]);
        engine.refresh("e").unwrap();
        // Warm the LRU cell cache against generation one (a simulated
        // cell, so both generations predict it well).
        let old = engine.query_cell("e", &[1, 2]).unwrap();
        assert_eq!(engine.stats("e").unwrap().model_version, 1);

        engine.deregister("e").unwrap();
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        let stats = engine.stats("e").unwrap();
        assert_eq!(
            (stats.model_version, stats.nnz, stats.pending),
            (0, 0, 0),
            "re-registration must start from scratch"
        );
        // No model yet — the warm cache of the old generation must be
        // unreachable, not served.
        assert!(matches!(
            engine.query_cell("e", &[1, 2]),
            Err(ServeError::NoModel { .. })
        ));
        // A fresh fill with shifted values publishes version 1 of the new
        // generation and serves *its* values, not the cached old ones.
        let shape = Shape::new(&[4, 4]);
        for l in 0..shape.num_elements() {
            if l % 2 == 0 {
                engine
                    .absorb("e", &shape.multi_index(l), cell_value(l) + 10.0)
                    .unwrap();
            }
        }
        engine.refresh("e").unwrap();
        assert_eq!(engine.stats("e").unwrap().model_version, 1);
        let fresh = engine.query_cell("e", &[1, 2]).unwrap();
        assert_ne!(fresh.to_bits(), old.to_bits(), "stale cell served");
        assert!((fresh - old - 10.0).abs() < 1.0, "value from new data");
    }

    #[test]
    fn errors_display_their_context() {
        let e = ServeError::UnknownEnsemble {
            name: "lorenz".into(),
        };
        assert!(e.to_string().contains("lorenz"));
        let e = ServeError::NoModel { name: "sir".into() };
        assert!(e.to_string().contains("refresh"));
        use std::error::Error;
        let e = ServeError::Tensor(TensorError::EmptyTensor);
        assert!(e.source().is_some());
    }
}
