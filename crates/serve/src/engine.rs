//! The resident serve engine: named ensembles, staleness-gated refresh,
//! and the lock-light query path.

use crate::lru::LruCache;
use crate::Result;
use m2td_guard::GuardError;
use m2td_linalg::Matrix;
use m2td_tensor::{
    sparse_core_with, ttm_dense_ws, CellEvaluator, CoreOrdering, DenseTensor, IncrementalEnsemble,
    Shape, TensorError, TuckerDecomp, Workspace,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// Engine-level configuration shared by every registered ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of absorbed cells after which a refresh is triggered
    /// automatically. `0` disables auto-refresh (explicit
    /// [`ServeEngine::refresh`] only).
    pub staleness_threshold: usize,
    /// Maximum number of cached cell predictions per published model.
    /// The cache evicts least-recently-used entries once full (see
    /// `serve.cache_evictions`), so a shifting query working set keeps
    /// its hot cells resident; a refresh publishes a fresh empty cache.
    /// `0` disables caching.
    pub cache_capacity: usize,
}

impl ServeConfig {
    /// Defaults: refresh every 64 absorbs, 4096 cached cells per model.
    pub const DEFAULT: ServeConfig = ServeConfig {
        staleness_threshold: 64,
        cache_capacity: 4096,
    };

    /// Replaces the staleness threshold.
    pub fn with_staleness(mut self, threshold: usize) -> Self {
        self.staleness_threshold = threshold;
        self
    }

    /// Replaces the cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Errors surfaced by the serve engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No ensemble is registered under the requested name.
    UnknownEnsemble {
        /// The requested name.
        name: String,
    },
    /// An ensemble with this name already exists.
    AlreadyRegistered {
        /// The duplicate name.
        name: String,
    },
    /// The ensemble has never been refreshed, so there is no model to
    /// query yet.
    NoModel {
        /// The ensemble name.
        name: String,
    },
    /// An underlying tensor kernel failed (this also carries guard policy
    /// rejections, which arrive as [`TensorError::Guard`]).
    Tensor(TensorError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownEnsemble { name } => {
                write!(f, "no ensemble registered under '{name}'")
            }
            ServeError::AlreadyRegistered { name } => {
                write!(f, "ensemble '{name}' is already registered")
            }
            ServeError::NoModel { name } => write!(
                f,
                "ensemble '{name}' has no published model yet (refresh it first)"
            ),
            ServeError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

impl From<GuardError> for ServeError {
    fn from(e: GuardError) -> Self {
        ServeError::Tensor(TensorError::from(e))
    }
}

/// Outcome of one [`ServeEngine::absorb`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsorbReport {
    /// Stored cells after this absorb.
    pub nnz: usize,
    /// Absorbs since the last published model (reset to 0 when this
    /// absorb triggered a refresh).
    pub pending: usize,
    /// Whether this absorb crossed the staleness threshold and triggered
    /// an automatic refresh.
    pub refreshed: bool,
}

/// Outcome of one model refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshReport {
    /// Version of the newly published model (1 for the first refresh).
    pub version: u64,
    /// Stored cells the model was decomposed from.
    pub basis_cells: usize,
    /// Per-mode factor widths actually served. Narrower than the
    /// registered ranks when the guard's clamp policy truncated a
    /// degenerate spectrum.
    pub served_ranks: Vec<usize>,
}

impl RefreshReport {
    /// The served per-mode factor widths.
    pub fn ranks(&self) -> &[usize] {
        &self.served_ranks
    }
}

/// Point-in-time statistics for one registered ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStats {
    /// Ensemble name.
    pub name: String,
    /// Mode extents.
    pub dims: Vec<usize>,
    /// Registered target ranks.
    pub ranks: Vec<usize>,
    /// Stored cells.
    pub nnz: usize,
    /// Absorbs since the last refresh.
    pub pending: usize,
    /// Published model version (0 = never refreshed).
    pub model_version: u64,
}

/// An immutable published decomposition snapshot.
///
/// Queries evaluate against the snapshot that was current when they
/// fetched it; a concurrent refresh publishes a *new* snapshot and never
/// mutates one already handed out, so a query's result depends only on
/// the snapshot version it saw — never on thread interleaving.
#[derive(Debug)]
pub struct Model {
    evaluator: CellEvaluator,
    /// Output-space shape used to key the cell cache; `None` when the
    /// reconstruction space is too large to linearize (cache disabled —
    /// see [`Shape::checked_num_elements`]).
    cache_shape: Option<Shape>,
    cache: Mutex<LruCache>,
    version: u64,
    basis_cells: usize,
}

impl Model {
    fn new(decomp: TuckerDecomp, cache_capacity: usize, version: u64, basis_cells: usize) -> Self {
        let evaluator = CellEvaluator::new(decomp);
        let shape = Shape::new(evaluator.output_dims());
        let cache_shape =
            (cache_capacity > 0 && shape.checked_num_elements().is_some()).then_some(shape);
        Self {
            evaluator,
            cache_shape,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            version,
            basis_cells,
        }
    }

    /// The wrapped decomposition.
    pub fn decomp(&self) -> &TuckerDecomp {
        self.evaluator.decomp()
    }

    /// Refresh generation of this snapshot (1 = first refresh).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stored cells the decomposition was computed from.
    pub fn basis_cells(&self) -> usize {
        self.basis_cells
    }

    /// Predicts one cell of the reconstruction, consulting the bounded
    /// per-model LRU cache (least-recently-used entries are evicted once
    /// it fills — `serve.cache_evictions`). Cached and uncached paths
    /// return bitwise-identical values (the cache stores exactly what the
    /// evaluator computed, and a post-eviction re-miss recomputes the
    /// identical value), so caching never changes a prediction — only its
    /// latency.
    pub fn cell(&self, index: &[usize]) -> Result<f64> {
        let Some(shape) = &self.cache_shape else {
            m2td_obs::counter_add("serve.cache_misses", 1);
            return Ok(self.evaluator.cell(index)?);
        };
        // Mirror the evaluator's validation so the cached path reports the
        // same error variants as the uncached one.
        let dims = shape.dims();
        if index.len() != dims.len() {
            return Err(ServeError::Tensor(TensorError::WrongNumberOfRanks {
                supplied: index.len(),
                order: dims.len(),
            }));
        }
        if index.iter().zip(dims.iter()).any(|(&i, &d)| i >= d) {
            return Err(ServeError::Tensor(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: dims.to_vec(),
            }));
        }
        let key = shape.linear_index(index) as u64;
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
        {
            m2td_obs::counter_add("serve.cache_hits", 1);
            return Ok(hit);
        }
        m2td_obs::counter_add("serve.cache_misses", 1);
        let value = self.evaluator.cell(index)?;
        let evicted = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value);
        if evicted {
            m2td_obs::counter_add("serve.cache_evictions", 1);
        }
        Ok(value)
    }

    /// Predicts a whole mode-`mode` slice (`index` fixed in that mode) as
    /// a dense tensor with extent 1 in `mode`, via a batched TTM chain:
    /// the core is first contracted with the single factor row, then
    /// expanded along the remaining modes — the chain never materializes
    /// anything larger than the slice itself.
    pub fn slice(&self, mode: usize, index: usize, ws: &mut Workspace) -> Result<DenseTensor> {
        let decomp = self.decomp();
        let dims = self.evaluator.output_dims();
        if mode >= dims.len() {
            return Err(ServeError::Tensor(TensorError::InvalidMode {
                mode,
                order: dims.len(),
            }));
        }
        if index >= dims[mode] {
            let mut idx = vec![0; dims.len()];
            idx[mode] = index;
            return Err(ServeError::Tensor(TensorError::IndexOutOfBounds {
                index: idx,
                shape: dims.to_vec(),
            }));
        }
        let row = {
            let f = &decomp.factors[mode];
            Matrix::from_fn(1, f.cols(), |_, j| f.get(index, j))
        };
        let mut acc = ttm_dense_ws(&decomp.core, mode, &row, ws)?;
        for (n, f) in decomp.factors.iter().enumerate() {
            if n == mode {
                continue;
            }
            let next = ttm_dense_ws(&acc, n, f, ws)?;
            ws.recycle_tensor(acc);
            acc = next;
        }
        Ok(acc)
    }
}

/// Per-ensemble mutable state, guarded by one `RwLock`.
struct EnsembleState {
    inc: IncrementalEnsemble,
    ranks: Vec<usize>,
    pending: usize,
    version: u64,
    model: Option<Arc<Model>>,
    /// Buffer pool reused across this ensemble's refreshes (the TTM chain
    /// recovering the core cycles through the same intermediates).
    ws: Workspace,
}

/// A resident engine holding decomposed ensembles keyed by name.
///
/// All methods take `&self`; the engine is `Sync` and intended to be
/// shared across query threads (e.g. behind an `Arc`).
pub struct ServeEngine {
    config: ServeConfig,
    ensembles: RwLock<BTreeMap<String, Arc<RwLock<EnsembleState>>>>,
    /// Buffer pool for slice queries; separate from the per-ensemble pool
    /// so a slice query never contends with absorbs for the write lock.
    slice_ws: Mutex<Workspace>,
}

impl Default for ServeEngine {
    fn default() -> Self {
        Self::new(ServeConfig::default())
    }
}

impl ServeEngine {
    /// Creates an empty engine.
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            ensembles: RwLock::new(BTreeMap::new()),
            slice_ws: Mutex::new(Workspace::new()),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Registers an empty ensemble under `name` with the given mode
    /// extents and per-mode target ranks.
    pub fn register(&self, name: &str, dims: &[usize], ranks: &[usize]) -> Result<()> {
        if ranks.len() != dims.len() {
            return Err(ServeError::Tensor(TensorError::WrongNumberOfRanks {
                supplied: ranks.len(),
                order: dims.len(),
            }));
        }
        for (mode, (&r, &d)) in ranks.iter().zip(dims.iter()).enumerate() {
            if r == 0 || r > d {
                return Err(ServeError::Tensor(TensorError::RankTooLarge {
                    mode,
                    requested: r,
                    available: d,
                }));
            }
        }
        let mut map = self.ensembles.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(ServeError::AlreadyRegistered {
                name: name.to_string(),
            });
        }
        map.insert(
            name.to_string(),
            Arc::new(RwLock::new(EnsembleState {
                inc: IncrementalEnsemble::new(dims),
                ranks: ranks.to_vec(),
                pending: 0,
                version: 0,
                model: None,
                ws: Workspace::new(),
            })),
        );
        m2td_obs::gauge_set("serve.ensembles", map.len() as f64);
        Ok(())
    }

    /// Removes an ensemble. In-flight queries holding its model snapshot
    /// finish against that snapshot.
    pub fn deregister(&self, name: &str) -> Result<()> {
        let mut map = self.ensembles.write().unwrap_or_else(|e| e.into_inner());
        if map.remove(name).is_none() {
            return Err(ServeError::UnknownEnsemble {
                name: name.to_string(),
            });
        }
        m2td_obs::gauge_set("serve.ensembles", map.len() as f64);
        Ok(())
    }

    /// Names of all registered ensembles, sorted.
    pub fn names(&self) -> Vec<String> {
        self.ensembles
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    fn state(&self, name: &str) -> Result<Arc<RwLock<EnsembleState>>> {
        self.ensembles
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownEnsemble {
                name: name.to_string(),
            })
    }

    /// Absorbs one simulation result into the named ensemble, updating
    /// its running Grams in `O(column occupancy)`. With the guard layer
    /// installed, a non-finite value is rejected *before* it can poison
    /// the Grams (counted in `serve.rejected_cells`). Crossing the
    /// staleness threshold triggers an automatic refresh; if the guard
    /// rejects that refresh (e.g. the spectrum is still rank-deficient),
    /// the write still succeeds — the cell is durably absorbed, the
    /// previous model keeps serving, and the refresh is retried on the
    /// next absorb (counted in `serve.deferred_refreshes`). Only a
    /// manual [`ServeEngine::refresh`] surfaces the rejection.
    pub fn absorb(&self, name: &str, index: &[usize], value: f64) -> Result<AbsorbReport> {
        let _span = m2td_obs::span!("serve.absorb");
        m2td_guard::check_cells("serve.absorb", std::iter::once((index.to_vec(), value))).map_err(
            |e| {
                m2td_obs::counter_add("serve.rejected_cells", 1);
                ServeError::from(e)
            },
        )?;
        let state = self.state(name)?;
        let mut st = state.write().unwrap_or_else(|e| e.into_inner());
        st.inc.add(index, value)?;
        st.pending += 1;
        m2td_obs::counter_add("serve.absorbed_cells", 1);
        let threshold = self.config.staleness_threshold;
        let mut refreshed = false;
        if threshold > 0 && st.pending >= threshold {
            match self.refresh_locked(&mut st) {
                Ok(_) => refreshed = true,
                Err(ServeError::Tensor(TensorError::Guard(_))) => {
                    m2td_obs::counter_add("serve.deferred_refreshes", 1);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(AbsorbReport {
            nnz: st.inc.nnz(),
            pending: st.pending,
            refreshed,
        })
    }

    /// Recomputes factors from the running Grams and the core from the
    /// stored cells, publishing a fresh [`Model`] snapshot. A guard
    /// rejection (e.g. `Fail` policy on a rank-deficient spectrum) leaves
    /// the previously published model serving.
    pub fn refresh(&self, name: &str) -> Result<RefreshReport> {
        let state = self.state(name)?;
        let mut st = state.write().unwrap_or_else(|e| e.into_inner());
        self.refresh_locked(&mut st)
    }

    fn refresh_locked(&self, st: &mut EnsembleState) -> Result<RefreshReport> {
        let _span = m2td_obs::span!("serve.refresh");
        // Factors come from the *running* Grams — no unfold/Gram
        // recomputation — through the guard layer: a degenerate spectrum
        // is clamped (narrower factors) or rejected per the installed
        // policy, and a rejection propagates before the served model is
        // touched.
        let order = st.inc.dims().len();
        let mut factors = Vec::with_capacity(order);
        for mode in 0..order {
            let gram = st.inc.gram(mode)?;
            let r = st.ranks[mode];
            factors.push(m2td_guard::gram_factor(
                "serve.refresh",
                Some(mode),
                gram,
                r,
            )?);
        }
        let sparse = st.inc.to_sparse();
        let core = sparse_core_with(&sparse, &factors, CoreOrdering::BestShrinkFirst, &mut st.ws)?;
        m2td_guard::check_dense("serve.core", core.dims(), core.as_slice())?;
        let decomp = TuckerDecomp::new(core, factors)?;
        let served_ranks: Vec<usize> = decomp.factors.iter().map(|f| f.cols()).collect();
        st.version += 1;
        let report = RefreshReport {
            version: st.version,
            basis_cells: sparse.nnz(),
            served_ranks,
        };
        st.model = Some(Arc::new(Model::new(
            decomp,
            self.config.cache_capacity,
            st.version,
            sparse.nnz(),
        )));
        st.pending = 0;
        m2td_obs::counter_add("serve.refreshes", 1);
        m2td_obs::gauge_set("serve.model_version", st.version as f64);
        Ok(report)
    }

    /// The currently published model snapshot for `name`.
    pub fn model(&self, name: &str) -> Result<Arc<Model>> {
        let state = self.state(name)?;
        let st = state.read().unwrap_or_else(|e| e.into_inner());
        st.model.clone().ok_or_else(|| ServeError::NoModel {
            name: name.to_string(),
        })
    }

    /// Predicts one cell ("how would this unsimulated configuration
    /// behave?") against the published snapshot.
    pub fn query_cell(&self, name: &str, index: &[usize]) -> Result<f64> {
        let _span = m2td_obs::span!("serve.query");
        m2td_obs::counter_add("serve.cell_queries", 1);
        self.model(name)?.cell(index)
    }

    /// Predicts a batch of cells against one snapshot fetch. All values
    /// come from the same model version even if a refresh lands mid-batch.
    pub fn query_cells(&self, name: &str, indices: &[Vec<usize>]) -> Result<Vec<f64>> {
        let _span = m2td_obs::span!("serve.query");
        m2td_obs::counter_add("serve.cell_queries", indices.len() as u64);
        let model = self.model(name)?;
        indices.iter().map(|idx| model.cell(idx)).collect()
    }

    /// Predicts a whole mode-`mode` slice of the reconstruction (extent 1
    /// in `mode`) through the batched TTM path.
    pub fn query_slice(&self, name: &str, mode: usize, index: usize) -> Result<DenseTensor> {
        let _span = m2td_obs::span!("serve.query");
        m2td_obs::counter_add("serve.slice_queries", 1);
        let model = self.model(name)?;
        let mut ws = self.slice_ws.lock().unwrap_or_else(|e| e.into_inner());
        model.slice(mode, index, &mut ws)
    }

    /// Statistics for one ensemble.
    pub fn stats(&self, name: &str) -> Result<EnsembleStats> {
        let state = self.state(name)?;
        let st = state.read().unwrap_or_else(|e| e.into_inner());
        Ok(EnsembleStats {
            name: name.to_string(),
            dims: st.inc.dims().to_vec(),
            ranks: st.ranks.clone(),
            nnz: st.inc.nnz(),
            pending: st.pending,
            model_version: st.version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2td_tensor::hosvd_sparse_exact;
    use std::sync::Mutex as TestMutex;

    /// Guard state is process-global; tests that install serialize here.
    static GUARD_LOCK: TestMutex<()> = TestMutex::new(());

    /// Deterministic synthetic cell values.
    fn cell_value(l: usize) -> f64 {
        (l as f64 * 0.37).sin() + 1.0
    }

    /// Fills every other cell of a `dims` ensemble.
    fn fill(engine: &ServeEngine, name: &str, dims: &[usize]) -> usize {
        let shape = Shape::new(dims);
        let mut n = 0;
        for l in 0..shape.num_elements() {
            if l % 2 == 0 {
                engine
                    .absorb(name, &shape.multi_index(l), cell_value(l))
                    .unwrap();
                n += 1;
            }
        }
        n
    }

    #[test]
    fn register_absorb_refresh_query_happy_path() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[4, 4, 3], &[2, 2, 2]).unwrap();
        let n = fill(&engine, "e", &[4, 4, 3]);
        let stats = engine.stats("e").unwrap();
        assert_eq!(stats.nnz, n);
        assert_eq!(stats.pending, n);
        assert_eq!(stats.model_version, 0);
        assert!(matches!(
            engine.query_cell("e", &[0, 0, 0]),
            Err(ServeError::NoModel { .. })
        ));
        let r = engine.refresh("e").unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(r.basis_cells, n);
        assert_eq!(r.ranks(), &[2, 2, 2]);
        let y = engine.query_cell("e", &[1, 2, 1]).unwrap();
        assert!(y.is_finite());
        assert_eq!(engine.stats("e").unwrap().pending, 0);
        assert_eq!(engine.names(), vec!["e".to_string()]);
    }

    #[test]
    fn refreshed_model_matches_batch_decomposition() {
        let dims = [4usize, 4, 3];
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &dims, &[2, 2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();

        // Batch route over the same cells.
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % 2 == 0)
            .map(|l| (shape.multi_index(l), cell_value(l)))
            .collect();
        let sparse = m2td_tensor::SparseTensor::from_entries(&dims, &entries).unwrap();
        let batch = hosvd_sparse_exact(&sparse, &[2, 2, 2]).unwrap();

        for idx in shape.iter_indices() {
            let served = engine.query_cell("e", &idx).unwrap();
            let direct = batch.cell(&idx).unwrap();
            assert!(
                (served - direct).abs() <= 1e-9 * (1.0 + direct.abs()),
                "cell {idx:?}: served {served} vs batch {direct}"
            );
        }
    }

    #[test]
    fn staleness_threshold_triggers_auto_refresh() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(5));
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        let shape = Shape::new(&[4, 4]);
        let mut refreshes = 0;
        for l in 0..12usize {
            let rep = engine
                .absorb("e", &shape.multi_index(l), cell_value(l))
                .unwrap();
            if rep.refreshed {
                refreshes += 1;
                assert_eq!(rep.pending, 0, "refresh resets the staleness counter");
            }
        }
        assert_eq!(refreshes, 2, "12 absorbs at threshold 5 → 2 refreshes");
        assert_eq!(engine.stats("e").unwrap().model_version, 2);
        // The auto-published model serves queries immediately.
        assert!(engine.query_cell("e", &[3, 3]).unwrap().is_finite());
    }

    #[test]
    fn slice_query_matches_cellwise_evaluation() {
        let dims = [4usize, 5, 3];
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &dims, &[2, 2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();
        for mode in 0..3 {
            let slice = engine.query_slice("e", mode, 1).unwrap();
            assert_eq!(slice.dims()[mode], 1);
            for idx in Shape::new(slice.dims()).iter_indices() {
                let mut full = idx.clone();
                full[mode] = 1;
                let direct = engine.query_cell("e", &full).unwrap();
                let from_slice = slice.get(&idx);
                assert!(
                    (direct - from_slice).abs() < 1e-10,
                    "mode {mode} idx {idx:?}: {direct} vs {from_slice}"
                );
            }
        }
        assert!(engine.query_slice("e", 7, 0).is_err());
        assert!(engine.query_slice("e", 0, 99).is_err());
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let dims = [4usize, 4];
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &dims, &[2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();
        let indices: Vec<Vec<usize>> = Shape::new(&dims).iter_indices().collect();
        let batch = engine.query_cells("e", &indices).unwrap();
        for (idx, &b) in indices.iter().zip(batch.iter()) {
            let single = engine.query_cell("e", idx).unwrap();
            assert_eq!(single.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn duplicate_absorb_and_unknown_names_error() {
        let engine = ServeEngine::default();
        engine.register("e", &[2, 2], &[1, 1]).unwrap();
        assert!(matches!(
            engine.register("e", &[2, 2], &[1, 1]),
            Err(ServeError::AlreadyRegistered { .. })
        ));
        assert!(matches!(
            engine.register("bad", &[2, 2], &[3, 1]),
            Err(ServeError::Tensor(TensorError::RankTooLarge { .. }))
        ));
        assert!(matches!(
            engine.register("bad", &[2, 2], &[1]),
            Err(ServeError::Tensor(TensorError::WrongNumberOfRanks { .. }))
        ));
        engine.absorb("e", &[0, 1], 1.0).unwrap();
        assert!(matches!(
            engine.absorb("e", &[0, 1], 2.0),
            Err(ServeError::Tensor(TensorError::DuplicateEntry { .. }))
        ));
        assert!(matches!(
            engine.absorb("ghost", &[0, 0], 1.0),
            Err(ServeError::UnknownEnsemble { .. })
        ));
        assert!(engine.deregister("e").is_ok());
        assert!(matches!(
            engine.deregister("e"),
            Err(ServeError::UnknownEnsemble { .. })
        ));
    }

    #[test]
    fn cache_serves_repeat_queries_identically() {
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[4, 4], &[2, 2]).unwrap();
        fill(&engine, "e", &[4, 4]);
        engine.refresh("e").unwrap();
        let cold = engine.query_cell("e", &[1, 3]).unwrap();
        let warm = engine.query_cell("e", &[1, 3]).unwrap();
        assert_eq!(cold.to_bits(), warm.to_bits());
        // Capacity 0 disables the cache without changing results.
        let uncached = ServeEngine::new(
            ServeConfig::default()
                .with_staleness(0)
                .with_cache_capacity(0),
        );
        uncached.register("e", &[4, 4], &[2, 2]).unwrap();
        fill(&uncached, "e", &[4, 4]);
        uncached.refresh("e").unwrap();
        let plain = uncached.query_cell("e", &[1, 3]).unwrap();
        assert_eq!(plain.to_bits(), cold.to_bits());
        // Both paths reject malformed indices identically.
        for eng in [&engine, &uncached] {
            assert!(matches!(
                eng.query_cell("e", &[1]),
                Err(ServeError::Tensor(TensorError::WrongNumberOfRanks { .. }))
            ));
            assert!(matches!(
                eng.query_cell("e", &[9, 0]),
                Err(ServeError::Tensor(TensorError::IndexOutOfBounds { .. }))
            ));
        }
    }

    #[test]
    fn full_cache_evicts_lru_and_keeps_serving_identical_values() {
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dims = [4usize, 4];
        let engine = ServeEngine::new(
            ServeConfig::default()
                .with_staleness(0)
                .with_cache_capacity(3),
        );
        engine.register("e", &dims, &[2, 2]).unwrap();
        fill(&engine, "e", &dims);
        engine.refresh("e").unwrap();

        // Baseline predictions, pre-cache-pressure.
        let indices: Vec<Vec<usize>> = Shape::new(&dims).iter_indices().collect();
        let baseline: Vec<f64> = indices
            .iter()
            .map(|i| engine.query_cell("e", i).unwrap())
            .collect();

        // Sweep all 16 cells through a 3-entry cache, twice: the cache
        // churns constantly and must evict.
        m2td_obs::install();
        m2td_obs::reset();
        for _ in 0..2 {
            for (i, idx) in indices.iter().enumerate() {
                let y = engine.query_cell("e", idx).unwrap();
                assert_eq!(
                    y.to_bits(),
                    baseline[i].to_bits(),
                    "eviction churn must never change a prediction"
                );
            }
        }
        let snap = m2td_obs::snapshot();
        m2td_obs::uninstall();
        let evictions = snap.counter("serve.cache_evictions").unwrap_or(0);
        assert!(
            evictions >= 16,
            "two 16-cell sweeps through a 3-entry cache must evict (got {evictions})"
        );
    }

    #[test]
    fn guard_fail_policy_keeps_previous_model_serving() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[3, 3], &[3, 3]).unwrap();
        // A rank-1 fill: mode Grams support only one direction, far short
        // of the requested rank 3.
        for j in 0..3usize {
            engine.absorb("e", &[0, j], (j + 1) as f64).unwrap();
        }
        // Unguarded: the deficient refresh goes through (plain eig).
        engine.refresh("e").unwrap();
        let v1 = engine.query_cell("e", &[0, 1]).unwrap();
        engine.absorb("e", &[1, 0], 2.0).unwrap();

        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::Fail));
        // Still rank-deficient at rank 3 → refresh rejected...
        let err = engine.refresh("e");
        m2td_guard::uninstall();
        assert!(matches!(
            err,
            Err(ServeError::Tensor(TensorError::Guard(
                GuardError::RankDeficient { .. }
            )))
        ));
        // ...and the version-1 model keeps serving, bit for bit.
        assert_eq!(engine.stats("e").unwrap().model_version, 1);
        let still = engine.query_cell("e", &[0, 1]).unwrap();
        assert_eq!(still.to_bits(), v1.to_bits());
    }

    #[test]
    fn guarded_auto_refresh_defers_instead_of_failing_the_write() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(1));
        engine.register("e", &[3, 3], &[2, 2]).unwrap();
        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::Fail));
        // One cell supports only rank 1, so the automatic refresh the
        // absorb triggers is guard-rejected — but the write itself must
        // succeed and the cell must stay durable.
        let a1 = engine.absorb("e", &[0, 0], 1.0).unwrap();
        assert!(!a1.refreshed);
        assert_eq!((a1.nnz, a1.pending), (1, 1));
        assert_eq!(engine.stats("e").unwrap().model_version, 0);
        // The deferred refresh retries on the next absorb and succeeds
        // once the spectrum reaches the requested rank.
        let a2 = engine.absorb("e", &[1, 1], 2.0).unwrap();
        m2td_guard::uninstall();
        assert!(a2.refreshed);
        assert_eq!((a2.nnz, a2.pending), (2, 0));
        assert_eq!(engine.stats("e").unwrap().model_version, 1);
    }

    #[test]
    fn guard_clamp_policy_serves_narrower_factors() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[3, 3], &[2, 2]).unwrap();
        for j in 0..3usize {
            engine.absorb("e", &[0, j], (j + 1) as f64).unwrap();
        }
        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::ClampRank));
        let report = engine.refresh("e");
        m2td_guard::uninstall();
        let report = report.unwrap();
        assert_eq!(report.ranks(), &[1, 1], "deficient spectrum clamps to 1");
        assert!(engine.query_cell("e", &[1, 1]).unwrap().is_finite());
    }

    #[test]
    fn guarded_absorb_rejects_nonfinite_cells() {
        use m2td_guard::{GuardConfig, GuardPolicy};
        let _lock = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("e", &[2, 2], &[1, 1]).unwrap();
        m2td_guard::install(GuardConfig::with_policy(GuardPolicy::Fail));
        let res = engine.absorb("e", &[0, 0], f64::NAN);
        m2td_guard::uninstall();
        assert!(matches!(
            res,
            Err(ServeError::Tensor(TensorError::Guard(
                GuardError::NonFinite { .. }
            )))
        ));
        // The poisoned cell never reached the Grams.
        assert_eq!(engine.stats("e").unwrap().nnz, 0);
    }

    #[test]
    fn errors_display_their_context() {
        let e = ServeError::UnknownEnsemble {
            name: "lorenz".into(),
        };
        assert!(e.to_string().contains("lorenz"));
        let e = ServeError::NoModel { name: "sir".into() };
        assert!(e.to_string().contains("refresh"));
        use std::error::Error;
        let e = ServeError::Tensor(TensorError::EmptyTensor);
        assert!(e.source().is_some());
    }
}
