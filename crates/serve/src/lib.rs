//! # m2td-serve — resident decomposition engine
//!
//! The paper's core promise is answering *"how would this unsimulated
//! configuration behave?"* from a partial ensemble. The rest of the
//! workspace computes that answer as a batch one-shot; this crate keeps it
//! **resident**: a [`ServeEngine`] holds one or more decomposed ensembles
//! keyed by name, absorbs new simulation cells as they arrive, and answers
//! cell/slice prediction queries at high QPS.
//!
//! Three moving parts:
//!
//! * **Absorption** — [`ServeEngine::absorb`] feeds each new simulation
//!   result into an [`m2td_tensor::IncrementalEnsemble`], which updates
//!   every mode's Gram matrix in `O(column occupancy)` instead of
//!   recomputing from scratch. Absorbed cells do **not** re-decompose the
//!   ensemble; they only mark the served model stale.
//! * **Refresh** — after `staleness_threshold` absorbs (or an explicit
//!   [`ServeEngine::refresh`]), per-mode factors are re-extracted from the
//!   *running* Grams through [`m2td_guard::gram_factor`] — a degenerate
//!   update is clamped or rejected per the installed policy, never served
//!   — and the core is recovered with the planned semi-sparse TTM chain
//!   (reusing one [`m2td_tensor::Workspace`] across refreshes). The result
//!   is published as an immutable [`Model`] snapshot; a rejected refresh
//!   leaves the previous healthy model serving.
//! * **Queries** — [`ServeEngine::query_cell`] / [`query_cells`] /
//!   [`query_slice`](ServeEngine::query_slice) evaluate against the
//!   published snapshot through a pre-decoded
//!   [`m2td_tensor::CellEvaluator`] (no per-call allocation) plus a
//!   bounded per-model LRU result cache. Queries take `&self` and never
//!   block behind each other; concurrent queries at any thread count
//!   return bitwise-identical predictions.
//!
//! Every request is instrumented through `m2td-obs`: `serve.query`,
//! `serve.absorb` and `serve.refresh` spans carry per-request latency,
//! and `serve.cache_hits` / `serve.cache_misses` /
//! `serve.cache_evictions` count the query cache.
//!
//! ## Durability
//!
//! With a [`DurabilityConfig`] the engine is crash-safe: every mutating
//! operation is written to a checksummed write-ahead log ([`wal`])
//! *before* it is applied, and the whole engine state is periodically
//! sealed into atomic, checksummed snapshots ([`store`]).
//! [`ServeEngine::recover`] reopens the newest snapshot that verifies —
//! quarantining damaged ones and falling back to older generations — and
//! replays the WAL tail, reproducing **bit-for-bit** the state an
//! uninterrupted engine would have reached, at any crash point. When
//! durable history exists that can no longer be replayed, the engine
//! serves what it recovered in read-only *degraded* mode instead of
//! guessing ([`ServeError::Degraded`]).
//!
//! Admission control bounds the damage of overload: a per-ensemble cap on
//! the unrefreshed absorb backlog ([`ServeError::Overloaded`]) and a
//! per-query deadline budget ([`ServeError::DeadlineExceeded`], counted
//! in `serve.shed_queries`).
//!
//! ```
//! use m2td_serve::{ServeConfig, ServeEngine};
//!
//! let engine = ServeEngine::new(ServeConfig::default());
//! engine.register("demo", &[4, 4, 3], &[2, 2, 2]).unwrap();
//! for l in 0..48usize {
//!     if l % 2 == 0 {
//!         let idx = [l / 12, (l / 3) % 4, l % 3];
//!         engine.absorb("demo", &idx, (l as f64 * 0.37).sin() + 1.0).unwrap();
//!     }
//! }
//! engine.refresh("demo").unwrap();
//! // In-fill: predict a cell that was never simulated.
//! let y = engine.query_cell("demo", &[1, 1, 1]).unwrap();
//! assert!(y.is_finite());
//! ```

mod engine;
mod lru;
pub mod store;
pub mod wal;

pub use engine::{
    AbsorbReport, DurabilityConfig, EnsembleStats, Model, RecoveryReport, RefreshReport,
    ServeConfig, ServeEngine, ServeError,
};
pub use store::SnapshotStore;
pub use wal::{Wal, WalOp, WalRecord};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
