//! A bounded least-recently-used cell cache.
//!
//! Replaces the original insert-until-full map in [`crate::Model`]: once
//! the capacity is reached the least-recently-*used* entry is evicted
//! instead of new entries being dropped, so a shifting query working set
//! keeps its hot cells resident. Implemented as a `HashMap` into a slab
//! of intrusively doubly-linked nodes — `get`, `insert` and eviction are
//! all O(1) with no per-operation allocation once the slab is full.
//!
//! Eviction *order* depends on query arrival order (and is therefore not
//! deterministic under concurrent queries), but eviction can never change
//! a served value: the cache stores exactly what the evaluator computed,
//! and a re-miss recomputes the identical value. The serve engine's
//! bitwise thread-invariance contract is unaffected.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    value: f64,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map from linear cell index to cached prediction.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    /// Most recently used node, `NIL` when empty.
    head: usize,
    /// Least recently used node, `NIL` when empty.
    tail: usize,
}

impl LruCache {
    /// Creates an empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident entries.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let Node { prev, next, .. } = self.nodes[i];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links node `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting it to most recently used on a hit.
    pub fn get(&mut self, key: u64) -> Option<f64> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.nodes[i].value)
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entry if the cache is full. Returns `true` iff an eviction
    /// happened.
    pub fn insert(&mut self, key: u64, value: f64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        if self.map.len() < self.capacity {
            let i = self.nodes.len();
            self.nodes.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.push_front(i);
            return false;
        }
        // Full: reuse the LRU node in place.
        let victim = self.tail;
        debug_assert_ne!(victim, NIL);
        self.map.remove(&self.nodes[victim].key);
        self.unlink(victim);
        self.nodes[victim].key = key;
        self.nodes[victim].value = value;
        self.map.insert(key, victim);
        self.push_front(victim);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_capacity_then_evicts_lru() {
        let mut c = LruCache::new(3);
        assert!(!c.insert(1, 1.0));
        assert!(!c.insert(2, 2.0));
        assert!(!c.insert(3, 3.0));
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(c.get(1), Some(1.0));
        assert!(c.insert(4, 4.0), "full cache must evict");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), None, "LRU entry 2 was evicted");
        assert_eq!(c.get(1), Some(1.0));
        assert_eq!(c.get(3), Some(3.0));
        assert_eq!(c.get(4), Some(4.0));
    }

    #[test]
    fn refreshing_an_existing_key_promotes_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert(1, 1.0);
        c.insert(2, 2.0);
        assert!(!c.insert(1, 1.5), "update is not an eviction");
        assert_eq!(c.get(1), Some(1.5));
        // 2 is now LRU.
        assert!(c.insert(3, 3.0));
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(1.5));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        assert!(!c.insert(1, 1.0));
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn single_entry_cache_cycles() {
        let mut c = LruCache::new(1);
        assert!(!c.insert(1, 1.0));
        assert!(c.insert(2, 2.0));
        assert!(c.insert(3, 3.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(3), Some(3.0));
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn long_mixed_workload_stays_bounded_and_correct() {
        let mut c = LruCache::new(8);
        for k in 0..1000u64 {
            c.insert(k % 32, k as f64);
            assert!(c.len() <= 8);
            // The just-inserted key is always resident.
            assert_eq!(c.get(k % 32), Some(k as f64));
        }
    }
}
