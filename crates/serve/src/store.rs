//! Checksummed atomic snapshot store for the serve engine.
//!
//! A snapshot is one file `snapshot.<seq>.json` holding the engine's
//! entire durable state — every ensemble's entries, running Grams,
//! staleness counter and published model — sealed in the same format-v2
//! envelope as the D-M2TD checkpoints (see [`m2td_guard::integrity`]).
//! `<seq>` is the write-ahead-log sequence number the snapshot covers:
//! recovery loads the newest *valid* snapshot and replays only WAL
//! records with a higher sequence.
//!
//! Publication is atomic in two steps — write a uniquely named temp file,
//! then rename into place — with the crash injector's `snapshot-write`
//! kill point sitting between them ([`SnapshotStore::begin_write`] /
//! [`PendingSnapshot::commit`]): a crash mid-snapshot leaves the previous
//! snapshot untouched and only an orphaned temp file behind, cleaned on
//! the next open.
//!
//! A snapshot that fails verification on load (seeded bit-flip, torn
//! write, stale format) is **quarantined** — renamed to
//! `snapshot.quarantined.<n>.json`, counted in
//! `serve.snapshot_quarantined` — and recovery falls back to the next
//! older snapshot plus a longer WAL replay. Retention keeps the newest
//! [`SnapshotStore::keep`] snapshots (the WAL is truncated only past the
//! *oldest* retained one, so every retained snapshot remains a viable
//! recovery base) and the newest few quarantined records for post-mortem,
//! both via the shared [`m2td_guard::integrity::sweep_retention`].
//!
//! All floating-point payload data — entry values, Gram matrices, model
//! cores and factors — is stored as bit-cast `u64` arrays, so recovery is
//! bitwise regardless of what the values are (including non-finite
//! garbage absorbed by an unguarded engine).

use crate::Result;
use crate::ServeError;
use m2td_fault::CorruptionKind;
use m2td_guard::integrity::{
    open_record, seal_record, sequenced_files, sweep_retention, FORMAT_VERSION,
};
use m2td_json::Json;
use m2td_linalg::Matrix;
use m2td_tensor::DenseTensor;
use std::path::{Path, PathBuf};

/// Quarantined snapshots kept for post-mortem.
const QUARANTINE_KEEP: usize = 4;

/// File-name prefix of live snapshots.
const SNAP_PREFIX: &str = "snapshot.";
/// File-name prefix of quarantined snapshots.
const QUARANTINE_PREFIX: &str = "snapshot.quarantined.";

fn store_err(message: String) -> ServeError {
    ServeError::Store { message }
}

/// A directory of rolling engine snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    keep: usize,
}

/// A snapshot written to its temp file but not yet published. Dropping it
/// without [`PendingSnapshot::commit`] models a crash mid-snapshot: the
/// orphaned temp file is removed on the next store open.
#[derive(Debug)]
pub struct PendingSnapshot {
    tmp: PathBuf,
    path: PathBuf,
}

impl PendingSnapshot {
    /// Renames the temp file into place, making the snapshot visible.
    pub fn commit(self) -> Result<()> {
        std::fs::rename(&self.tmp, &self.path)
            .map_err(|e| store_err(format!("publish {}: {e}", self.path.display())))
    }
}

/// Outcome of scanning the store for the newest usable snapshot.
#[derive(Debug)]
pub struct StoreScan {
    /// Newest snapshot that verified, as `(covered WAL seq, payload)`.
    pub loaded: Option<(u64, Json)>,
    /// Highest snapshot sequence *seen*, valid or not. Evidence of how
    /// far the engine had progressed; if recovery cannot replay back up
    /// to this point, operations were lost and the engine must degrade.
    pub max_seen_seq: Option<u64>,
    /// Snapshots quarantined during this scan.
    pub quarantined: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory, deleting
    /// orphaned temp files and sweeping quarantine retention.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| store_err(format!("create snapshot dir {}: {e}", dir.display())))?;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().contains(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let store = Self {
            dir,
            keep: keep.max(1),
        };
        sweep_retention(
            &store.dir,
            QUARANTINE_PREFIX,
            QUARANTINE_KEEP,
            "serve.snapshot_quarantine_swept",
        );
        Ok(store)
    }

    /// The directory snapshots live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many snapshots the retention sweep keeps.
    pub fn keep(&self) -> usize {
        self.keep
    }

    fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{SNAP_PREFIX}{seq}.json"))
    }

    /// Live snapshots as `(seq, path)` pairs, unsorted. Quarantined files
    /// do not match — their `snapshot.quarantined.<n>` tail is not a bare
    /// integer.
    pub fn snapshots(&self) -> Vec<(u64, PathBuf)> {
        sequenced_files(&self.dir, SNAP_PREFIX)
    }

    /// Stage one: serialize and write the snapshot covering WAL sequence
    /// `seq` to a temp file. The caller commits (or crashes) separately.
    pub fn begin_write(&self, seq: u64, payload: Json) -> Result<PendingSnapshot> {
        let fingerprint = Json::Obj(vec![
            ("kind".to_string(), Json::Str("serve-snapshot".to_string())),
            ("seq".to_string(), Json::Int(seq as i64)),
        ]);
        let doc = seal_record(&fingerprint, payload);
        let path = self.snapshot_path(seq);
        let tmp = path.with_file_name(format!(
            "{SNAP_PREFIX}{seq}.json.tmp.{}",
            std::process::id()
        ));
        std::fs::write(&tmp, doc.to_compact())
            .map_err(|e| store_err(format!("write temp {}: {e}", tmp.display())))?;
        Ok(PendingSnapshot { tmp, path })
    }

    /// Retention sweep over live snapshots: keeps the newest
    /// [`SnapshotStore::keep`] and returns the covered sequence of the
    /// *oldest retained* one — the WAL may be truncated up to (and
    /// including) that sequence, and no further: every retained snapshot
    /// must stay a viable recovery base when newer ones are quarantined.
    pub fn sweep(&self) -> Option<u64> {
        sweep_retention(&self.dir, SNAP_PREFIX, self.keep, "serve.snapshots_retired");
        self.snapshots().iter().map(|&(seq, _)| seq).min()
    }

    pub(crate) fn quarantine(&self, seq: u64, reason: &str) {
        let next = sequenced_files(&self.dir, QUARANTINE_PREFIX)
            .iter()
            .map(|(n, _)| n + 1)
            .max()
            .unwrap_or(1);
        let dst = self.dir.join(format!("{QUARANTINE_PREFIX}{next}.json"));
        if std::fs::rename(self.snapshot_path(seq), &dst).is_ok() {
            m2td_obs::counter_add("serve.snapshot_quarantined", 1);
            m2td_obs::counter_add(format!("serve.snapshot_quarantined.{reason}"), 1);
            sweep_retention(
                &self.dir,
                QUARANTINE_PREFIX,
                QUARANTINE_KEEP,
                "serve.snapshot_quarantine_swept",
            );
        }
    }

    /// Scans for the newest snapshot that passes verification,
    /// quarantining damaged ones along the way instead of panicking on
    /// them.
    pub fn scan(&self) -> StoreScan {
        let mut files = self.snapshots();
        files.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        let max_seen_seq = files.first().map(|&(seq, _)| seq);
        let mut quarantined = 0;
        for (seq, path) in files {
            let Ok(text) = std::fs::read_to_string(&path) else {
                self.quarantine(seq, "unreadable");
                quarantined += 1;
                continue;
            };
            let Ok(doc) = Json::parse(&text) else {
                self.quarantine(seq, "unparseable");
                quarantined += 1;
                continue;
            };
            let Some((fingerprint, payload)) = open_record(&doc) else {
                self.quarantine(seq, "checksum");
                quarantined += 1;
                continue;
            };
            let fp_seq = match fingerprint.get("seq") {
                Some(Json::Int(s)) => *s as u64,
                _ => {
                    self.quarantine(seq, "fingerprint");
                    quarantined += 1;
                    continue;
                }
            };
            if fp_seq != seq {
                // A record renamed to the wrong sequence cannot anchor
                // replay correctly.
                self.quarantine(seq, "fingerprint");
                quarantined += 1;
                continue;
            }
            return StoreScan {
                loaded: Some((seq, payload.clone())),
                max_seen_seq,
                quarantined,
            };
        }
        StoreScan {
            loaded: None,
            max_seen_seq,
            quarantined,
        }
    }

    /// Applies a [`CorruptionKind`] mutation to the newest snapshot,
    /// simulating disk damage for the chaos harness. Returns whether a
    /// snapshot existed to corrupt.
    pub fn corrupt_newest(&self, kind: CorruptionKind) -> Result<bool> {
        let Some((_, path)) = self.snapshots().into_iter().max_by_key(|&(seq, _)| seq) else {
            return Ok(false);
        };
        let bytes = std::fs::read(&path)
            .map_err(|e| store_err(format!("read snapshot {}: {e}", path.display())))?;
        let mutated = match kind {
            CorruptionKind::BitFlip => {
                let mut b = bytes;
                let mid = b.len() / 2;
                b[mid] ^= 0x01;
                b
            }
            CorruptionKind::Truncate => bytes[..bytes.len() / 2].to_vec(),
            CorruptionKind::StaleVersion => match Json::parse(&String::from_utf8_lossy(&bytes)) {
                Ok(Json::Obj(fields)) => {
                    let rewritten: Vec<(String, Json)> = fields
                        .into_iter()
                        .map(|(k, v)| {
                            if k == "version" {
                                (k, Json::Int(FORMAT_VERSION - 1))
                            } else {
                                (k, v)
                            }
                        })
                        .collect();
                    Json::Obj(rewritten).to_compact().into_bytes()
                }
                _ => bytes[..bytes.len() / 2].to_vec(),
            },
        };
        std::fs::write(&path, mutated)
            .map_err(|e| store_err(format!("corrupt snapshot {}: {e}", path.display())))?;
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Bit-exact float codecs shared by the snapshot payload builder (engine.rs).

/// Encodes a float slice as an array of bit-cast integers.
pub(crate) fn bits_to_json(vals: &[f64]) -> Json {
    Json::Arr(vals.iter().map(|v| Json::Int(v.to_bits() as i64)).collect())
}

/// Decodes a [`bits_to_json`] array.
pub(crate) fn bits_from_json(json: &Json) -> Result<Vec<f64>> {
    match json {
        Json::Arr(items) => items
            .iter()
            .map(|it| match it {
                Json::Int(b) => Ok(f64::from_bits(*b as u64)),
                other => Err(store_err(format!(
                    "expected bit-cast float, found {}",
                    other.type_name()
                ))),
            })
            .collect(),
        other => Err(store_err(format!(
            "expected bits array, found {}",
            other.type_name()
        ))),
    }
}

/// Encodes a matrix as `{rows, cols, bits}` with bit-exact data.
pub(crate) fn matrix_to_json(m: &Matrix) -> Json {
    Json::Obj(vec![
        ("rows".to_string(), Json::Int(m.rows() as i64)),
        ("cols".to_string(), Json::Int(m.cols() as i64)),
        ("bits".to_string(), bits_to_json(m.as_slice())),
    ])
}

/// Decodes a [`matrix_to_json`] object.
pub(crate) fn matrix_from_json(json: &Json) -> Result<Matrix> {
    let (rows, cols) = match (json.get("rows"), json.get("cols")) {
        (Some(Json::Int(r)), Some(Json::Int(c))) if *r >= 0 && *c >= 0 => {
            (*r as usize, *c as usize)
        }
        _ => return Err(store_err("matrix missing rows/cols".to_string())),
    };
    let data = bits_from_json(
        json.get("bits")
            .ok_or_else(|| store_err("matrix missing bits".to_string()))?,
    )?;
    Matrix::from_vec(rows, cols, data).map_err(|e| store_err(format!("restore matrix: {e}")))
}

/// Encodes a dense tensor as `{dims, bits}` with bit-exact data.
pub(crate) fn dense_to_json(t: &DenseTensor) -> Json {
    Json::Obj(vec![
        (
            "dims".to_string(),
            Json::Arr(t.dims().iter().map(|&d| Json::Int(d as i64)).collect()),
        ),
        ("bits".to_string(), bits_to_json(t.as_slice())),
    ])
}

/// Decodes a [`dense_to_json`] object.
pub(crate) fn dense_from_json(json: &Json) -> Result<DenseTensor> {
    let dims = match json.get("dims") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|it| match it {
                Json::Int(d) if *d >= 0 => Ok(*d as usize),
                _ => Err(store_err("bad tensor dim".to_string())),
            })
            .collect::<Result<Vec<usize>>>()?,
        _ => return Err(store_err("dense tensor missing dims".to_string())),
    };
    let data = bits_from_json(
        json.get("bits")
            .ok_or_else(|| store_err("dense tensor missing bits".to_string()))?,
    )?;
    DenseTensor::from_vec(&dims, data).map_err(|e| store_err(format!("restore dense tensor: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str, keep: usize) -> SnapshotStore {
        let dir = std::env::temp_dir().join("m2td_snapstore_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::new(dir, keep).unwrap()
    }

    fn payload(tag: i64) -> Json {
        Json::Obj(vec![("tag".to_string(), Json::Int(tag))])
    }

    fn publish(store: &SnapshotStore, seq: u64) {
        store
            .begin_write(seq, payload(seq as i64))
            .unwrap()
            .commit()
            .unwrap();
    }

    #[test]
    fn scan_loads_the_newest_valid_snapshot() {
        let store = tmp_store("newest", 3);
        for seq in [3u64, 7, 5] {
            publish(&store, seq);
        }
        let scan = store.scan();
        let (seq, body) = scan.loaded.unwrap();
        assert_eq!(seq, 7);
        assert_eq!(body, payload(7));
        assert_eq!(scan.max_seen_seq, Some(7));
        assert_eq!(scan.quarantined, 0);
    }

    #[test]
    fn every_corruption_kind_quarantines_and_falls_back() {
        for kind in [
            CorruptionKind::BitFlip,
            CorruptionKind::Truncate,
            CorruptionKind::StaleVersion,
        ] {
            let store = tmp_store(&format!("fallback_{kind:?}"), 3);
            publish(&store, 2);
            publish(&store, 6);
            assert!(store.corrupt_newest(kind).unwrap());
            let scan = store.scan();
            let (seq, body) = scan.loaded.unwrap();
            assert_eq!(seq, 2, "{kind} must fall back to the older snapshot");
            assert_eq!(body, payload(2));
            assert_eq!(scan.max_seen_seq, Some(6), "damage is still evidence");
            assert_eq!(scan.quarantined, 1);
            assert!(
                store.dir().join("snapshot.quarantined.1.json").exists(),
                "{kind} must quarantine, not delete"
            );
            assert!(!store.dir().join("snapshot.6.json").exists());
        }
    }

    #[test]
    fn uncommitted_snapshots_are_invisible_and_cleaned_on_open() {
        let store = tmp_store("pending", 3);
        publish(&store, 1);
        let pending = store.begin_write(2, payload(2)).unwrap();
        // Not yet committed: scans still see only seq 1.
        assert_eq!(store.scan().loaded.unwrap().0, 1);
        drop(pending); // crash before rename
        let reopened = SnapshotStore::new(store.dir(), 3).unwrap();
        assert_eq!(reopened.scan().loaded.unwrap().0, 1);
        let leftovers: Vec<_> = std::fs::read_dir(reopened.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp orphans: {leftovers:?}");
    }

    #[test]
    fn sweep_keeps_newest_and_reports_truncation_floor() {
        let store = tmp_store("sweep", 2);
        for seq in 1..=5u64 {
            publish(&store, seq);
        }
        let floor = store.sweep().unwrap();
        assert_eq!(floor, 4, "oldest retained snapshot bounds WAL truncation");
        let mut seqs: Vec<u64> = store.snapshots().into_iter().map(|(s, _)| s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![4, 5]);
        // An empty store has no floor.
        let empty = tmp_store("sweep_empty", 2);
        assert_eq!(empty.sweep(), None);
    }

    #[test]
    fn codecs_round_trip_bitwise() {
        let vals = [0.1 + 0.2, -0.0, f64::NAN, f64::NEG_INFINITY, 1e-320, 3.0];
        let back = bits_from_json(&bits_to_json(&vals)).unwrap();
        for (a, b) in vals.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.5, -0.75, 0.1 + 0.2, 5.0, -6.25]).unwrap();
        let back = matrix_from_json(&matrix_to_json(&m)).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 3);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let t = DenseTensor::from_vec(&[2, 2], vec![1.0, 0.5, -0.25, 0.125]).unwrap();
        let back = dense_from_json(&dense_to_json(&t)).unwrap();
        assert_eq!(back.dims(), t.dims());
        assert_eq!(back.as_slice(), t.as_slice());
        // Damaged codecs error instead of panicking.
        assert!(bits_from_json(&Json::Int(3)).is_err());
        assert!(matrix_from_json(&Json::Obj(vec![])).is_err());
        assert!(dense_from_json(&Json::Obj(vec![])).is_err());
    }
}
