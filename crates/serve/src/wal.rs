//! Write-ahead log for the serve engine.
//!
//! One append-only file (`wal.log`) holds every mutating operation of the
//! whole engine — `register`, `absorb`, `remove` and *manual* `refresh`
//! records, each tagged with its ensemble name. A single totally-ordered
//! log (rather than one per ensemble) is deliberate: `remove` followed by
//! `register` of the same name must replay in exactly the order it
//! happened, and per-ensemble files would lose that cross-ensemble order.
//! Automatic staleness refreshes are **not** logged — replaying the
//! absorbs re-derives them deterministically at the same points.
//!
//! Each record is one line of compact `m2td-json`: a format-v2 envelope
//! (see [`m2td_guard::integrity`]) whose fingerprint is the record's
//! sequence number and whose payload is the operation. Absorb values are
//! stored as bit-cast `u64` (through `Json::Int`), so recovery restores
//! them bitwise even for values a shortest-round-trip float formatter
//! could not represent (NaN, infinities).
//!
//! Durability batching: [`Wal::append`] flushes every record to the OS
//! (the bytes survive a process *crash*), but only issues an expensive
//! `fsync` every `sync_every` records (machine-loss durability). `0`
//! disables fsync entirely.
//!
//! Reading tolerates a *torn tail*: a final record that fails to parse or
//! verify is the half-written remnant of a crash mid-append and is
//! dropped. A damaged record with valid records *after* it is different —
//! that is corruption of already-committed history, and
//! [`WalReadReport::corrupt`] reports it so the engine can degrade to
//! read-only instead of silently serving a hole in the timeline.

use crate::Result;
use crate::ServeError;
use m2td_guard::integrity::{open_record, seal_record};
use m2td_json::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One logged mutating operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// `register(name, dims, ranks)`.
    Register {
        /// Ensemble name.
        name: String,
        /// Mode extents.
        dims: Vec<usize>,
        /// Per-mode target ranks.
        ranks: Vec<usize>,
    },
    /// `absorb(name, index, value)`; the value is kept bit-exact.
    Absorb {
        /// Ensemble name.
        name: String,
        /// Cell multi-index.
        index: Vec<usize>,
        /// Bit pattern of the absorbed `f64`.
        value_bits: u64,
    },
    /// `deregister(name)`.
    Remove {
        /// Ensemble name.
        name: String,
    },
    /// A *manual* refresh. Logged because it resets the staleness counter
    /// and therefore shifts every later auto-refresh point.
    Refresh {
        /// Ensemble name.
        name: String,
    },
}

impl WalOp {
    fn to_json(&self) -> Json {
        let (kind, mut fields) = match self {
            WalOp::Register { name, dims, ranks } => (
                "register",
                vec![
                    ("name".to_string(), Json::Str(name.clone())),
                    ("dims".to_string(), usizes_to_json(dims)),
                    ("ranks".to_string(), usizes_to_json(ranks)),
                ],
            ),
            WalOp::Absorb {
                name,
                index,
                value_bits,
            } => (
                "absorb",
                vec![
                    ("name".to_string(), Json::Str(name.clone())),
                    ("index".to_string(), usizes_to_json(index)),
                    ("value_bits".to_string(), Json::Int(*value_bits as i64)),
                ],
            ),
            WalOp::Remove { name } => (
                "remove",
                vec![("name".to_string(), Json::Str(name.clone()))],
            ),
            WalOp::Refresh { name } => (
                "refresh",
                vec![("name".to_string(), Json::Str(name.clone()))],
            ),
        };
        fields.insert(0, ("op".to_string(), Json::Str(kind.to_string())));
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Option<WalOp> {
        let name = match json.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return None,
        };
        match json.get("op") {
            Some(Json::Str(kind)) => match kind.as_str() {
                "register" => Some(WalOp::Register {
                    name,
                    dims: usizes_from_json(json.get("dims")?)?,
                    ranks: usizes_from_json(json.get("ranks")?)?,
                }),
                "absorb" => {
                    let value_bits = match json.get("value_bits") {
                        Some(Json::Int(b)) => *b as u64,
                        _ => return None,
                    };
                    Some(WalOp::Absorb {
                        name,
                        index: usizes_from_json(json.get("index")?)?,
                        value_bits,
                    })
                }
                "remove" => Some(WalOp::Remove { name }),
                "refresh" => Some(WalOp::Refresh { name }),
                _ => None,
            },
            _ => None,
        }
    }
}

pub(crate) fn usizes_to_json(v: &[usize]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Int(x as i64)).collect())
}

pub(crate) fn usizes_from_json(json: &Json) -> Option<Vec<usize>> {
    match json {
        Json::Arr(items) => items
            .iter()
            .map(|it| match it {
                Json::Int(i) if *i >= 0 => Some(*i as usize),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

/// One sequenced log record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// The operation.
    pub op: WalOp,
}

impl WalRecord {
    fn to_line(&self) -> String {
        let fingerprint = Json::Obj(vec![
            ("kind".to_string(), Json::Str("serve-wal".to_string())),
            ("seq".to_string(), Json::Int(self.seq as i64)),
        ]);
        seal_record(&fingerprint, self.op.to_json()).to_compact()
    }

    fn from_line(line: &str) -> Option<WalRecord> {
        let doc = Json::parse(line).ok()?;
        let (fingerprint, payload) = open_record(&doc)?;
        match fingerprint.get("kind") {
            Some(Json::Str(k)) if k == "serve-wal" => {}
            _ => return None,
        }
        let seq = match fingerprint.get("seq") {
            Some(Json::Int(s)) if *s > 0 => *s as u64,
            _ => return None,
        };
        Some(WalRecord {
            seq,
            op: WalOp::from_json(payload)?,
        })
    }
}

/// Outcome of reading a log back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReadReport {
    /// The verified records, in file order.
    pub records: Vec<WalRecord>,
    /// `true` when a damaged record was followed by valid ones —
    /// committed history is corrupt (not just a torn tail) and the engine
    /// must not pretend the timeline is complete. Records *after* the
    /// damage are not returned: replaying across a hole would apply
    /// operations against the wrong state.
    pub corrupt: bool,
    /// Lines dropped as a torn tail (0 or 1 after a clean crash).
    pub torn: usize,
}

/// The append-side handle of the write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    next_seq: u64,
    sync_every: usize,
    appends_since_sync: usize,
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    /// `next_seq` is the sequence number the next record will get —
    /// recovery passes one past the highest sequence it replayed or
    /// skipped. `sync_every` batches fsyncs (`0` disables them).
    pub fn open(path: &Path, next_seq: u64, sync_every: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ServeError::Store {
                message: format!("open wal {}: {e}", path.display()),
            })?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            next_seq,
            sync_every,
            appends_since_sync: 0,
        })
    }

    /// Sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the most recently appended record (0 = none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Appends one operation, returning its sequence number. The record
    /// is flushed to the OS before this returns (crash durability); an
    /// fsync is issued every `sync_every` appends (machine durability),
    /// counted in `serve.wal_syncs`.
    pub fn append(&mut self, op: WalOp) -> Result<u64> {
        let record = WalRecord {
            seq: self.next_seq,
            op,
        };
        let mut line = record.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| ServeError::Store {
                message: format!("append wal {}: {e}", self.path.display()),
            })?;
        self.file.flush().map_err(|e| ServeError::Store {
            message: format!("flush wal {}: {e}", self.path.display()),
        })?;
        self.next_seq += 1;
        m2td_obs::counter_add("serve.wal_appends", 1);
        if self.sync_every > 0 {
            self.appends_since_sync += 1;
            if self.appends_since_sync >= self.sync_every {
                self.sync()?;
            }
        }
        Ok(record.seq)
    }

    /// Forces an fsync of everything appended so far.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| ServeError::Store {
            message: format!("sync wal {}: {e}", self.path.display()),
        })?;
        self.appends_since_sync = 0;
        m2td_obs::counter_add("serve.wal_syncs", 1);
        Ok(())
    }

    /// Reads and verifies the log at `path` (absent file = empty log).
    pub fn read(path: &Path) -> WalReadReport {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut records = Vec::new();
        let mut bad_at = None;
        for (i, line) in lines.iter().enumerate() {
            match WalRecord::from_line(line) {
                Some(rec) => {
                    // Sequence numbers must be strictly increasing; a
                    // misordered record is damage, not a tail.
                    if records
                        .last()
                        .is_some_and(|prev: &WalRecord| rec.seq <= prev.seq)
                    {
                        bad_at = Some(i);
                        break;
                    }
                    records.push(rec);
                }
                None => {
                    bad_at = Some(i);
                    break;
                }
            }
        }
        match bad_at {
            None => WalReadReport {
                records,
                corrupt: false,
                torn: 0,
            },
            // Damage on the last line is a torn append — the record was
            // never acknowledged, dropping it is the contract. Damage
            // earlier is corruption of committed history.
            Some(i) if i + 1 == lines.len() => WalReadReport {
                records,
                corrupt: false,
                torn: 1,
            },
            Some(_) => WalReadReport {
                records,
                corrupt: true,
                torn: 0,
            },
        }
    }

    /// Rewrites the log keeping only records with `seq > covered_seq`
    /// (everything at or below is durable in a retained snapshot). The
    /// rewrite publishes atomically and the append handle is reopened on
    /// the new file.
    pub fn truncate_covered(&mut self, covered_seq: u64) -> Result<()> {
        let report = Self::read(&self.path);
        let mut text = String::new();
        for rec in report.records.iter().filter(|r| r.seq > covered_seq) {
            text.push_str(&rec.to_line());
            text.push('\n');
        }
        m2td_guard::integrity::write_atomic(&self.path, &text)
            .map_err(|message| ServeError::Store { message })?;
        let reopened = Self::open(&self.path, self.next_seq, self.sync_every)?;
        self.file = reopened.file;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("m2td_wal_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Register {
                name: "e".into(),
                dims: vec![3, 3],
                ranks: vec![2, 2],
            },
            WalOp::Absorb {
                name: "e".into(),
                index: vec![0, 1],
                value_bits: 1.5f64.to_bits(),
            },
            WalOp::Refresh { name: "e".into() },
            WalOp::Remove { name: "e".into() },
        ]
    }

    #[test]
    fn append_then_read_round_trips_in_order() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path, 1, 2).unwrap();
        for op in ops() {
            wal.append(op).unwrap();
        }
        assert_eq!(wal.next_seq(), 5);
        let report = Wal::read(&path);
        assert!(!report.corrupt);
        assert_eq!(report.torn, 0);
        assert_eq!(report.records.len(), 4);
        for (i, (rec, op)) in report.records.iter().zip(ops()).enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.op, op);
        }
    }

    #[test]
    fn absorb_values_round_trip_bitwise_even_non_finite() {
        let path = tmp("bits");
        let mut wal = Wal::open(&path, 1, 0).unwrap();
        for v in [0.1 + 0.2, -0.0, f64::NAN, f64::INFINITY, 1e-320] {
            wal.append(WalOp::Absorb {
                name: "e".into(),
                index: vec![0],
                value_bits: v.to_bits(),
            })
            .unwrap();
        }
        let report = Wal::read(&path);
        let bits: Vec<u64> = report
            .records
            .iter()
            .map(|r| match &r.op {
                WalOp::Absorb { value_bits, .. } => *value_bits,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        let expect: Vec<u64> = [0.1 + 0.2, -0.0, f64::NAN, f64::INFINITY, 1e-320]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn torn_tail_is_dropped_but_mid_log_damage_is_corruption() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path, 1, 0).unwrap();
        for op in ops() {
            wal.append(op).unwrap();
        }
        drop(wal);
        // Torn tail: a half-written final record.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{full}{{\"version\":2,\"finge")).unwrap();
        let report = Wal::read(&path);
        assert!(!report.corrupt);
        assert_eq!(report.torn, 1);
        assert_eq!(report.records.len(), 4);
        // Mid-log damage: flip a byte inside the *second* record.
        let mut lines: Vec<String> = full.lines().map(str::to_string).collect();
        lines[1] = lines[1].replace("absorb", "absorB");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let report = Wal::read(&path);
        assert!(report.corrupt, "mid-log damage must be reported");
        assert_eq!(report.records.len(), 1, "replay stops at the hole");
    }

    #[test]
    fn truncate_covered_keeps_only_the_tail() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path, 1, 0).unwrap();
        for op in ops() {
            wal.append(op).unwrap();
        }
        wal.truncate_covered(2).unwrap();
        let report = Wal::read(&path);
        assert_eq!(
            report.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // The handle still appends with continuous sequencing.
        wal.append(WalOp::Refresh { name: "e".into() }).unwrap();
        let report = Wal::read(&path);
        assert_eq!(
            report.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        // Covering everything empties the log.
        wal.truncate_covered(5).unwrap();
        assert!(Wal::read(&path).records.is_empty());
    }

    #[test]
    fn missing_log_reads_as_empty() {
        let path = tmp("missing");
        let report = Wal::read(&path);
        assert!(report.records.is_empty());
        assert!(!report.corrupt);
    }
}
