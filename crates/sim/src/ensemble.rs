//! Ensemble construction: from a dynamical system and a sampling plan to
//! ground-truth dense tensors and sampled sparse ensemble tensors.
//!
//! Tensor layout (Section III-D of the paper, plus the time mode of
//! Section VII-B): the ensemble tensor has one mode per simulation
//! parameter, in the order reported by
//! [`EnsembleSystem::param_names`], followed by a final **time** mode.
//! Cell `(p₁, …, p_N, k)` holds the Euclidean distance between the state of
//! the simulation run with parameter indices `(p₁, …, p_N)` and the state
//! of the *observed* reference system, both at time stamp `k + 1` of the
//! [`crate::TimeGrid`].

use crate::integrator::Trajectory;
use crate::space::{ParameterSpace, TimeGrid};
use m2td_tensor::{DenseTensor, Shape, SparseTensor, TensorError};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while building ensembles.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The parameter space does not match the system's parameter count.
    ParamCountMismatch {
        /// What the system expects.
        expected: usize,
        /// What the space provides.
        got: usize,
    },
    /// A plan index was outside the ensemble tensor.
    Tensor(TensorError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ParamCountMismatch { expected, got } => write!(
                f,
                "system expects {expected} parameters but the space has {got}"
            ),
            SimError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SimError {
    fn from(e: TensorError) -> Self {
        SimError::Tensor(e)
    }
}

/// A simulated complex system, as seen by the ensemble layer: named
/// parameters, default grids, and a map from one parameter combination to a
/// trajectory.
///
/// `Sync` is a supertrait so the pipeline can build the two sub-ensemble
/// tensors concurrently on the `m2td-par` pool; implementors are expected
/// to be stateless descriptions of the dynamics (all in-tree systems are
/// plain value structs).
pub trait EnsembleSystem: Sync {
    /// Short system identifier (used in reports and bench output).
    fn name(&self) -> &'static str;

    /// Names of the simulation parameters, in tensor-mode order.
    fn param_names(&self) -> Vec<&'static str>;

    /// A sensible default [`ParameterSpace`] at the given per-axis
    /// resolution.
    fn default_space(&self, resolution: usize) -> ParameterSpace;

    /// Runs one simulation.
    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory;
}

/// Builds ensemble tensors for one `(system, space, time grid)` triple.
///
/// The *observed system* defaults to the simulation at the middle of every
/// parameter axis; [`EnsembleBuilder::with_observed_indices`] overrides it.
/// Trajectories are cached per parameter combination, and the number of
/// distinct simulations actually run is tracked so experiment harnesses can
/// report the paper's simulation-budget accounting.
pub struct EnsembleBuilder<'a, S: EnsembleSystem + ?Sized> {
    system: &'a S,
    space: &'a ParameterSpace,
    grid: &'a TimeGrid,
    observed: Trajectory,
    /// Standard deviation of additive Gaussian measurement noise applied
    /// to *sampled* cell values (never to the ground truth).
    noise_sigma: f64,
    noise_seed: u64,
}

impl<'a, S: EnsembleSystem + ?Sized> EnsembleBuilder<'a, S> {
    /// Creates a builder; the observed reference system is simulated at the
    /// default (middle) parameter values.
    pub fn new(system: &'a S, space: &'a ParameterSpace, grid: &'a TimeGrid) -> Self {
        let observed = system.simulate(&space.default_values(), grid);
        Self {
            system,
            space,
            grid,
            observed,
            noise_sigma: 0.0,
            noise_seed: 0,
        }
    }

    /// Enables additive Gaussian measurement noise with standard deviation
    /// `sigma` on every sampled cell (deterministic per cell given the
    /// seed). Models imperfect observations of the simulated states; the
    /// ground-truth tensor remains noise-free, so accuracy measures how
    /// well a strategy recovers the *true* system from noisy samples.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise_sigma = sigma;
        self.noise_seed = seed;
        self
    }

    /// Replaces the observed reference system with the simulation at the
    /// given parameter indices.
    pub fn with_observed_indices(mut self, indices: &[usize]) -> Result<Self, SimError> {
        if indices.len() != self.space.num_params() {
            return Err(SimError::ParamCountMismatch {
                expected: self.space.num_params(),
                got: indices.len(),
            });
        }
        let params = self.space.values_at(indices);
        self.observed = self.system.simulate(&params, self.grid);
        Ok(self)
    }

    /// The underlying parameter space.
    pub fn space(&self) -> &ParameterSpace {
        self.space
    }

    /// The time grid.
    pub fn grid(&self) -> &TimeGrid {
        self.grid
    }

    /// The full ensemble-tensor mode extents: parameter resolutions
    /// followed by the time-mode extent.
    pub fn tensor_dims(&self) -> Vec<usize> {
        let mut dims = self.space.resolutions();
        dims.push(self.grid.steps);
        dims
    }

    /// Simulates the trajectory for one parameter-index combination.
    pub fn trajectory(&self, param_indices: &[usize]) -> Trajectory {
        let params = self.space.values_at(param_indices);
        self.system.simulate(&params, self.grid)
    }

    /// Ensemble cell value: distance between the simulated and observed
    /// states at time stamp `t_idx + 1` (stamp 0 is the initial state).
    fn cell_value(&self, traj: &Trajectory, t_idx: usize) -> f64 {
        traj.state_distance(&self.observed, t_idx + 1)
    }

    /// Materializes the **full** ground-truth tensor `Y` (every possible
    /// simulation). Exponential in the number of parameters — intended for
    /// the scaled-down resolutions of the reproduction, where it provides
    /// the accuracy denominator of Section VII-D.
    pub fn ground_truth(&self) -> Result<DenseTensor, SimError> {
        let dims = self.tensor_dims();
        let mut out = DenseTensor::zeros(&dims);
        let param_shape = Shape::new(&self.space.resolutions());
        let t_steps = self.grid.steps;

        let n_configs = param_shape.num_elements();
        let mut full_idx = vec![0usize; dims.len()];
        for lin in 0..n_configs {
            let p_idx = param_shape.multi_index(lin);
            let traj = self.trajectory(&p_idx);
            full_idx[..p_idx.len()].copy_from_slice(&p_idx);
            for t in 0..t_steps {
                full_idx[p_idx.len()] = t;
                out.set(&full_idx, self.cell_value(&traj, t));
            }
        }
        Ok(out)
    }

    /// Builds a sparse ensemble tensor from a plan of full-tensor
    /// multi-indices (parameter indices + time index). Cells sharing a
    /// parameter combination reuse a single simulation run.
    ///
    /// Returns the tensor together with the number of **distinct
    /// simulations** executed (the paper's budget unit).
    pub fn build_sparse(&self, plan: &[Vec<usize>]) -> Result<(SparseTensor, usize), SimError> {
        let dims = self.tensor_dims();
        let shape = Shape::new(&dims);
        let n_params = self.space.num_params();

        // Group requested time indices by parameter combination.
        let param_shape = Shape::new(&self.space.resolutions());
        let mut by_config: HashMap<u64, Vec<usize>> = HashMap::new();
        for idx in plan {
            shape.check_index(idx)?;
            let p_lin = param_shape.linear_index(&idx[..n_params]) as u64;
            by_config.entry(p_lin).or_default().push(idx[n_params]);
        }

        let mut entries: Vec<(u64, f64)> = Vec::with_capacity(plan.len());
        let mut full_idx = vec![0usize; dims.len()];
        for (&p_lin, t_idxs) in &by_config {
            let p_idx = param_shape.multi_index(p_lin as usize);
            let traj = self.trajectory(&p_idx);
            full_idx[..n_params].copy_from_slice(&p_idx);
            let mut seen = t_idxs.clone();
            seen.sort_unstable();
            seen.dedup();
            for &t in &seen {
                full_idx[n_params] = t;
                let lin = shape.linear_index(&full_idx) as u64;
                let mut v = self.cell_value(&traj, t);
                if self.noise_sigma > 0.0 {
                    v += self.noise_sigma * gaussian_for_cell(self.noise_seed, lin);
                }
                entries.push((lin, v));
            }
        }
        entries.sort_unstable_by_key(|&(l, _)| l);
        let (indices, values): (Vec<u64>, Vec<f64>) = entries.into_iter().unzip();
        let tensor = SparseTensor::from_sorted_linear(&dims, indices, values)?;
        Ok((tensor, by_config.len()))
    }
}

/// A deterministic standard-normal draw keyed by `(seed, cell)`: two
/// uniform variates from a splitmix-style hash, combined with Box–Muller.
/// Per-cell determinism keeps noisy ensembles reproducible regardless of
/// the order in which cells are simulated.
fn gaussian_for_cell(seed: u64, cell: u64) -> f64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let a = splitmix(seed ^ cell.wrapping_mul(0x2545f4914f6cdd1d));
    let b = splitmix(a);
    // Map to (0, 1]; avoid ln(0).
    let u1 = ((a >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64;
    let u2 = (b >> 11) as f64 / (u64::MAX >> 11) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{Lorenz, Sir};

    fn setup() -> (Sir, ParameterSpace, TimeGrid) {
        let sys = Sir;
        let space = sys.default_space(3);
        let grid = TimeGrid::new(50.0, 4, 10);
        (sys, space, grid)
    }

    #[test]
    fn tensor_dims_are_params_plus_time() {
        let (sys, space, grid) = setup();
        let b = EnsembleBuilder::new(&sys, &space, &grid);
        assert_eq!(b.tensor_dims(), vec![3, 3, 3, 3, 4]);
    }

    #[test]
    fn ground_truth_has_zero_fiber_at_observed_config() {
        let (sys, space, grid) = setup();
        let b = EnsembleBuilder::new(&sys, &space, &grid);
        let y = b.ground_truth().unwrap();
        // At the observed configuration the distance to itself is 0.
        let mut idx = space.default_indices();
        idx.push(0);
        for t in 0..grid.steps {
            idx[4] = t;
            assert_eq!(y.get(&idx), 0.0);
        }
        // Somewhere else it must be nonzero.
        assert!(y.frobenius_norm() > 0.0);
    }

    #[test]
    fn sparse_matches_ground_truth_cells() {
        let (sys, space, grid) = setup();
        let b = EnsembleBuilder::new(&sys, &space, &grid);
        let y = b.ground_truth().unwrap();
        let plan = vec![
            vec![0, 1, 2, 0, 1],
            vec![2, 2, 2, 2, 3],
            vec![0, 0, 0, 0, 0],
        ];
        let (x, sims) = b.build_sparse(&plan).unwrap();
        assert_eq!(x.nnz(), 3);
        assert_eq!(sims, 3);
        for idx in &plan {
            assert!(
                (x.get(idx).unwrap() - y.get(idx)).abs() < 1e-12,
                "cell {idx:?} disagrees with ground truth"
            );
        }
    }

    #[test]
    fn shared_configs_count_one_simulation() {
        let (sys, space, grid) = setup();
        let b = EnsembleBuilder::new(&sys, &space, &grid);
        // Same parameter combo, all time stamps.
        let plan: Vec<Vec<usize>> = (0..grid.steps).map(|t| vec![1, 1, 1, 1, t]).collect();
        let (x, sims) = b.build_sparse(&plan).unwrap();
        assert_eq!(sims, 1, "one simulation should cover the whole time fiber");
        assert_eq!(x.nnz(), grid.steps);
    }

    #[test]
    fn duplicate_plan_entries_collapse() {
        let (sys, space, grid) = setup();
        let b = EnsembleBuilder::new(&sys, &space, &grid);
        let plan = vec![vec![0, 0, 0, 0, 1], vec![0, 0, 0, 0, 1]];
        let (x, sims) = b.build_sparse(&plan).unwrap();
        assert_eq!(x.nnz(), 1);
        assert_eq!(sims, 1);
    }

    #[test]
    fn invalid_plan_rejected() {
        let (sys, space, grid) = setup();
        let b = EnsembleBuilder::new(&sys, &space, &grid);
        assert!(b.build_sparse(&[vec![5, 0, 0, 0, 0]]).is_err());
        assert!(b.build_sparse(&[vec![0, 0, 0, 0]]).is_err());
    }

    #[test]
    fn noise_perturbs_sampled_cells_not_ground_truth() {
        let (sys, space, grid) = setup();
        let clean = EnsembleBuilder::new(&sys, &space, &grid);
        let noisy = EnsembleBuilder::new(&sys, &space, &grid).with_noise(0.1, 7);
        let plan = vec![vec![0, 1, 2, 0, 1], vec![2, 2, 2, 2, 3]];
        let (xc, _) = clean.build_sparse(&plan).unwrap();
        let (xn, _) = noisy.build_sparse(&plan).unwrap();
        let mut any_diff = false;
        for idx in &plan {
            if (xc.get(idx).unwrap() - xn.get(idx).unwrap()).abs() > 1e-12 {
                any_diff = true;
            }
        }
        assert!(any_diff, "noise had no effect");
        // Ground truth is unaffected by the noise setting.
        let yc = clean.ground_truth().unwrap();
        let yn = noisy.ground_truth().unwrap();
        assert_eq!(yc, yn);
    }

    #[test]
    fn noise_is_deterministic_per_cell() {
        let (sys, space, grid) = setup();
        let plan = vec![vec![1, 1, 1, 1, 0], vec![0, 0, 0, 0, 2]];
        let a = EnsembleBuilder::new(&sys, &space, &grid).with_noise(0.2, 3);
        let b = EnsembleBuilder::new(&sys, &space, &grid).with_noise(0.2, 3);
        let (xa, _) = a.build_sparse(&plan).unwrap();
        let (xb, _) = b.build_sparse(&plan).unwrap();
        assert_eq!(xa, xb);
        // Different seeds change the noise.
        let c = EnsembleBuilder::new(&sys, &space, &grid).with_noise(0.2, 4);
        let (xc, _) = c.build_sparse(&plan).unwrap();
        assert_ne!(xa, xc);
    }

    #[test]
    fn gaussian_helper_has_sane_moments() {
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|i| gaussian_for_cell(11, i)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn observed_override_changes_values() {
        let sys = Lorenz::default();
        let space = sys.default_space(3);
        let grid = TimeGrid::new(1.0, 3, 20);
        let default_b = EnsembleBuilder::new(&sys, &space, &grid);
        let override_b = EnsembleBuilder::new(&sys, &space, &grid)
            .with_observed_indices(&[0, 0, 0, 0])
            .unwrap();
        let cell = vec![2, 2, 2, 2, 2];
        let (xd, _) = default_b.build_sparse(std::slice::from_ref(&cell)).unwrap();
        let (xo, _) = override_b
            .build_sparse(std::slice::from_ref(&cell))
            .unwrap();
        assert_ne!(xd.get(&cell), xo.get(&cell));
        // Wrong index length errors.
        assert!(EnsembleBuilder::new(&sys, &space, &grid)
            .with_observed_indices(&[0, 0])
            .is_err());
    }
}
