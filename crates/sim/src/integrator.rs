//! Fixed-step fourth-order Runge–Kutta integration.

/// A continuous-time dynamical system `ẋ = f(t, x)`.
pub trait DynamicalSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Writes `f(t, state)` into `out` (`out.len() == dim()`).
    fn derivative(&self, t: f64, state: &[f64], out: &mut [f64]);
}

/// A trajectory sampled at uniform time stamps; states are stored flat.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    dim: usize,
    times: Vec<f64>,
    states: Vec<f64>,
}

impl Trajectory {
    /// Number of stored time stamps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Time of sample `k`.
    pub fn time(&self, k: usize) -> f64 {
        self.times[k]
    }

    /// State at sample `k`.
    pub fn state(&self, k: usize) -> &[f64] {
        &self.states[k * self.dim..(k + 1) * self.dim]
    }

    /// Euclidean distance between this trajectory's state and another's at
    /// the same sample index. This is the paper's ensemble cell value
    /// (Section VII-B): the distance between a simulated state and the
    /// observed configuration at a time stamp.
    pub fn state_distance(&self, other: &Trajectory, k: usize) -> f64 {
        debug_assert_eq!(self.dim, other.dim);
        let a = self.state(k);
        let b = other.state(k);
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc.sqrt()
    }
}

/// Integrates `sys` from `initial` over `[t0, t0 + n_samples * sample_dt]`,
/// recording a sample every `sample_dt` with `substeps` RK4 steps between
/// consecutive samples. The initial state is recorded as sample 0, so the
/// returned trajectory holds `n_samples + 1` states.
pub fn integrate(
    sys: &dyn DynamicalSystem,
    initial: &[f64],
    t0: f64,
    sample_dt: f64,
    n_samples: usize,
    substeps: usize,
) -> Trajectory {
    let dim = sys.dim();
    debug_assert_eq!(initial.len(), dim);
    let substeps = substeps.max(1);
    let h = sample_dt / substeps as f64;

    let mut state = initial.to_vec();
    let mut t = t0;
    let mut times = Vec::with_capacity(n_samples + 1);
    let mut states = Vec::with_capacity((n_samples + 1) * dim);
    times.push(t);
    states.extend_from_slice(&state);

    // Scratch buffers reused across all steps.
    let mut k1 = vec![0.0; dim];
    let mut k2 = vec![0.0; dim];
    let mut k3 = vec![0.0; dim];
    let mut k4 = vec![0.0; dim];
    let mut tmp = vec![0.0; dim];

    for _ in 0..n_samples {
        for _ in 0..substeps {
            rk4_step(
                sys, t, &mut state, h, &mut k1, &mut k2, &mut k3, &mut k4, &mut tmp,
            );
            t += h;
        }
        times.push(t);
        states.extend_from_slice(&state);
    }
    Trajectory { dim, times, states }
}

/// One classic RK4 step in place.
#[allow(clippy::too_many_arguments)]
fn rk4_step(
    sys: &dyn DynamicalSystem,
    t: f64,
    state: &mut [f64],
    h: f64,
    k1: &mut [f64],
    k2: &mut [f64],
    k3: &mut [f64],
    k4: &mut [f64],
    tmp: &mut [f64],
) {
    let dim = state.len();
    sys.derivative(t, state, k1);
    for i in 0..dim {
        tmp[i] = state[i] + 0.5 * h * k1[i];
    }
    sys.derivative(t + 0.5 * h, tmp, k2);
    for i in 0..dim {
        tmp[i] = state[i] + 0.5 * h * k2[i];
    }
    sys.derivative(t + 0.5 * h, tmp, k3);
    for i in 0..dim {
        tmp[i] = state[i] + h * k3[i];
    }
    sys.derivative(t + h, tmp, k4);
    for i in 0..dim {
        state[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ẋ = -x, solution x(t) = x0 e^{-t}.
    struct Decay;
    impl DynamicalSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn derivative(&self, _t: f64, state: &[f64], out: &mut [f64]) {
            out[0] = -state[0];
        }
    }

    /// Harmonic oscillator: ẍ = -x.
    struct Oscillator;
    impl DynamicalSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn derivative(&self, _t: f64, s: &[f64], out: &mut [f64]) {
            out[0] = s[1];
            out[1] = -s[0];
        }
    }

    #[test]
    fn exponential_decay_matches_analytic() {
        let traj = integrate(&Decay, &[1.0], 0.0, 0.1, 10, 10);
        assert_eq!(traj.len(), 11);
        for k in 0..=10 {
            let t = 0.1 * k as f64;
            let exact = (-t).exp();
            assert!(
                (traj.state(k)[0] - exact).abs() < 1e-9,
                "at t={t}: {} vs {exact}",
                traj.state(k)[0]
            );
        }
    }

    #[test]
    fn oscillator_conserves_energy() {
        let traj = integrate(&Oscillator, &[1.0, 0.0], 0.0, 0.1, 100, 20);
        for k in 0..traj.len() {
            let s = traj.state(k);
            let energy = s[0] * s[0] + s[1] * s[1];
            assert!((energy - 1.0).abs() < 1e-8, "energy drift at {k}: {energy}");
        }
    }

    #[test]
    fn rk4_is_fourth_order() {
        // Halving the step should reduce error by ~16x.
        let err = |substeps: usize| {
            let traj = integrate(&Decay, &[1.0], 0.0, 1.0, 1, substeps);
            (traj.state(1)[0] - (-1.0f64).exp()).abs()
        };
        let e1 = err(4);
        let e2 = err(8);
        let ratio = e1 / e2;
        assert!(ratio > 12.0 && ratio < 20.0, "order ratio {ratio}");
    }

    #[test]
    fn trajectory_accessors() {
        let traj = integrate(&Oscillator, &[0.5, -0.5], 1.0, 0.25, 4, 5);
        assert_eq!(traj.dim(), 2);
        assert_eq!(traj.len(), 5);
        assert!((traj.time(0) - 1.0).abs() < 1e-12);
        assert!((traj.time(4) - 2.0).abs() < 1e-9);
        assert_eq!(traj.state(0), &[0.5, -0.5]);
        assert!(!traj.is_empty());
    }

    #[test]
    fn state_distance_is_euclidean() {
        let a = integrate(&Oscillator, &[1.0, 0.0], 0.0, 0.1, 2, 5);
        let b = integrate(&Oscillator, &[1.0, 0.0], 0.0, 0.1, 2, 5);
        assert_eq!(a.state_distance(&b, 2), 0.0);
        let c = integrate(&Oscillator, &[2.0, 0.0], 0.0, 0.1, 0, 5);
        assert!((a.state_distance(&c, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn substeps_zero_is_clamped() {
        let traj = integrate(&Decay, &[1.0], 0.0, 0.5, 2, 0);
        assert_eq!(traj.len(), 3); // behaves as substeps = 1
    }
}
