//! Dynamical-system simulators and ensemble builders for the M2TD
//! reproduction.
//!
//! The paper's evaluation (Section VII) drives three dynamic processes —
//! double pendulum, triple pendulum with friction, and the Lorenz system —
//! through a simulation ensemble: each cell of a 5-mode tensor holds the
//! Euclidean distance between the simulated system state and an *observed*
//! reference trajectory at a time stamp, for one combination of the four
//! simulation parameters.
//!
//! This crate provides:
//!
//! * a fixed-step RK4 integrator over a [`DynamicalSystem`] trait,
//! * the three paper systems plus an SIR epidemic model (the motivating
//!   example of the paper's introduction),
//! * [`ParameterSpace`] / [`TimeGrid`] descriptions of the ensemble axes,
//! * [`EnsembleBuilder`], which turns a system + plan into ground-truth
//!   dense tensors and sampled sparse tensors, caching one trajectory per
//!   parameter combination.
//!
//! ```
//! use m2td_sim::{systems::Lorenz, EnsembleBuilder, EnsembleSystem, TimeGrid};
//!
//! let sys = Lorenz::default();
//! let space = sys.default_space(4); // 4 values per parameter
//! let grid = TimeGrid::new(2.0, 5, 20);
//! let builder = EnsembleBuilder::new(&sys, &space, &grid);
//! let y = builder.ground_truth().unwrap();
//! assert_eq!(y.dims(), &[4, 4, 4, 4, 5]);
//! ```

mod ensemble;
mod integrator;
mod space;
pub mod systems;

pub use ensemble::{EnsembleBuilder, EnsembleSystem, SimError};
pub use integrator::{integrate, DynamicalSystem, Trajectory};
pub use space::{ParamAxis, ParameterSpace, TimeGrid};
