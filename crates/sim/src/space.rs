//! Parameter-space and time-grid descriptions of a simulation ensemble.

/// One simulation parameter: a name and the discrete grid of values it can
/// take in the ensemble (the paper's "resolution" is `values.len()`).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamAxis {
    /// Human-readable parameter name (e.g. `"phi1"`).
    pub name: String,
    /// The discrete values the parameter ranges over.
    pub values: Vec<f64>,
}

impl ParamAxis {
    /// Creates an axis with `resolution` values spaced uniformly over
    /// `[lo, hi]` (inclusive). `resolution == 1` yields the midpoint.
    pub fn linspace(name: &str, lo: f64, hi: f64, resolution: usize) -> Self {
        let values = match resolution {
            0 => Vec::new(),
            1 => vec![0.5 * (lo + hi)],
            n => (0..n)
                .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
                .collect(),
        };
        Self {
            name: name.to_string(),
            values,
        }
    }

    /// Number of distinct values (the axis resolution).
    pub fn resolution(&self) -> usize {
        self.values.len()
    }

    /// The middle grid value — used as the *fixing constant* when this
    /// parameter is frozen in a PF-partition, and as the default
    /// "observed system" coordinate.
    pub fn default_value(&self) -> f64 {
        self.values[self.values.len() / 2]
    }

    /// Index of the default (middle) value.
    pub fn default_index(&self) -> usize {
        self.values.len() / 2
    }
}

/// An `N`-parameter simulation space: the Cartesian product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSpace {
    axes: Vec<ParamAxis>,
}

impl ParameterSpace {
    /// Creates a space from its axes.
    pub fn new(axes: Vec<ParamAxis>) -> Self {
        Self { axes }
    }

    /// Number of parameters `N`.
    pub fn num_params(&self) -> usize {
        self.axes.len()
    }

    /// The axes.
    pub fn axes(&self) -> &[ParamAxis] {
        &self.axes
    }

    /// One axis.
    pub fn axis(&self, i: usize) -> &ParamAxis {
        &self.axes[i]
    }

    /// Per-axis resolutions — these are the parameter-mode extents of the
    /// ensemble tensor.
    pub fn resolutions(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.resolution()).collect()
    }

    /// Total number of parameter combinations (`Π` resolutions).
    pub fn num_configs(&self) -> usize {
        self.axes.iter().map(|a| a.resolution()).product()
    }

    /// Maps per-axis value indices to concrete parameter values.
    pub fn values_at(&self, indices: &[usize]) -> Vec<f64> {
        debug_assert_eq!(indices.len(), self.axes.len());
        indices
            .iter()
            .zip(self.axes.iter())
            .map(|(&i, a)| a.values[i])
            .collect()
    }

    /// The default (middle) index on every axis.
    pub fn default_indices(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.default_index()).collect()
    }

    /// The default (middle) value on every axis.
    pub fn default_values(&self) -> Vec<f64> {
        self.axes.iter().map(|a| a.default_value()).collect()
    }
}

/// Uniform sampling grid of the time mode.
///
/// The ensemble tensor's last mode indexes `steps` time stamps
/// `t_k = (k + 1) · t_end / steps`; `substeps` RK4 steps are taken between
/// consecutive stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGrid {
    /// Total simulated time.
    pub t_end: f64,
    /// Number of recorded time stamps (the time-mode extent).
    pub steps: usize,
    /// RK4 substeps between consecutive stamps.
    pub substeps: usize,
}

impl TimeGrid {
    /// Creates a time grid.
    pub fn new(t_end: f64, steps: usize, substeps: usize) -> Self {
        Self {
            t_end,
            steps,
            substeps,
        }
    }

    /// Interval between recorded stamps.
    pub fn sample_dt(&self) -> f64 {
        self.t_end / self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_count() {
        let a = ParamAxis::linspace("x", 0.0, 1.0, 5);
        assert_eq!(a.resolution(), 5);
        assert_eq!(a.values[0], 0.0);
        assert_eq!(a.values[4], 1.0);
        assert!((a.values[2] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn linspace_degenerate_resolutions() {
        assert_eq!(ParamAxis::linspace("x", 0.0, 2.0, 1).values, vec![1.0]);
        assert!(ParamAxis::linspace("x", 0.0, 2.0, 0).values.is_empty());
    }

    #[test]
    fn default_value_is_middle() {
        let a = ParamAxis::linspace("x", 0.0, 4.0, 5);
        assert_eq!(a.default_index(), 2);
        assert_eq!(a.default_value(), 2.0);
        let even = ParamAxis::linspace("x", 0.0, 3.0, 4);
        assert_eq!(even.default_index(), 2);
    }

    #[test]
    fn space_counts_configs() {
        let s = ParameterSpace::new(vec![
            ParamAxis::linspace("a", 0.0, 1.0, 3),
            ParamAxis::linspace("b", 0.0, 1.0, 4),
        ]);
        assert_eq!(s.num_params(), 2);
        assert_eq!(s.num_configs(), 12);
        assert_eq!(s.resolutions(), vec![3, 4]);
    }

    #[test]
    fn values_at_maps_indices() {
        let s = ParameterSpace::new(vec![
            ParamAxis::linspace("a", 0.0, 2.0, 3),
            ParamAxis::linspace("b", 10.0, 20.0, 2),
        ]);
        assert_eq!(s.values_at(&[1, 0]), vec![1.0, 10.0]);
        assert_eq!(s.values_at(&[2, 1]), vec![2.0, 20.0]);
        assert_eq!(s.default_indices(), vec![1, 1]);
    }

    #[test]
    fn time_grid_dt() {
        let g = TimeGrid::new(2.0, 8, 10);
        assert!((g.sample_dt() - 0.25).abs() < 1e-15);
    }
}
