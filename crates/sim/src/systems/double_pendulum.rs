//! The double equal-length pendulum (Figure 2 of the paper).
//!
//! Four ensemble parameters, matching Section VII-A: initial angle `φ₁` and
//! bob weight `m₁` of the first pendulum, and initial angle `φ₂` and bob
//! weight `m₂` of the second. Gravity and rod lengths are fixed system
//! constants. The state is `(θ₁, θ₂, ω₁, ω₂)`.

use crate::ensemble::EnsembleSystem;
use crate::integrator::{integrate, DynamicalSystem, Trajectory};
use crate::space::{ParamAxis, ParameterSpace, TimeGrid};

/// Ensemble-level description of the double pendulum.
#[derive(Debug, Clone, Copy)]
pub struct DoublePendulum {
    /// Rod length of the first pendulum (the paper's pendulums are equal
    /// length; both default to 1).
    pub l1: f64,
    /// Rod length of the second pendulum.
    pub l2: f64,
    /// Gravitational acceleration.
    pub g: f64,
}

impl Default for DoublePendulum {
    fn default() -> Self {
        Self {
            l1: 1.0,
            l2: 1.0,
            g: 9.81,
        }
    }
}

/// The instantiated dynamics for one parameter combination.
struct Dynamics {
    m1: f64,
    m2: f64,
    l1: f64,
    l2: f64,
    g: f64,
}

impl DynamicalSystem for Dynamics {
    fn dim(&self) -> usize {
        4
    }

    fn derivative(&self, _t: f64, s: &[f64], out: &mut [f64]) {
        let (t1, t2, w1, w2) = (s[0], s[1], s[2], s[3]);
        let (m1, m2, l1, l2, g) = (self.m1, self.m2, self.l1, self.l2, self.g);
        let d = t1 - t2;
        let den = 2.0 * m1 + m2 - m2 * (2.0 * d).cos();

        // Standard point-mass double-pendulum equations of motion.
        let a1 = (-g * (2.0 * m1 + m2) * t1.sin()
            - m2 * g * (t1 - 2.0 * t2).sin()
            - 2.0 * d.sin() * m2 * (w2 * w2 * l2 + w1 * w1 * l1 * d.cos()))
            / (l1 * den);
        let a2 = (2.0
            * d.sin()
            * (w1 * w1 * l1 * (m1 + m2) + g * (m1 + m2) * t1.cos() + w2 * w2 * l2 * m2 * d.cos()))
            / (l2 * den);

        out[0] = w1;
        out[1] = w2;
        out[2] = a1;
        out[3] = a2;
    }
}

impl EnsembleSystem for DoublePendulum {
    fn name(&self) -> &'static str {
        "double_pendulum"
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["phi1", "m1", "phi2", "m2"]
    }

    fn default_space(&self, resolution: usize) -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamAxis::linspace("phi1", 0.2, 1.4, resolution),
            ParamAxis::linspace("m1", 0.5, 2.0, resolution),
            ParamAxis::linspace("phi2", 0.2, 1.4, resolution),
            ParamAxis::linspace("m2", 0.5, 2.0, resolution),
        ])
    }

    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory {
        debug_assert_eq!(params.len(), 4);
        let dyn_sys = Dynamics {
            m1: params[1],
            m2: params[3],
            l1: self.l1,
            l2: self.l2,
            g: self.g,
        };
        let initial = [params[0], params[2], 0.0, 0.0];
        integrate(
            &dyn_sys,
            &initial,
            0.0,
            grid.sample_dt(),
            grid.steps,
            grid.substeps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TimeGrid {
        TimeGrid::new(2.0, 10, 50)
    }

    #[test]
    fn small_angle_behaves_like_linear_pendulum() {
        // For tiny angles and m2 -> 0 the first pendulum approaches the
        // simple pendulum with frequency sqrt(g/l).
        let sys = DoublePendulum::default();
        let traj = sys.simulate(&[0.01, 1.0, 0.01, 0.001], &grid());
        // Quarter period of the simple pendulum: T/4 = (π/2)·sqrt(l/g).
        // theta1 should cross zero near there.
        let mut crossed = false;
        for k in 1..traj.len() {
            if traj.state(k)[0].signum() != traj.state(k - 1)[0].signum() {
                let t_cross = traj.time(k);
                let quarter = 0.5 * std::f64::consts::PI * (1.0f64 / 9.81).sqrt();
                assert!(
                    (t_cross - quarter).abs() < 0.25,
                    "zero crossing at {t_cross}, expected near {quarter}"
                );
                crossed = true;
                break;
            }
        }
        assert!(crossed, "pendulum never swung through zero");
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let sys = DoublePendulum::default();
        let (m1, m2, l1, l2, g) = (1.0, 1.0, 1.0, 1.0, 9.81);
        let energy = |s: &[f64]| {
            let (t1, t2, w1, w2) = (s[0], s[1], s[2], s[3]);
            let v1sq = l1 * l1 * w1 * w1;
            let v2sq = v1sq + l2 * l2 * w2 * w2 + 2.0 * l1 * l2 * w1 * w2 * (t1 - t2).cos();
            let kin = 0.5 * m1 * v1sq + 0.5 * m2 * v2sq;
            let pot = -(m1 + m2) * g * l1 * t1.cos() - m2 * g * l2 * t2.cos();
            kin + pot
        };
        let traj = sys.simulate(&[1.0, 1.0, 0.8, 1.0], &TimeGrid::new(2.0, 20, 200));
        let e0 = energy(traj.state(0));
        for k in 0..traj.len() {
            let ek = energy(traj.state(k));
            assert!(
                (ek - e0).abs() < 1e-4 * e0.abs().max(1.0),
                "energy drifted from {e0} to {ek} at sample {k}"
            );
        }
    }

    #[test]
    fn trajectory_depends_on_every_parameter() {
        let sys = DoublePendulum::default();
        let base = sys.simulate(&[0.8, 1.0, 0.8, 1.0], &grid());
        for p in 0..4 {
            let mut params = [0.8, 1.0, 0.8, 1.0];
            params[p] += 0.3;
            let other = sys.simulate(&params, &grid());
            let d = base.state_distance(&other, base.len() - 1);
            assert!(d > 1e-4, "parameter {p} had no effect (distance {d})");
        }
    }

    #[test]
    fn default_space_has_four_axes() {
        let sys = DoublePendulum::default();
        let space = sys.default_space(7);
        assert_eq!(space.num_params(), 4);
        assert_eq!(space.resolutions(), vec![7, 7, 7, 7]);
        assert_eq!(sys.param_names().len(), 4);
    }

    #[test]
    fn deterministic_simulation() {
        let sys = DoublePendulum::default();
        let a = sys.simulate(&[0.9, 1.2, 0.4, 0.7], &grid());
        let b = sys.simulate(&[0.9, 1.2, 0.4, 0.7], &grid());
        assert_eq!(a, b);
    }
}
